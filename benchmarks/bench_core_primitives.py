"""Micro-benchmarks of the substrate primitives.

Not a paper artifact — these time the building blocks (forward/backward
pass, reliability update, PageRank) so regressions in the substrate are
visible independently of the end-to-end tables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reliability import edge_reliability, node_reliability
from repro.datasets import cora_like
from repro.graph.pagerank import pagerank
from repro.models.base import softmax_rows
from repro.models.gcn import GCN
from repro.tensor import ops
from repro.tensor.functional import masked_cross_entropy


@pytest.fixture(scope="module")
def graph():
    return cora_like(seed=0, scale=0.3)


@pytest.fixture(scope="module")
def model(graph):
    return GCN(graph.num_features, graph.num_classes, np.random.default_rng(0))


@pytest.mark.benchmark(group="primitives")
def test_bench_forward_pass(benchmark, graph, model):
    model.eval()
    benchmark(lambda: model(graph))


@pytest.mark.benchmark(group="primitives")
def test_bench_forward_backward(benchmark, graph, model):
    def step():
        model.train()
        logits = model(graph)
        loss = masked_cross_entropy(
            ops.log_softmax(logits, axis=1), graph.labels, graph.train_index
        )
        model.zero_grad()
        loss.backward()
        return loss.item()

    benchmark(step)


@pytest.mark.benchmark(group="primitives")
def test_bench_node_reliability(benchmark, graph, model):
    probs = softmax_rows(model.predict_logits(graph))
    rng = np.random.default_rng(1)
    student = softmax_rows(rng.normal(size=probs.shape))
    benchmark(
        lambda: node_reliability(probs, student, graph.labels, graph.train_index, p=40.0)
    )


@pytest.mark.benchmark(group="primitives")
def test_bench_edge_reliability(benchmark, graph, model):
    probs = softmax_rows(model.predict_logits(graph))
    sets = node_reliability(probs, probs, graph.labels, graph.train_index, p=40.0)
    src, dst = graph.edge_list()
    pred = probs.argmax(axis=1)
    benchmark(lambda: edge_reliability(src, dst, sets.reliable_mask, pred))


@pytest.mark.benchmark(group="primitives")
def test_bench_pagerank(benchmark, graph):
    benchmark(lambda: pagerank(graph.adjacency))
