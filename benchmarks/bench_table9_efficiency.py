"""Table 9 — training-time efficiency: per-model cost vs models needed.

Shape targets: RDD's per-model time is the highest (the per-epoch
reliability updates add an extra forward pass — the paper measures ~2×
Bagging); RDD needs no more base models than the baselines to reach the
accuracy target.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation import table9


@pytest.mark.benchmark(group="table9")
def test_table9_efficiency(benchmark, harness_config):
    report = benchmark.pedantic(
        lambda: table9.run(harness_config, target_margin=0.015),
        iterations=1,
        rounds=1,
    )
    emit(report)
    rows = {r["method"]: r for r in report.rows}
    # RDD pays more per model ...
    assert rows["RDD(Ensemble)"]["avg_time_per_model_s"] > rows["Bagging"]["avg_time_per_model_s"]
    # ... but needs no more models than the worst baseline to hit the target.
    worst_models = max(rows["Bagging"]["models_to_target"], rows["BANs"]["models_to_target"])
    assert rows["RDD(Ensemble)"]["models_to_target"] <= worst_models + 0.5
