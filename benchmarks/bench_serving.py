"""Serving benchmark: micro-batched vs unbatched prediction throughput.

Measures the prediction engine under closed-loop concurrent load — the
workload an HTTP front end produces — in two configurations:

* **unbatched** — every request runs the engine alone: with the logits
  cache off (a stateless/inductive-style deployment), each request pays
  its own full eval-mode forward pass;
* **batched**   — requests flow through the :class:`MicroBatcher`, so
  concurrent callers coalesce and each batch pays **one** forward shared
  by up to ``max_batch_size`` requests.

Both paths are bitwise identical in output (asserted before any timing).
The benchmark reports throughput and p50/p99 latency for each mode plus
the batched/unbatched throughput ratio — the headline number, floored at
2.0x by the perf test and guarded against regression by
``scripts/check_bench.py`` (``BENCH_serving.json`` is the committed
baseline).

Run ``python scripts/bench_serving.py`` (or this file's ``main``) to
refresh the baseline.  The pytest entries are ``perf``-marked and
excluded from tier-1.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np
import pytest

from repro.datasets import cora_like
from repro.models.gcn import GCN
from repro.serving.artifacts import ModelSpec, export_model_artifact
from repro.serving.batching import MicroBatcher
from repro.serving.engine import PredictionEngine
from repro.serving.metrics import ServingMetrics

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_serving.json"

CONCURRENCY = 8
NODES_PER_REQUEST = 8
MAX_BATCH_SIZE = 16
MAX_WAIT_S = 0.002


def _build_engine(scale: float) -> PredictionEngine:
    """An engine over a freshly exported artifact (weights untrained —
    serving cost is architecture-, not accuracy-, dependent).

    The served model is a 4-layer, width-64 GCN: a production-weight
    forward (~5 ms on full-scale Cora) so the measurement captures the
    regime batching exists for — compute-dominated requests — rather
    than queue ping-pong around a sub-millisecond kernel.
    """
    graph = cora_like(seed=0, scale=scale)
    spec = ModelSpec("gcn", {"hidden": [64, 64, 64], "num_layers": 4})
    model = GCN(
        graph.num_features, graph.num_classes, np.random.default_rng(0),
        hidden=[64, 64, 64], num_layers=4,
    )
    model.eval()
    with tempfile.TemporaryDirectory() as tmp:
        path = export_model_artifact(Path(tmp) / "bench.rddart", model, spec, graph)
        artifact_engine = PredictionEngine(path, graph, cache_logits=False)
    return artifact_engine


def _make_requests(num_nodes: int, per_thread: int, rng: np.random.Generator) -> List[List[np.ndarray]]:
    return [
        [rng.integers(0, num_nodes, size=NODES_PER_REQUEST) for _ in range(per_thread)]
        for _ in range(CONCURRENCY)
    ]


def _drive(requests: List[List[np.ndarray]], call: Callable[[np.ndarray], np.ndarray]) -> Dict[str, float]:
    """Closed-loop load: CONCURRENCY threads, each issuing its requests
    back to back; returns throughput + latency percentiles."""
    latencies: List[List[float]] = [[] for _ in range(CONCURRENCY)]
    errors: List[BaseException] = []

    def client(thread_index: int) -> None:
        try:
            for nodes in requests[thread_index]:
                started = time.perf_counter()
                call(nodes)
                latencies[thread_index].append(time.perf_counter() - started)
        except BaseException as error:  # surface in the main thread
            errors.append(error)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(CONCURRENCY)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    flat = np.asarray([latency for per_thread in latencies for latency in per_thread])
    return {
        "requests": int(flat.size),
        "wall_s": wall,
        "rps": float(flat.size / wall),
        "p50_ms": float(np.percentile(flat, 50) * 1000.0),
        "p99_ms": float(np.percentile(flat, 99) * 1000.0),
    }


def _assert_parity(engine: PredictionEngine, rng: np.random.Generator) -> None:
    """Batched results must be bitwise identical to unbatched ones."""
    probes = [rng.integers(0, engine.num_nodes, size=NODES_PER_REQUEST) for _ in range(24)]
    expected = [engine.predict_nodes(nodes) for nodes in probes]
    with MicroBatcher(
        engine.predict_many, max_batch_size=MAX_BATCH_SIZE, max_wait_s=MAX_WAIT_S
    ) as batcher:
        futures = [batcher.submit(nodes) for nodes in probes]
        for future, reference in zip(futures, expected):
            assert np.array_equal(future.result(timeout=30), reference), (
                "batched prediction diverged from unbatched"
            )


def run_benchmark(quick: bool = False) -> Dict[str, object]:
    # quick trims the request count, never the workload: the measured
    # ratio must stay comparable to the committed full-run baseline.
    engine = _build_engine(scale=1.0)
    rng = np.random.default_rng(7)
    _assert_parity(engine, rng)

    per_thread = 40 if quick else 150
    # Unbatched: every request pays its own forward (cache is off).
    unbatched = _drive(
        _make_requests(engine.num_nodes, per_thread, np.random.default_rng(11)),
        engine.predict_nodes,
    )
    # Batched: concurrent requests coalesce onto shared forwards.
    metrics = ServingMetrics()
    with MicroBatcher(
        engine.predict_many,
        max_batch_size=MAX_BATCH_SIZE,
        max_wait_s=MAX_WAIT_S,
        metrics=metrics,
    ) as batcher:
        batched = _drive(
            _make_requests(engine.num_nodes, per_thread, np.random.default_rng(11)),
            lambda nodes: batcher.predict(nodes, timeout=60),
        )
    batch_summary = metrics.snapshot()["histograms"].get("batch_size", {})
    return {
        "graph": {"name": engine.graph.name, "nodes": engine.num_nodes},
        "concurrency": CONCURRENCY,
        "nodes_per_request": NODES_PER_REQUEST,
        "max_batch_size": MAX_BATCH_SIZE,
        "max_wait_ms": MAX_WAIT_S * 1000.0,
        "unbatched": unbatched,
        "batched": batched,
        "mean_batch_size": batch_summary.get("mean", 1.0),
        "batched_speedup": batched["rps"] / unbatched["rps"],
    }


def main() -> int:
    results = run_benchmark()
    OUTPUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nresults written to {OUTPUT_PATH}")
    return 0


# ----------------------------------------------------------------------
# pytest entries (perf-marked; excluded from tier-1)
# ----------------------------------------------------------------------
@pytest.mark.perf
def test_batched_throughput_beats_unbatched():
    results = run_benchmark(quick=True)
    assert results["batched_speedup"] >= 2.0, (
        f"batched serving is only {results['batched_speedup']:.2f}x unbatched "
        f"at concurrency {CONCURRENCY} (acceptance floor 2.0x)"
    )


if __name__ == "__main__":
    raise SystemExit(main())
