"""Serving benchmark: batching, replica scaling, and overload behavior.

Measures the serving stack under closed-loop concurrent load — the
workload an HTTP front end produces — in three regimes:

* **unbatched vs batched** (single process) — with the logits cache off
  each lone request pays its own full eval-mode forward; through the
  :class:`MicroBatcher` concurrent callers coalesce and each batch pays
  **one** forward shared by up to ``max_batch_size`` requests.  The
  batched/unbatched ratio is floored at 2.0x.
* **replica scaling** — the :class:`ReplicaFrontend` at 1/2/4 worker
  processes, all attached to one shared-memory logits table, driven at
  concurrency ``REPLICA_CONCURRENCY``.  The headline is
  ``replica_speedup``: best replica-tier rps over the committed batched
  rps, floored at 5.0x by ``check_bench.py`` (serving from the shared
  precomputed table turns ~5 ms compute-bound requests into
  microsecond lookups, which is where the floor comes from — not from
  core-parallelism this 1-core CI box doesn't have).
* **overload** — submissions far beyond a deliberately tiny admission
  queue.  The point is *graceful degradation*: some requests shed
  (:class:`Overloaded`), every accepted request still answers, and the
  accepted p99 stays bounded instead of the whole tail collapsing.

Batched and replica paths are bitwise identical to unbatched ones
(asserted before any timing).  Run ``python benchmarks/bench_serving.py``
to refresh ``BENCH_serving.json``; ``scripts/check_bench.py`` guards it
against regression.  The pytest entries are ``perf``-marked and excluded
from tier-1.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np
import pytest

from repro.datasets import cora_like
from repro.models.gcn import GCN
from repro.serving.artifacts import ModelSpec, export_model_artifact
from repro.serving.batching import MicroBatcher, Overloaded
from repro.serving.engine import PredictionEngine
from repro.serving.frontend import ReplicaFrontend
from repro.serving.metrics import ServingMetrics

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_serving.json"

CONCURRENCY = 8
NODES_PER_REQUEST = 8
MAX_BATCH_SIZE = 16
MAX_WAIT_S = 0.002

REPLICA_COUNTS = (1, 2, 4)
REPLICA_CONCURRENCY = 64
OVERLOAD_QUEUE = 64


def _export_bench_model(tmp: Path):
    """Export the benchmark artifact; returns ``(path, graph)``.

    The served model is a 4-layer, width-64 GCN: a production-weight
    forward (~5 ms on full-scale Cora) so the measurement captures the
    regime batching exists for — compute-dominated requests — rather
    than queue ping-pong around a sub-millisecond kernel.  Weights are
    untrained; serving cost is architecture-, not accuracy-, dependent.
    """
    graph = cora_like(seed=0, scale=1.0)
    spec = ModelSpec("gcn", {"hidden": [64, 64, 64], "num_layers": 4})
    model = GCN(
        graph.num_features, graph.num_classes, np.random.default_rng(0),
        hidden=[64, 64, 64], num_layers=4,
    )
    model.eval()
    path = export_model_artifact(tmp / "bench.rddart", model, spec, graph)
    return path, graph


def _make_requests(
    num_nodes: int, per_thread: int, rng: np.random.Generator, concurrency: int = CONCURRENCY
) -> List[List[np.ndarray]]:
    return [
        [rng.integers(0, num_nodes, size=NODES_PER_REQUEST) for _ in range(per_thread)]
        for _ in range(concurrency)
    ]


def _drive(requests: List[List[np.ndarray]], call: Callable[[np.ndarray], np.ndarray]) -> Dict[str, float]:
    """Closed-loop load: one thread per request list, each issuing its
    requests back to back; returns throughput + latency percentiles."""
    concurrency = len(requests)
    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    errors: List[BaseException] = []

    def client(thread_index: int) -> None:
        try:
            for nodes in requests[thread_index]:
                started = time.perf_counter()
                call(nodes)
                latencies[thread_index].append(time.perf_counter() - started)
        except BaseException as error:  # surface in the main thread
            errors.append(error)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    flat = np.asarray([latency for per_thread in latencies for latency in per_thread])
    return {
        "requests": int(flat.size),
        "wall_s": wall,
        "rps": float(flat.size / wall),
        "p50_ms": float(np.percentile(flat, 50) * 1000.0),
        "p99_ms": float(np.percentile(flat, 99) * 1000.0),
    }


def _assert_parity(engine: PredictionEngine, rng: np.random.Generator) -> None:
    """Batched results must be bitwise identical to unbatched ones."""
    probes = [rng.integers(0, engine.num_nodes, size=NODES_PER_REQUEST) for _ in range(24)]
    expected = [engine.predict_nodes(nodes) for nodes in probes]
    with MicroBatcher(
        engine.predict_many, max_batch_size=MAX_BATCH_SIZE, max_wait_s=MAX_WAIT_S
    ) as batcher:
        futures = [batcher.submit(nodes) for nodes in probes]
        for future, reference in zip(futures, expected):
            assert np.array_equal(future.result(timeout=30), reference), (
                "batched prediction diverged from unbatched"
            )


def _assert_replica_parity(frontend: ReplicaFrontend, engine: PredictionEngine,
                           rng: np.random.Generator) -> None:
    """Replica fan-out must be bitwise identical to in-process serving."""
    for _ in range(12):
        nodes = rng.integers(0, engine.num_nodes, size=NODES_PER_REQUEST)
        assert np.array_equal(
            frontend.predict_nodes(nodes, timeout=30), engine.predict_nodes(nodes)
        ), "replica prediction diverged from single-process"


def _bench_replicas(path: Path, graph, engine: PredictionEngine, per_thread: int) -> Dict[str, object]:
    scaling: Dict[str, object] = {}
    for count in REPLICA_COUNTS:
        with ReplicaFrontend(
            path, graph, replicas=count, max_queue=8192,
            max_batch_size=MAX_BATCH_SIZE * 2, max_wait_s=MAX_WAIT_S,
        ) as frontend:
            _assert_replica_parity(frontend, engine, np.random.default_rng(23))
            result = _drive(
                _make_requests(
                    graph.num_nodes, per_thread, np.random.default_rng(13),
                    concurrency=REPLICA_CONCURRENCY,
                ),
                lambda nodes: frontend.predict_nodes(nodes, timeout=60),
            )
            result["replicas"] = count
            scaling[str(count)] = result
    return scaling


def _bench_overload(path: Path, graph, submitters: int, per_thread: int) -> Dict[str, object]:
    """Offer far more than a tiny admission queue accepts; measure shape.

    Submissions outrun the queue (no waiting for results), so shedding
    *must* happen; the accepted requests are then collected and their
    p99 measured — bounded queue, bounded tail.
    """
    with ReplicaFrontend(
        path, graph, replicas=2, max_queue=OVERLOAD_QUEUE,
        max_batch_size=MAX_BATCH_SIZE, max_wait_s=MAX_WAIT_S,
    ) as frontend:
        futures: List = []
        shed = 0
        lock = threading.Lock()

        def submitter(index: int) -> None:
            nonlocal shed
            rng = np.random.default_rng(100 + index)
            for _ in range(per_thread):
                nodes = rng.integers(0, graph.num_nodes, size=NODES_PER_REQUEST)
                started = time.perf_counter()
                try:
                    future = frontend.submit(("nodes", nodes.tolist()))
                except Overloaded:
                    with lock:
                        shed += 1
                    continue
                with lock:
                    futures.append((future, started))

        threads = [threading.Thread(target=submitter, args=(i,)) for i in range(submitters)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        latencies = []
        for future, started in futures:
            future.result(timeout=60)
            latencies.append(time.perf_counter() - started)
    flat = np.asarray(latencies)
    return {
        "max_queue": OVERLOAD_QUEUE,
        "submitted": len(futures) + shed,
        "accepted": len(futures),
        "shed": shed,
        "accepted_p99_ms": float(np.percentile(flat, 99) * 1000.0) if flat.size else 0.0,
    }


def run_benchmark(quick: bool = False) -> Dict[str, object]:
    # quick trims the request count, never the workload: the measured
    # ratios must stay comparable to the committed full-run baseline.
    with tempfile.TemporaryDirectory() as tmp:
        path, graph = _export_bench_model(Path(tmp))
        engine = PredictionEngine(path, graph, cache_logits=False)
        rng = np.random.default_rng(7)
        _assert_parity(engine, rng)

        per_thread = 40 if quick else 150
        # Unbatched: every request pays its own forward (cache is off).
        unbatched = _drive(
            _make_requests(engine.num_nodes, per_thread, np.random.default_rng(11)),
            engine.predict_nodes,
        )
        # Batched: concurrent requests coalesce onto shared forwards.
        metrics = ServingMetrics()
        with MicroBatcher(
            engine.predict_many,
            max_batch_size=MAX_BATCH_SIZE,
            max_wait_s=MAX_WAIT_S,
            metrics=metrics,
        ) as batcher:
            batched = _drive(
                _make_requests(engine.num_nodes, per_thread, np.random.default_rng(11)),
                lambda nodes: batcher.predict(nodes, timeout=60),
            )
        batch_summary = metrics.snapshot()["histograms"].get("batch_size", {})

        # Replica tier: shared-memory logits behind 1/2/4 worker processes.
        replica_per_thread = 25 if quick else 80
        replica_scaling = _bench_replicas(path, graph, engine, replica_per_thread)
        best_replica_rps = max(entry["rps"] for entry in replica_scaling.values())

        # Overload: offered load far beyond a tiny admission queue.
        overload = _bench_overload(
            path, graph, submitters=8, per_thread=250 if quick else 1000
        )

    return {
        "graph": {"name": engine.graph.name, "nodes": engine.num_nodes},
        "concurrency": CONCURRENCY,
        "nodes_per_request": NODES_PER_REQUEST,
        "max_batch_size": MAX_BATCH_SIZE,
        "max_wait_ms": MAX_WAIT_S * 1000.0,
        "unbatched": unbatched,
        "batched": batched,
        "mean_batch_size": batch_summary.get("mean", 1.0),
        "batched_speedup": batched["rps"] / unbatched["rps"],
        "replica_concurrency": REPLICA_CONCURRENCY,
        "replica_scaling": replica_scaling,
        "replica_speedup": best_replica_rps / batched["rps"],
        "overload": overload,
    }


def main() -> int:
    results = run_benchmark()
    OUTPUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nresults written to {OUTPUT_PATH}")
    return 0


# ----------------------------------------------------------------------
# pytest entries (perf-marked; excluded from tier-1)
# ----------------------------------------------------------------------
@pytest.mark.perf
def test_batched_throughput_beats_unbatched():
    results = run_benchmark(quick=True)
    assert results["batched_speedup"] >= 2.0, (
        f"batched serving is only {results['batched_speedup']:.2f}x unbatched "
        f"at concurrency {CONCURRENCY} (acceptance floor 2.0x)"
    )
    assert results["replica_speedup"] >= 5.0, (
        f"replica serving is only {results['replica_speedup']:.2f}x batched "
        f"at concurrency {REPLICA_CONCURRENCY} (acceptance floor 5.0x)"
    )
    overload = results["overload"]
    assert overload["shed"] > 0, "overload run never shed — queue bound not engaged"
    assert overload["accepted"] > 0, "overload run accepted nothing"


if __name__ == "__main__":
    raise SystemExit(main())
