"""Table 3 — ensemble comparison (GCN, RDD single, Bagging, BANs, RDD ensemble).

The headline table.  Shape assertions: RDD(Ensemble) beats the single GCN
on every dataset and is at least competitive with Bagging/BANs (within
noise at benchmark scale, strictly better under RDD_BENCH_FULL=1).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation import table3


@pytest.mark.benchmark(group="table3")
def test_table3_ensemble_comparison(benchmark, harness_config):
    report = benchmark.pedantic(
        lambda: table3.run(harness_config, datasets=("cora", "citeseer")),
        iterations=1,
        rounds=1,
    )
    emit(report)
    by_key = {(r["dataset"], r["method"]): r["test_accuracy"] for r in report.rows}

    # Cora: the headline ordering must hold strictly at benchmark scale.
    gcn = by_key[("cora", "Single GCN")]
    rdd_ens = by_key[("cora", "RDD(Ensemble)")]
    assert rdd_ens > gcn, "cora: RDD ensemble must beat the single GCN"
    assert by_key[("cora", "Bagging")] > gcn - 0.03
    assert by_key[("cora", "BANs")] > gcn - 0.03
    assert rdd_ens >= max(by_key[("cora", "Bagging")], by_key[("cora", "BANs")]) - 0.04

    # Citeseer is the noisiest stand-in (per-seed std reaches ~0.1 at this
    # budget; see the std column): require sanity bounds here and leave
    # the strict ordering to the full-budget EXPERIMENTS run, where
    # RDD(Single/Ensemble) do beat the GCN (see EXPERIMENTS.md).
    cite_gcn = by_key[("citeseer", "Single GCN")]
    assert by_key[("citeseer", "RDD(Ensemble)")] >= cite_gcn - 0.10
    assert by_key[("citeseer", "Bagging")] >= cite_gcn - 0.10
