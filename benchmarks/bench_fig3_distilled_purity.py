"""Figure 3 (operationalized) — purity of the distilled supervision."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation import fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_distilled_knowledge_purity(benchmark, harness_config):
    report = benchmark.pedantic(lambda: fig3.run(harness_config), iterations=1, rounds=1)
    emit(report)
    rows = {r["selection"]: r for r in report.rows}
    kd = rows["KD (all teacher outputs)"]
    rdd = rows["RDD (reliable ∩ student-unsure)"]
    # The reliability filter must hand the student cleaner supervision —
    # the whole point of Figure 3.
    assert rdd["distilled_label_purity"] >= kd["distilled_label_purity"] + 0.02
    # And it is selective, not exhaustive.
    assert rdd["distilled_fraction_of_nodes"] < 0.5
