"""Extension bench: ablate the reliability uncertainty score.

The paper uses Shannon entropy to rank prediction certainty; margin and
confidence are the common alternatives.  This bench runs full RDD under
each score and checks all three land in the same accuracy band — i.e.,
RDD's gains come from the *reliability mechanism*, not from the specific
entropy formula.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.scores import RELIABILITY_SCORES
from repro.datasets import load_dataset
from repro.evaluation.common import ExperimentReport, mean_over_seeds, run_rdd


@pytest.mark.benchmark(group="extensions")
def test_reliability_score_ablation(benchmark, harness_config):
    def sweep():
        report = ExperimentReport(
            experiment="Extension: reliability-score ablation (cora)",
            notes="entropy (paper) vs margin vs confidence rank thresholds.",
        )
        graphs = [
            load_dataset("cora", seed=seed, scale=harness_config.scale)
            for seed in harness_config.seeds
        ]
        for score in RELIABILITY_SCORES:
            results = [
                run_rdd(g, harness_config, s, reliability_score=score)
                for g, s in zip(graphs, harness_config.seeds)
            ]
            report.rows.append(
                {
                    "score": score,
                    "ensemble_accuracy": mean_over_seeds(
                        [r.ensemble_test_accuracy for r in results]
                    ),
                    "last_single_accuracy": mean_over_seeds(
                        [r.last_base_test_accuracy for r in results]
                    ),
                }
            )
        return report

    report = benchmark.pedantic(sweep, iterations=1, rounds=1)
    emit(report)
    accuracies = [r["ensemble_accuracy"] for r in report.rows]
    # All scores viable: spread bounded (the mechanism, not the formula).
    assert max(accuracies) - min(accuracies) < 0.08
