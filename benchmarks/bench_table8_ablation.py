"""Table 8 — per-contribution ablations (No L2, No Lreg, WNR, WER, WKR, WEW)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation import table8


@pytest.mark.benchmark(group="table8")
def test_table8_ablations(benchmark, harness_config):
    report = benchmark.pedantic(
        lambda: table8.run(harness_config, datasets=("cora",)),
        iterations=1,
        rounds=1,
    )
    emit(report)
    rows = {r["variant"]: r for r in report.rows if r["dataset"] == "cora"}
    full = rows["RDD"]["ensemble_accuracy"]
    # Shape: the full model tops (or ties within noise) every ablation.
    for variant, row in rows.items():
        if variant == "RDD":
            continue
        assert row["ensemble_accuracy"] <= full + 0.03, f"{variant} should not beat full RDD clearly"
    # Removing the L2 knowledge transfer is among the most damaging ablations
    # (paper: -1.7 on Cora, the largest single drop).
    drops = {v: full - rows[v]["ensemble_accuracy"] for v in rows if v != "RDD"}
    assert drops["No L2"] >= min(drops.values()) - 1e-9
