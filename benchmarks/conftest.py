"""Shared fixtures and configuration for the benchmark suite.

Every benchmark regenerates one table/figure of the paper at a reduced
compute budget (scaled synthetic datasets, shortened epochs) and prints
the measured rows next to the paper's reference values.  Set the
environment variable ``RDD_BENCH_FULL=1`` to run closer to the paper's
protocol (full-scale datasets, more seeds, longer training) — expect
minutes-to-hours per table on CPU.
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation.common import HarnessConfig

FULL = os.environ.get("RDD_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def harness_config() -> HarnessConfig:
    """Benchmark-sized (or full, with RDD_BENCH_FULL=1) compute budget."""
    if FULL:
        return HarnessConfig(
            scale=1.0,
            seeds=tuple(range(10)),
            num_base_models=5,
            max_epochs=300,
            patience=20,
        )
    return HarnessConfig(
        scale=0.25,
        seeds=(0, 1, 2),
        num_base_models=3,
        max_epochs=100,
        patience=15,
    )


@pytest.fixture(scope="session")
def quick_config() -> HarnessConfig:
    """Extra-small budget for the heaviest grids (Table 7, Figure 6)."""
    if FULL:
        return HarnessConfig(
            scale=1.0,
            seeds=tuple(range(5)),
            num_base_models=5,
            max_epochs=300,
            patience=20,
        )
    return HarnessConfig(
        scale=0.2,
        seeds=(0, 1),
        num_base_models=3,
        max_epochs=80,
        patience=15,
    )


def emit(report) -> None:
    """Print a harness report (pytest -s shows it; always lands in logs)."""
    print()
    print(report.format())
