"""Figure 6 — accuracy vs labels-per-class sweep (singles and ensembles)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation import fig6


@pytest.mark.benchmark(group="fig6")
def test_fig6_label_sparsity_sweep(benchmark, quick_config):
    report = benchmark.pedantic(
        lambda: fig6.run(quick_config, sweep=(3, 6, 10), include_deep=False),
        iterations=1,
        rounds=1,
    )
    emit(report)
    assert len(report.rows) >= 2
    # Shape: every method improves (or holds) from the fewest to the most labels.
    first, last = report.rows[0], report.rows[-1]
    for method in ("GCN", "RDD(Ensemble)"):
        assert last[method] >= first[method] - 0.05, f"{method} should improve with more labels"
    # RDD stays at or near the top of the ensemble panel at each point.
    for row in report.rows:
        best = max(row["Bagging"], row["BANs"], row["RDD(Ensemble)"])
        assert row["RDD(Ensemble)"] >= best - 0.05
