"""Streaming-delta benchmark: k-hop invalidation vs full-table recompute.

Two measurements back the streaming subsystem (committed to
``BENCH_streaming.json``, guarded by
``scripts/check_bench.py --bench streaming``):

1. **Invalidation speedup** — at small delta rates (a handful of edge
   events per batch), applying a delta and refreshing only the
   k-hop-affected logits rows must beat the naive alternative — renormalize
   ``Â`` from scratch and recompute the whole table — by at least
   :data:`SPEEDUP_FLOOR`.  Both arms use the same row-pure forward
   (:class:`repro.serving.refresh.RowRefresher`), so the comparison is
   incremental-vs-full of the *same* computation, and both arms produce
   bitwise-identical tables (asserted here, not just tested elsewhere).

2. **Freshness vs latency** — a loadgen-style scenario: client threads
   hammer a micro-batched streaming engine while deltas land at a fixed
   rate.  In **lazy** mode queries pay stale-row recomputes inline; with
   a **BackgroundRefresher** the eager thread absorbs them and queries
   mostly hit a fresh table.  Latencies are reported, not gated (they
   are wall-clock noisy and the refresher thread competes for the GIL);
   the gated shape is eager stale hits << lazy stale hits.

Run ``python scripts/bench_streaming.py`` to refresh the baseline.  The
pytest entries are ``perf``-marked and excluded from tier-1.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import pytest  # noqa: E402
import scipy.sparse as sp  # noqa: E402

OUTPUT_PATH = REPO_ROOT / "BENCH_streaming.json"

#: Incremental apply+refresh must beat scratch normalize+rebuild by this.
SPEEDUP_FLOOR = 5.0

#: Edge events per delta batch ("small delta rates").
DELTA_EDGES = 4

NUM_NODES = 50_000
NUM_EDGES = 100_000
NUM_CLASSES = 7
NUM_FEATURES = 1_000
HIDDEN = 16


def make_serving_stack(seed: int = 0):
    """A citation-like DC-SBM graph at serving scale (~25k nodes, sparse
    bag-of-words features) + untrained GCN artifact + streaming engine.

    Big enough that a full-table recompute has real cost, while a small
    delta's k-hop closure stays a sliver of the table — the regime the
    streaming subsystem is built for.
    """
    from repro.datasets.features import generate_topic_features
    from repro.datasets.sbm import generate_dcsbm_graph
    from repro.datasets.splits import planetoid_split
    from repro.graph.graph import Graph
    from repro.models.gcn import GCN
    from repro.serving import ModelSpec, PredictionEngine, export_model_artifact

    rng = np.random.default_rng(seed)
    adjacency, labels = generate_dcsbm_graph(
        NUM_NODES,
        NUM_CLASSES,
        NUM_EDGES,
        homophily=0.85,
        rng=rng,
        degree_exponent=3.0,  # bounded hubs: k-hop closures stay local
    )
    features = generate_topic_features(labels, NUM_FEATURES, rng)
    train, val, test = planetoid_split(labels, rng)
    graph = Graph(adjacency, features, labels, train, val, test, name="stream-bench")
    model = GCN(
        graph.num_features, graph.num_classes, np.random.default_rng(3), hidden=HIDDEN
    )
    model.eval()
    tmp = tempfile.mkdtemp(prefix="bench-streaming-")
    path = Path(tmp) / "gcn.rddart"
    export_model_artifact(path, model, ModelSpec("gcn", {"hidden": HIDDEN}), graph)
    engine = PredictionEngine(path, graph, streaming=True)
    return graph, path, engine


def make_deltas(graph, count: int, seed: int = 1) -> List:
    """``count`` small deltas, each flipping :data:`DELTA_EDGES` edges
    (half removals of present edges, half additions of absent ones),
    valid against the evolving graph."""
    from repro.graph import GraphDelta, apply_delta

    rng = np.random.default_rng(seed)
    deltas = []
    state = graph
    for _ in range(count):
        coo = sp.triu(state.adjacency, k=1).tocoo()
        present = np.stack([coo.row, coo.col], axis=1)
        removed = present[
            rng.choice(len(present), size=DELTA_EDGES // 2, replace=False)
        ]
        present_set = set(map(tuple, present.tolist()))
        added = []
        while len(added) < DELTA_EDGES - DELTA_EDGES // 2:
            u, v = rng.integers(0, state.num_nodes, size=2)
            edge = (int(min(u, v)), int(max(u, v)))
            if u != v and edge not in present_set and edge not in added:
                added.append(edge)
        delta = GraphDelta(
            added_edges=np.asarray(added, dtype=np.int64),
            removed_edges=removed.astype(np.int64),
        )
        deltas.append(delta)
        state = apply_delta(state, delta)
    return deltas


# ----------------------------------------------------------------------
# 1. k-hop invalidation vs full-table recompute
# ----------------------------------------------------------------------
def invalidation_speedup(quick: bool = False) -> Dict[str, object]:
    from repro.graph import apply_delta
    from repro.serving import PredictionEngine
    from repro.serving.refresh import RowRefresher

    graph, artifact_path, engine = make_serving_stack()
    count = 5 if quick else 15
    deltas = make_deltas(graph, count)
    engine.logits_table()  # build the version-0 table outside the timing

    # Arm A: incremental — apply the delta, refresh the k-hop closure.
    incremental_s, refreshed_rows = [], []
    for delta in deltas:
        started = time.perf_counter()
        engine.apply_delta(delta)
        rows = engine.refresh()
        incremental_s.append(time.perf_counter() - started)
        refreshed_rows.append(rows)

    # Arm B: naive — renormalize Â from scratch and rebuild the whole
    # table with the *same* row-pure routine.  Graph edits are applied
    # outside the timed region (the naive cost being measured is the
    # recompute, not the CSR splice).
    updated = []
    state = graph
    for delta in deltas:
        state = apply_delta(state, delta)
        stripped = state.astype(engine.artifact.dtype)
        updated.append(stripped)
    full_s = []
    rebuilt = RowRefresher(engine._model, engine.artifact.dtype)
    for state in updated:
        state._normalized = None  # force the from-scratch normalization
        started = time.perf_counter()
        state.normalized_adjacency()
        rebuilt.rebuild(state)
        full_s.append(time.perf_counter() - started)

    # Both arms end on the same graph: the tables must agree bitwise.
    if not np.array_equal(engine.logits_table(), rebuilt.table):
        raise AssertionError("incremental and full-recompute tables diverged")

    incremental_median = float(np.median(incremental_s))
    full_median = float(np.median(full_s))
    return {
        "nodes": int(graph.num_nodes),
        "edges": int(graph.num_edges),
        "hidden": HIDDEN,
        "deltas": count,
        "edges_per_delta": DELTA_EDGES,
        "mean_rows_refreshed": float(np.mean(refreshed_rows)),
        "incremental_median_s": incremental_median,
        "full_median_s": full_median,
        "speedup": full_median / incremental_median,
    }


# ----------------------------------------------------------------------
# 2. Freshness vs p99 under load
# ----------------------------------------------------------------------
def freshness_scenario(quick: bool = False) -> Dict[str, object]:
    from repro.serving import BackgroundRefresher, MicroBatcher, PredictionEngine

    graph, artifact_path, _ = make_serving_stack()
    duration_s = 0.6 if quick else 2.0
    delta_interval_s = 0.05
    num_clients = 4

    def run_mode(eager: bool) -> Dict[str, object]:
        engine = PredictionEngine(artifact_path, graph, streaming=True)
        engine.logits_table()
        deltas = make_deltas(graph, int(duration_s / delta_interval_s) + 2)
        latencies: List[float] = []
        lat_lock = threading.Lock()
        stop = threading.Event()

        def client(worker: int):
            rng = np.random.default_rng(worker)
            while not stop.is_set():
                nodes = rng.integers(0, graph.num_nodes, size=4)
                started = time.perf_counter()
                future = batcher.submit(nodes)
                future.result(timeout=30)
                elapsed = time.perf_counter() - started
                with lat_lock:
                    latencies.append(elapsed)

        refresher = BackgroundRefresher(engine, interval_s=0.01) if eager else None
        with MicroBatcher(
            engine.predict_many, max_batch_size=8, max_wait_s=0.001
        ) as batcher:
            if refresher is not None:
                refresher.start()
            threads = [
                threading.Thread(target=client, args=(w,), daemon=True)
                for w in range(num_clients)
            ]
            for thread in threads:
                thread.start()
            deadline = time.time() + duration_s
            applied = 0
            try:
                while time.time() < deadline and applied < len(deltas):
                    engine.apply_delta(deltas[applied])
                    applied += 1
                    time.sleep(delta_interval_s)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)
                if refresher is not None:
                    refresher.stop()
        latencies_ms = np.asarray(latencies) * 1e3
        return {
            "mode": "eager" if eager else "lazy",
            "queries": len(latencies),
            "deltas_applied": applied,
            "p50_ms": float(np.percentile(latencies_ms, 50)),
            "p99_ms": float(np.percentile(latencies_ms, 99)),
            "stale_hit_queries": engine.metrics.counter("stale_row_hits_total"),
            "rows_refreshed_total": engine.metrics.counter("rows_refreshed_total"),
            "refresh_cycles": engine.metrics.counter("refresh_cycles_total"),
        }

    return {"lazy": run_mode(eager=False), "eager": run_mode(eager=True)}


def run_benchmark(quick: bool = False) -> Dict[str, object]:
    invalidation = invalidation_speedup(quick=quick)
    freshness = freshness_scenario(quick=quick)
    return {
        "invalidation": invalidation,
        "freshness": freshness,
        "invalidation_speedup": invalidation["speedup"],
    }


def main(argv=None) -> int:
    results = run_benchmark()
    OUTPUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nresults written to {OUTPUT_PATH}")
    return 0


# ----------------------------------------------------------------------
# pytest entries (perf-marked; excluded from tier-1)
# ----------------------------------------------------------------------
@pytest.mark.perf
def test_khop_refresh_beats_full_recompute_floor():
    result = invalidation_speedup(quick=True)
    assert result["speedup"] >= SPEEDUP_FLOOR, (
        f"incremental refresh only {result['speedup']:.1f}x over full "
        f"recompute (needs >= {SPEEDUP_FLOOR:.0f}x)"
    )


@pytest.mark.perf
def test_eager_mode_reduces_stale_hits():
    result = freshness_scenario(quick=True)
    assert (
        result["eager"]["stale_hit_queries"] <= result["lazy"]["stale_hit_queries"]
    ), (
        f"eager refreshing should not increase query-side stale hits: "
        f"{result['eager']['stale_hit_queries']} > "
        f"{result['lazy']['stale_hit_queries']}"
    )


if __name__ == "__main__":
    raise SystemExit(main())
