"""Robustness benchmark: attack scale-up + the defense margin.

Two measurements back the robustness subsystem (committed to
``BENCH_robustness.json``, guarded by
``scripts/check_bench.py --bench robustness``):

1. **Attack scale-up** — every registered attack must generate its
   :class:`~repro.graph.delta.DeltaLog` and replay it through the
   incremental ``Â`` maintenance path on a serving-scale DC-SBM graph
   (50k nodes / 100k edges).  Generation and replay throughputs are
   recorded for inspection but not gated — they are machine-dependent
   wall clock; the budget accounting (flips == ``attack_edge_count``)
   is asserted outright.

2. **Defense margin** — the gated headline.  A small
   :func:`~repro.robustness.sweep.run_sweep` trains GCN, vanilla
   knowledge distillation (``kd`` = RDD with both reliability switches
   off) and full RDD on dice-poisoned graphs; the margins
   ``rdd - gcn`` and ``rdd - kd`` in accuracy-under-attack must hold
   :data:`GCN_MARGIN_FLOOR` / :data:`KD_MARGIN_FLOOR`.  Margins are
   small accuracy differences near zero, so (like the obs overhead
   bench) only absolute floors are enforced — a relative band against
   the committed value would be all noise.  Every ingredient is seeded
   (attack RNG, model init, harness seed loop), so the margins are
   reproducible on one machine.

Run ``python scripts/bench_robustness.py`` to refresh the baseline.
The pytest entries are ``perf``-marked and excluded from tier-1.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import pytest  # noqa: E402

OUTPUT_PATH = REPO_ROOT / "BENCH_robustness.json"

#: RDD must beat a plain GCN on the poisoned graph by at least this.
GCN_MARGIN_FLOOR = 0.02

#: RDD must not lose to reliability-free distillation on the poisoned
#: graph — the floor that pins the reliability filter itself.
KD_MARGIN_FLOOR = 0.0

# Attack scale-up: a serving-scale DC-SBM graph.
ATTACK_NUM_NODES = 50_000
ATTACK_NUM_EDGES = 100_000
ATTACK_NUM_CLASSES = 7
ATTACK_BUDGET = 0.05

# Defense sweep: the setting the margin is measured at.
SWEEP_ATTACK = "dice"
SWEEP_BUDGET = 0.25


def make_attack_graph(quick: bool = False, seed: int = 0):
    """A citation-like DC-SBM graph at attack scale (labels matter to the
    label-aware attacks; features are a thin stand-in — no attack reads
    them)."""
    from repro.datasets.features import generate_topic_features
    from repro.datasets.sbm import generate_dcsbm_graph
    from repro.datasets.splits import planetoid_split
    from repro.graph.graph import Graph

    num_nodes = ATTACK_NUM_NODES // 5 if quick else ATTACK_NUM_NODES
    num_edges = ATTACK_NUM_EDGES // 5 if quick else ATTACK_NUM_EDGES
    rng = np.random.default_rng(seed)
    adjacency, labels = generate_dcsbm_graph(
        num_nodes,
        ATTACK_NUM_CLASSES,
        num_edges,
        homophily=0.85,
        rng=rng,
        degree_exponent=3.0,
    )
    features = generate_topic_features(labels, 16, rng)
    train, val, test = planetoid_split(labels, rng)
    return Graph(adjacency, features, labels, train, val, test, name="attack-bench")


# ----------------------------------------------------------------------
# 1. Attack generation + incremental replay at scale
# ----------------------------------------------------------------------
def attack_scale(quick: bool = False) -> Dict[str, object]:
    from repro.robustness.attacks import ATTACKS, attack_edge_count, generate_attack

    graph = make_attack_graph(quick=quick)
    graph.normalized_adjacency()  # warm the cache: replay goes incremental
    expected = attack_edge_count(graph, ATTACK_BUDGET)

    attacks: Dict[str, object] = {}
    for name in sorted(ATTACKS):
        started = time.perf_counter()
        log = generate_attack(graph, name, ATTACK_BUDGET, seed=0)
        generate_s = time.perf_counter() - started
        flips = sum(len(d.added_edges) + len(d.removed_edges) for d in log)
        if flips != expected:
            raise AssertionError(
                f"{name}: spent {flips} flips of a {expected}-flip budget"
            )
        started = time.perf_counter()
        attacked = log.replay(graph)
        replay_s = time.perf_counter() - started
        if attacked._normalized is None:
            raise AssertionError(f"{name}: replay dropped the incremental Â cache")
        attacks[name] = {
            "flips": int(flips),
            "generate_s": generate_s,
            "generate_flips_per_s": flips / generate_s,
            "replay_s": replay_s,
        }
    return {
        "nodes": int(graph.num_nodes),
        "edges": int(graph.num_edges),
        "budget": ATTACK_BUDGET,
        "attacks": attacks,
    }


# ----------------------------------------------------------------------
# 2. Defense margin: RDD vs GCN / reliability-free KD under attack
# ----------------------------------------------------------------------
def defense_sweep(quick: bool = False) -> Dict[str, object]:
    from repro.evaluation.common import HarnessConfig
    from repro.robustness.report import defense_margins
    from repro.robustness.sweep import run_sweep

    config = HarnessConfig(
        scale=0.1 if quick else 0.2,
        seeds=(0, 1) if quick else (0, 1, 2),
        num_base_models=3 if quick else 5,
        max_epochs=40 if quick else 100,
        patience=15 if quick else 30,
        workers=2,
    )
    started = time.perf_counter()
    report = run_sweep(
        config,
        attacks=(SWEEP_ATTACK,),
        budgets=(SWEEP_BUDGET,),
        methods=("gcn", "kd", "rdd"),
    )
    sweep_s = time.perf_counter() - started

    margins = defense_margins(report)
    attacked = [m for m in margins if m["attack"] != "none"]
    return {
        "dataset": "cora",
        "scale": config.scale,
        "seeds": list(config.seeds),
        "attack": SWEEP_ATTACK,
        "attack_budget": SWEEP_BUDGET,
        "sweep_s": sweep_s,
        "rows": report.rows,
        "margins": margins,
        "margin_vs_gcn": max(m["margin_vs_gcn"] for m in attacked),
        "margin_vs_kd": max(m["margin_vs_kd"] for m in attacked),
    }


def run_benchmark(quick: bool = False) -> Dict[str, object]:
    scale = attack_scale(quick=quick)
    defense = defense_sweep(quick=quick)
    return {
        "attack_scale": scale,
        "defense": defense,
        "defense_margin_vs_gcn": defense["margin_vs_gcn"],
        "defense_margin_vs_kd": defense["margin_vs_kd"],
    }


def main(argv=None) -> int:
    results = run_benchmark()
    OUTPUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nresults written to {OUTPUT_PATH}")
    return 0


# ----------------------------------------------------------------------
# pytest entries (perf-marked; excluded from tier-1)
# ----------------------------------------------------------------------
@pytest.mark.perf
def test_attacks_scale_and_replay_incrementally():
    result = attack_scale(quick=True)
    assert set(result["attacks"]) == {"degree_target", "dice", "random_flip"}
    for name, stats in result["attacks"].items():
        assert stats["flips"] > 0, name
        assert stats["generate_flips_per_s"] > 0, name


@pytest.mark.perf
def test_reliability_filter_holds_defense_floors():
    result = defense_sweep(quick=True)
    assert result["margin_vs_gcn"] >= GCN_MARGIN_FLOOR, (
        f"rdd beat gcn by only {result['margin_vs_gcn']:+.3f} under "
        f"{SWEEP_ATTACK}@{SWEEP_BUDGET} (needs >= {GCN_MARGIN_FLOOR:+.3f})"
    )
    assert result["margin_vs_kd"] >= KD_MARGIN_FLOOR, (
        f"rdd trailed reliability-free distillation by "
        f"{result['margin_vs_kd']:+.3f} under {SWEEP_ATTACK}@{SWEEP_BUDGET}"
    )


if __name__ == "__main__":
    raise SystemExit(main())
