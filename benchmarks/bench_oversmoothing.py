"""Extension bench: the over-smoothing premise behind Table 5.

The paper attributes deep GCNs' stagnation to feature collapse.  This
bench trains GCNs of increasing depth and measures the collapse directly
(mean pairwise embedding distance, MAD gap), asserting that depth shrinks
the neighbor/remote separation — the mechanism Table 5 relies on.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis import depth_collapse_curve
from repro.datasets import load_dataset
from repro.evaluation.common import ExperimentReport


@pytest.mark.benchmark(group="extensions")
def test_depth_collapse(benchmark, harness_config):
    def sweep():
        graph = load_dataset("cora", seed=0, scale=harness_config.scale)
        curve = depth_collapse_curve(
            graph, depths=(2, 4, 8, 12), seed=0, max_epochs=harness_config.max_epochs
        )
        report = ExperimentReport(
            experiment="Extension: over-smoothing vs depth (cora)",
            notes="MAD gap (neighbor vs remote separation) should shrink with depth.",
        )
        for depth, metrics in sorted(curve.items()):
            report.rows.append({"depth": depth, **metrics})
        return report

    report = benchmark.pedantic(sweep, iterations=1, rounds=1)
    emit(report)
    by_depth = {r["depth"]: r for r in report.rows}
    deep = [by_depth[d] for d in (4, 8, 12)]
    # Collapse shows up somewhere in the deep regime: the *minimum*
    # neighbor/remote separation over deep nets falls below the 2-layer
    # baseline (a specific deep depth can escape collapse by failing to
    # train at all, which leaves random, uncollapsed embeddings).
    assert min(r["mad_gap"] for r in deep) <= by_depth[2]["mad_gap"] + 0.02
    # Accuracy does not improve with depth — the Table 5 phenomenon.
    assert max(r["test_accuracy"] for r in deep) <= by_depth[2]["test_accuracy"] + 0.05
