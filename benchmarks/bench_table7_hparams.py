"""Table 7 — hyperparameter grid p × γ × β on Cora (reduced grid).

Shape targets: cells with γ>0 beat the γ=0 column on average (the L2
knowledge transfer matters, the paper's strongest conclusion from this
table).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.evaluation import table7


@pytest.mark.benchmark(group="table7")
def test_table7_hyperparameter_grid(benchmark, quick_config):
    report = benchmark.pedantic(
        lambda: table7.run(
            quick_config,
            p_values=(40.0, 80.0),
            gamma_values=(0.0, 1.0),
            beta_values=(0.0, 1.0),
        ),
        iterations=1,
        rounds=1,
    )
    emit(report)
    gamma_on = [r["ensemble_accuracy"] for r in report.rows if r["gamma"] > 0]
    gamma_off = [r["ensemble_accuracy"] for r in report.rows if r["gamma"] == 0]
    assert np.mean(gamma_on) >= np.mean(gamma_off) - 0.02, "knowledge transfer (gamma) should help"
    # All cells should stay in a sane accuracy band (no degenerate collapse).
    for row in report.rows:
        assert row["ensemble_accuracy"] > 0.4
