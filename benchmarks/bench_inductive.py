"""Extension bench: inductive generalization to unseen nodes."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation import ext_inductive


@pytest.mark.benchmark(group="extensions")
def test_inductive_generalization(benchmark, harness_config):
    report = benchmark.pedantic(
        lambda: ext_inductive.run(harness_config, unseen_fraction=0.5),
        iterations=1,
        rounds=1,
    )
    emit(report)
    rows = {r["method"]: r["unseen_accuracy"] for r in report.rows}
    # Hiding structure cannot help (allowing seed noise).
    assert rows["GCN inductive"] <= rows["GCN transductive"] + 0.05
    # RDD must remain functional and competitive with GCN inductively.
    assert rows["RDD(Ensemble) inductive"] >= rows["GCN inductive"] - 0.05
