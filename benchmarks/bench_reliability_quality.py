"""Extension bench: oracle quality of the reliability machinery.

Uses the synthetic datasets' known labels to verify the core premise of
Algorithms 1–2 — the teacher is substantially more accurate on nodes it
marks reliable, and reliable edges are purer than the raw edge set —
including under injected feature noise (failure injection).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis import edge_reliability_quality, node_reliability_quality
from repro.core import RDDTrainer, node_reliability
from repro.datasets import cora_like
from repro.evaluation.common import ExperimentReport
from repro.models import GCN
from repro.models.base import softmax_rows
from repro.training import Trainer, make_rng


def _reliability_quality(graph, config):
    """Train teacher + student, return node/edge quality diagnostics."""
    trainer = Trainer(max_epochs=config.max_epochs, patience=config.patience)
    teacher_model = GCN(graph.num_features, graph.num_classes, make_rng(0), hidden=config.hidden)
    trainer.fit(teacher_model, graph)
    teacher_probs = softmax_rows(teacher_model.predict_logits(graph))

    student_model = GCN(graph.num_features, graph.num_classes, make_rng(1), hidden=config.hidden)
    trainer.fit(student_model, graph)
    student_probs = softmax_rows(student_model.predict_logits(graph))

    sets = node_reliability(teacher_probs, student_probs, graph.labels, graph.train_index, p=40.0)
    nodes = node_reliability_quality(sets, teacher_probs, graph.labels)
    edges = edge_reliability_quality(graph, sets, student_probs.argmax(axis=1))
    return nodes, edges


@pytest.mark.benchmark(group="extensions")
def test_reliability_oracle_quality(benchmark, harness_config):
    def sweep():
        report = ExperimentReport(
            experiment="Extension: oracle reliability quality (cora, clean vs noisy)",
            notes="Reliable nodes must be markedly more accurate; reliable edges purer.",
        )
        for label, noise in (("clean", 0.0), ("30% feature noise", 0.3)):
            graph = cora_like(seed=0, scale=harness_config.scale, feature_noise=noise)
            nodes, edges = _reliability_quality(graph, harness_config)
            report.rows.append(
                {
                    "condition": label,
                    "reliable_precision": nodes.reliable_precision,
                    "unreliable_precision": nodes.unreliable_precision,
                    "separation": nodes.separation,
                    "edge_purity_all": edges.all_edge_same_class_rate,
                    "edge_purity_reliable": edges.reliable_edge_same_class_rate,
                }
            )
        return report

    report = benchmark.pedantic(sweep, iterations=1, rounds=1)
    emit(report)
    for row in report.rows:
        # Core premise: the reliable set is much cleaner than the unreliable one.
        assert row["separation"] > 0.1, f"{row['condition']}: reliability separation too weak"
    clean = next(r for r in report.rows if r["condition"] == "clean")
    noisy = next(r for r in report.rows if r["condition"] != "clean")
    # On clean data the edge filter strictly purifies; under heavy feature
    # noise it must at least stay in the neighborhood of the raw edge set
    # (the filter keys on *predictions*, which the noise degrades too).
    assert clean["edge_purity_reliable"] >= clean["edge_purity_all"] - 0.02
    assert noisy["edge_purity_reliable"] >= noisy["edge_purity_all"] - 0.1
