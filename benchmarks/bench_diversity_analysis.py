"""Extension bench: quantify the diversity story behind Table 6.

The paper argues Bagging has high diversity / weak bases, BANs low
diversity / strong bases, and RDD both.  This bench measures pairwise
disagreement and the ambiguity decomposition for all four ensembles
(including Snapshot, §2.3) and asserts the ordering the paper claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis import ambiguity_decomposition, pairwise_disagreement
from repro.core import RDDTrainer
from repro.datasets import load_dataset
from repro.evaluation.common import ExperimentReport, mean_over_seeds
from repro.models import GCN
from repro.models.base import softmax_rows
from repro.training import Trainer, spawn_rngs


@pytest.mark.benchmark(group="extensions")
def test_diversity_ordering(benchmark, harness_config):
    def sweep():
        report = ExperimentReport(
            experiment="Extension: ensemble diversity metrics (cora)",
            notes="Paper claim: diversity(Bagging) > diversity(BANs); RDD in between.",
        )
        config = harness_config
        trainer = Trainer(max_epochs=config.max_epochs, patience=config.patience)

        for seed in config.seeds:
            graph = load_dataset("cora", seed=seed, scale=config.scale)

            # Bagging bases: independent models.
            bagging_probs = []
            for rng in spawn_rngs(seed, config.num_base_models):
                model = GCN(graph.num_features, graph.num_classes, rng, hidden=config.hidden)
                trainer.fit(model, graph)
                bagging_probs.append(softmax_rows(model.predict_logits(graph)))

            # BANs bases: KD chain.
            from repro.tensor import ops
            from repro.tensor.functional import kl_divergence, masked_cross_entropy

            bans_probs = []
            teacher = None
            for rng in spawn_rngs(seed + 1000, config.num_base_models):
                model = GCN(graph.num_features, graph.num_classes, rng, hidden=config.hidden)
                if teacher is None:
                    trainer.fit(model, graph)
                else:
                    captured = teacher

                    def kd_loss(m, logits, epoch):
                        log_probs = ops.log_softmax(logits, axis=1)
                        supervised = masked_cross_entropy(log_probs, graph.labels, graph.train_index)
                        return ops.add(supervised, kl_divergence(log_probs, captured))

                    trainer.fit(model, graph, loss_fn=kd_loss)
                probs = softmax_rows(model.predict_logits(graph))
                bans_probs.append(probs)
                teacher = probs

            # RDD bases: capture via a custom factory that records models.
            rdd_models = []

            def capturing_factory(g, rng):
                model = GCN(g.num_features, g.num_classes, rng, hidden=config.hidden)
                rdd_models.append(model)
                return model

            RDDTrainer(config.rdd_config(), model_factory=capturing_factory).fit(graph, seed=seed)
            rdd_probs = [softmax_rows(m.predict_logits(graph)) for m in rdd_models]

            test = graph.test_index
            for name, probs in (
                ("Bagging", bagging_probs),
                ("BANs", bans_probs),
                ("RDD", rdd_probs),
            ):
                test_probs = [p[test] for p in probs]
                decomposition = ambiguity_decomposition(test_probs, graph.labels[test])
                report.rows.append(
                    {
                        "seed": seed,
                        "method": name,
                        "disagreement": pairwise_disagreement(test_probs),
                        "ambiguity": decomposition["ambiguity"],
                        "ensemble_error": decomposition["ensemble_error"],
                    }
                )
        return report

    report = benchmark.pedantic(sweep, iterations=1, rounds=1)
    emit(report)

    def mean_for(method, key):
        return mean_over_seeds([r[key] for r in report.rows if r["method"] == method])

    # The paper's diversity ordering: independent Bagging bases disagree
    # more than BANs' mimicking chain.
    assert mean_for("Bagging", "disagreement") >= mean_for("BANs", "disagreement") - 0.02
    # RDD keeps nontrivial diversity (strictly above zero disagreement).
    assert mean_for("RDD", "disagreement") > 0.0
