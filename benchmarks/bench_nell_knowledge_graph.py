"""NELL column of Tables 3/5: the knowledge-graph workload.

NELL is the paper's stress case — 210 classes, one-hot identity features
(61278-dim sparse at full scale) — exercising the sparse-feature code
path end to end.  At benchmark scale the absolute accuracies are low
(210-way classification from pure structure), but the ordering
RDD(Ensemble) ≥ single GCN must hold, as in the paper's NELL column.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, emit
from repro.core import RDDConfig, RDDTrainer
from repro.datasets import nell_like
from repro.evaluation.common import ExperimentReport
from repro.models import GCN
from repro.training import Trainer, make_rng

SCALE = 0.05 if FULL else 0.015
EPOCHS = 200 if FULL else 40


@pytest.mark.benchmark(group="table3-nell")
def test_nell_rdd_vs_gcn(benchmark):
    def run():
        graph = nell_like(seed=0, scale=SCALE)
        # The paper uses γ_initial = 0.01 and hidden 100 on NELL; hidden is
        # reduced with the graph.
        gcn = GCN(graph.num_features, graph.num_classes, make_rng(0), hidden=32)
        gcn_result = Trainer(max_epochs=EPOCHS, patience=20).fit(gcn, graph)
        rdd_result = RDDTrainer(
            RDDConfig(num_base_models=3, max_epochs=EPOCHS, hidden=32, gamma_initial=0.01)
        ).fit(graph, seed=0)

        report = ExperimentReport(
            experiment=f"Tables 3/5, NELL column (scale={SCALE})",
            notes="Shape target: RDD(Ensemble) >= single GCN on the knowledge graph.",
        )
        report.rows.append({"method": "Single GCN", "test_accuracy": gcn_result.test_accuracy,
                            "paper_accuracy_pct": 83.0})
        report.rows.append({"method": "RDD(Single)", "test_accuracy": rdd_result.last_base_test_accuracy,
                            "paper_accuracy_pct": 85.2})
        report.rows.append({"method": "RDD(Ensemble)", "test_accuracy": rdd_result.ensemble_test_accuracy,
                            "paper_accuracy_pct": 86.3})
        return report

    report = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(report)
    by_method = {r["method"]: r["test_accuracy"] for r in report.rows}
    assert by_method["RDD(Ensemble)"] >= by_method["Single GCN"] - 0.03
