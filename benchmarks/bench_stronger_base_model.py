"""Extension suggested by the paper (§5.3): a stronger base model.

"our method is not limited to the base model we use, so the margin can be
further improved if we use a more powerful base model like GAT" — this
bench runs RDD over GAT students next to RDD over GCN students and checks
that the framework benefits from (or at least tolerates) the swap.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core import RDDTrainer
from repro.datasets import load_dataset
from repro.evaluation.common import ExperimentReport, mean_over_seeds
from repro.models import GAT, GCN


@pytest.mark.benchmark(group="extensions")
def test_rdd_with_gat_base(benchmark, harness_config):
    def sweep():
        config = harness_config
        report = ExperimentReport(
            experiment="Extension: RDD base-model swap (cora)",
            notes="§5.3: RDD is architecture-agnostic; GAT students must work.",
        )

        def gcn_factory(graph, rng):
            return GCN(graph.num_features, graph.num_classes, rng, hidden=config.hidden)

        def gat_factory(graph, rng):
            return GAT(graph.num_features, graph.num_classes, rng, hidden=8, num_heads=2)

        for name, factory in (("RDD over GCN", gcn_factory), ("RDD over GAT", gat_factory)):
            results = []
            for seed in config.seeds:
                graph = load_dataset("cora", seed=seed, scale=config.scale)
                trainer = RDDTrainer(config.rdd_config(), model_factory=factory)
                results.append(trainer.fit(graph, seed=seed))
            report.rows.append(
                {
                    "base_model": name,
                    "ensemble_accuracy": mean_over_seeds([r.ensemble_test_accuracy for r in results]),
                    "last_single_accuracy": mean_over_seeds([r.last_base_test_accuracy for r in results]),
                }
            )
        return report

    report = benchmark.pedantic(sweep, iterations=1, rounds=1)
    emit(report)
    by_base = {r["base_model"]: r["ensemble_accuracy"] for r in report.rows}
    # The framework must remain functional and competitive under the swap.
    assert by_base["RDD over GAT"] > 0.5
    assert abs(by_base["RDD over GAT"] - by_base["RDD over GCN"]) < 0.25
