"""Training-step benchmark: fused kernels + gradient arena vs legacy tape.

Times the **full taped train step** — forward, backward, optimizer
update — in two configurations that are bitwise identical in output:

* **legacy** — the op-by-op tape (``use_fused_ops(False)``), plain
  ``Tensor.backward`` (per-step DFS topological sort), and fresh
  gradient-buffer allocation on every first accumulation: the training
  step as it existed before the fused layer;
* **fused** — the fused kernels (single-node softmax cross entropy,
  ``linear``, ``gcn_layer``, the validation-free sparse-dropout
  rebuild) under a :class:`~repro.tensor.tensor.GradArena`: recycled
  gradient buffers, ``zero_grad(set_to_none=True)``, and the cached
  backward schedule replay.

Workloads span the regimes the distillation pipeline hits:

* ``gcn``        — the paper's student (2-layer GCN, sparse features,
  full-scale Cora stand-in).  Kernel-bound: the sparse products and the
  dropout RNG dominate, so the tape overhead the fused path removes is
  a modest slice.
* ``deep_dense`` — a 3-layer DenseGCN with a dense running state (the
  Table-5 deep-model regime).  Many taped ops over large dense
  intermediates: the regime where per-step allocation — feature-sized
  dropout scratch and first-touch gradient buffers — dominates and the
  fused+arena path pays off hardest.
* ``jknet``      — 3-layer jumping-knowledge net, between the two.
* ``mlp``        — graph-free baseline (fused ``linear`` only).

Every workload asserts fused-vs-legacy bitwise parity on the updated
parameters before any timing.  Run ``python scripts/bench_trainstep.py``
to write ``BENCH_trainstep.json`` at the repo root;
``scripts/check_bench.py`` compares a fresh run against the committed
baseline.  The pytest entries are ``perf``-marked and excluded from
tier-1.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Optional

import numpy as np
import pytest

from repro.datasets import cora_like
from repro.models.densegcn import DenseGCN
from repro.models.gcn import GCN
from repro.models.jknet import JKNet
from repro.models.mlp import MLP
from repro.nn.optim import Adam
from repro.tensor.fused import use_fused_ops
from repro.tensor.tensor import GradArena
from repro.training.trainer import supervised_loss

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_trainstep.json"

WORKLOADS = {
    "gcn": dict(scale=1.0, factory=lambda g, rng: GCN(g.num_features, g.num_classes, rng)),
    "deep_dense": dict(
        scale=0.3,
        factory=lambda g, rng: DenseGCN(
            g.num_features, g.num_classes, rng, hidden=[32, 16], num_layers=3
        ),
    ),
    "jknet": dict(
        scale=0.3,
        factory=lambda g, rng: JKNet(g.num_features, g.num_classes, rng),
    ),
    "mlp": dict(scale=1.0, factory=lambda g, rng: MLP(g.num_features, g.num_classes, rng)),
}


def _make_step(graph, factory, fused: bool, arena: Optional[GradArena]):
    """One full train step (forward + backward + optimizer) as a closure."""
    model = factory(graph, np.random.default_rng(0))
    optimizer = Adam(model.parameters(), lr=0.01, weight_decay=5e-4)
    loss_fn = supervised_loss(graph)

    def step(epoch: int) -> None:
        with use_fused_ops(fused):
            model.train()
            if arena is None:
                loss = loss_fn(model, model(graph), epoch)
                optimizer.zero_grad()
                loss.backward()
            else:
                with arena.record():
                    loss = loss_fn(model, model(graph), epoch)
                optimizer.zero_grad()
                arena.backward(loss)
            optimizer.step()

    return model, step


def _assert_parity(graph, factory, steps: int = 5) -> None:
    """Fused and legacy steps must leave identical parameters behind."""
    legacy_model, legacy_step = _make_step(graph, factory, fused=False, arena=None)
    fused_model, fused_step = _make_step(graph, factory, fused=True, arena=GradArena())
    for epoch in range(steps):
        legacy_step(epoch)
        fused_step(epoch)
    for (name_a, a), (name_b, b) in zip(
        legacy_model.named_parameters(), fused_model.named_parameters()
    ):
        assert name_a == name_b
        assert np.array_equal(a.data, b.data), f"parameter {name_a} diverged"


def _best_of(step, repeats: int, epoch_base: int) -> float:
    """Best-of-N wall time of one train step (min is noise-robust)."""
    best = float("inf")
    for offset in range(repeats):
        start = time.perf_counter()
        step(epoch_base + offset)
        best = min(best, time.perf_counter() - start)
    return best


def bench_workload(name: str, repeats: int = 50) -> Dict[str, float]:
    spec = WORKLOADS[name]
    graph = cora_like(seed=0, scale=spec["scale"])
    graph.normalized_adjacency()  # pre-normalize outside the timed region
    _assert_parity(graph, spec["factory"])

    # Build each path's step once — the persistent arena is part of what
    # is being measured (steady-state buffer reuse and the cached
    # backward schedule only pay off across steps) — then alternate
    # best-of rounds so machine drift hits both paths equally.
    _, legacy_step = _make_step(graph, spec["factory"], fused=False, arena=None)
    _, fused_step = _make_step(graph, spec["factory"], fused=True, arena=GradArena())
    for epoch in range(5):  # warm caches, allocator, cached schedule
        legacy_step(epoch)
        fused_step(epoch)
    rounds = 4
    per_round = max(1, repeats // rounds)
    legacy = fused = float("inf")
    for round_index in range(rounds):
        epoch_base = 5 + round_index * per_round
        legacy = min(legacy, _best_of(legacy_step, per_round, epoch_base))
        fused = min(fused, _best_of(fused_step, per_round, epoch_base))
    return {
        "scale": spec["scale"],
        "legacy_step_s": legacy,
        "fused_step_s": fused,
        "speedup": legacy / fused,
    }


def run_benchmark(quick: bool = False) -> Dict[str, object]:
    # The legacy path's allocation jitter needs a few dozen samples for
    # a stable best-of minimum, so even quick mode keeps 30 repeats.
    repeats = 30 if quick else 50
    workloads = {name: bench_workload(name, repeats=repeats) for name in WORKLOADS}
    speedups = [w["speedup"] for w in workloads.values()]
    return {
        "workloads": workloads,
        # Headline: the deep taped regime the fused layer targets.
        "trainstep_speedup": workloads["deep_dense"]["speedup"],
        "geomean_speedup": float(np.exp(np.mean(np.log(speedups)))),
    }


def main(argv=None) -> int:
    results = run_benchmark()
    OUTPUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    for name, w in results["workloads"].items():
        print(
            f"{name:11s} legacy {w['legacy_step_s'] * 1e3:8.3f} ms  "
            f"fused {w['fused_step_s'] * 1e3:8.3f} ms  {w['speedup']:.2f}x"
        )
    print(f"train-step speedup (deep taped regime): {results['trainstep_speedup']:.2f}x")
    print(f"geometric-mean speedup over workloads:  {results['geomean_speedup']:.2f}x")
    print(f"wrote {OUTPUT_PATH}")
    return 0


# ----------------------------------------------------------------------
# pytest entries (perf-marked; excluded from the tier-1 run)
# ----------------------------------------------------------------------
@pytest.mark.perf
def test_trainstep_speedup_deep_taped_regime():
    result = bench_workload("deep_dense")
    assert result["speedup"] >= 1.5


@pytest.mark.perf
def test_trainstep_never_slower():
    # Kernel-bound workloads can't gain much, but the fused path must
    # not cost anything either (small tolerance for timer noise).
    for name in ("gcn", "mlp"):
        result = bench_workload(name, repeats=30)
        assert result["speedup"] >= 0.9, (name, result)


@pytest.mark.perf
def test_trainstep_parity_is_enforced():
    # bench_workload refuses to time configurations that diverge.
    spec = WORKLOADS["gcn"]
    graph = cora_like(seed=0, scale=0.1)
    _assert_parity(graph, spec["factory"])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
