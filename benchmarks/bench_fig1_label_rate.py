"""Figure 1 — GCN accuracy vs label rate on Cora.

Regenerates the paper's motivating curve; asserts the monotone-decay shape
(low label rates hurt) and benchmarks one sweep point.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation import fig1


@pytest.mark.benchmark(group="fig1")
def test_fig1_label_rate_curve(benchmark, harness_config):
    report = benchmark.pedantic(
        lambda: fig1.run(harness_config, label_rates=(1.3, 2.6, 5.2)),
        iterations=1,
        rounds=1,
    )
    emit(report)
    accs = [row["gcn_accuracy"] for row in report.rows]
    # Shape: the lowest label rate must be the worst point of the curve.
    assert accs[0] <= max(accs) - 1e-9 or len(set(accs)) == 1
    assert accs[0] < accs[-1] + 0.05, "low-label accuracy should not exceed high-label by a margin"
    # Reproduction target: accuracy grows from the 1.3% to the 5.2% regime.
    assert accs[-1] >= accs[0]
