"""Hot-path performance benchmark for the inference/training overhaul.

Measures the four optimizations shipped together:

1. **No-grad inference** — evaluation-mode forwards through
   :func:`~repro.tensor.tensor.no_grad` skip tape construction and take
   the raw-ndarray layer fast paths.  Compared against the legacy
   behavior (eval-mode forward with the tape armed).
2. **Forward-pass dedup** — with ``share_eval_forward`` the RDD student
   reuses the trainer's validation forward for its reliability refresh,
   cutting full-graph forwards per epoch from 3 to 2 (counted via a
   forward-counter model hook).
3. **Teacher-context hoisting** — :func:`node_reliability` with a
   precomputed :class:`TeacherContext` vs. recomputing the frozen
   teacher's argmax/threshold work every call.
4. **Process-parallel + float32 harness** — the multi-seed harness in
   its seed-parity configuration (serial, float64, legacy 3-forward
   schedule) vs. the optimized stack (``workers=4``, ``float32``,
   shared eval forward).

Run ``python scripts/bench_hotpath.py`` (or ``python -m
benchmarks.bench_hotpath`` with ``src`` on the path) to write
``BENCH_hotpath.json`` at the repo root.  The pytest entries are marked
``perf`` and excluded from the default (tier-1) test run.
"""

from __future__ import annotations

import contextlib
import json
import time
from pathlib import Path
from typing import Dict, List

import numpy as np
import pytest

import scipy.sparse as sp

from repro.core.reliability import node_reliability, teacher_context
from repro.core.rdd import RDDTrainer
from repro.datasets import cora_like
from repro.evaluation.common import HarnessConfig, load_graphs, run_over_seeds, run_rdd
from repro.models import base as base_module
from repro.models.base import GraphModel, softmax_rows
from repro.models.gcn import GCN
from repro.nn import layers as layers_module
from repro.tensor import ops
from repro.tensor import sparse as sparse_module
from repro.tensor.tensor import as_tensor, enable_grad
from repro.training.seed import make_rng

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_hotpath.json"


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn()`` (minimum is the noise-robust stat)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# 1. Eval-mode forward: tape (legacy) vs. no_grad fast path
# ----------------------------------------------------------------------
def _seed_predict_logits(self, graph):
    """The seed's ``predict_logits``: recursive eval() switch, tape armed."""
    was_training = self.training
    self.eval()
    try:
        with enable_grad():  # the seed had no no_grad(); tape always built
            logits = self.forward(graph).data
    finally:
        if was_training:
            self.train()
    return logits


def _seed_dropout_forward(self, x):
    """The seed's ``Dropout.forward``: sparse inputs round-trip via COO."""
    if sp.issparse(x):
        if not self.training or self.rate <= 0.0:
            return x
        x = x.tocoo(copy=True)
        keep = 1.0 - self.rate
        mask = self.rng.random(x.nnz) < keep
        x.data = x.data * mask / keep
        return x.tocsr()
    return ops.dropout(as_tensor(x), self.rate, self.rng, training=self.training)


@contextlib.contextmanager
def _seed_behavior():
    """Restore the seed's hot-path implementations for a measurement.

    Swaps back the three seams this overhaul changed, so the baseline
    timings below execute the seed's actual code paths while producing
    bitwise-identical results:

    * sparse products via scipy operator dispatch instead of the raw
      ``csr_matvecs`` kernel, with per-backward ``.T`` reconstruction;
    * ``predict_logits`` with the autodiff tape armed (the seed had no
      ``no_grad``) and the unconditional recursive ``eval()`` switch;
    * sparse dropout through the COO round-trip.

    The seed's other removed costs (per-step optimizer ``zeros_like``
    allocations, full-matrix log-softmax in the losses) are not patched
    back, so baselines measured under this context are still slightly
    *faster* than the true seed — measured speedups are conservative.
    """
    saved = (
        sparse_module.sparse_dense_matmul,
        sparse_module.cached_transpose,
        base_module.GraphModel.predict_logits,
        layers_module.Dropout.forward,
    )
    sparse_module.sparse_dense_matmul = lambda matrix, dense: np.asarray(matrix @ dense)
    sparse_module.cached_transpose = lambda matrix: matrix.T
    base_module.GraphModel.predict_logits = _seed_predict_logits
    layers_module.Dropout.forward = _seed_dropout_forward
    try:
        yield
    finally:
        (
            sparse_module.sparse_dense_matmul,
            sparse_module.cached_transpose,
            base_module.GraphModel.predict_logits,
            layers_module.Dropout.forward,
        ) = saved


def bench_eval_forward(scale: float = 0.1, repeats: int = 150) -> Dict[str, float]:
    graph = cora_like(seed=0, scale=scale)
    graph.normalized_adjacency()  # pre-normalize outside the timed region
    model = GCN(graph.num_features, graph.num_classes, make_rng(0))
    model.eval()

    def legacy_forward():
        # The seed's predict_logits (see _seed_behavior): run it only
        # with that context active.
        return model.predict_logits(graph)

    def fast_forward():
        return model.predict_logits(graph)

    # Warm both code paths (allocator/caches) before any timing.
    with _seed_behavior():
        legacy_logits = legacy_forward()
        for _ in range(5):
            legacy_forward()
    for _ in range(5):
        fast_forward()
    assert np.array_equal(legacy_logits, fast_forward())

    # Alternate best-of rounds so machine drift hits both paths equally.
    rounds = 5
    taped = untaped = float("inf")
    per_round = max(1, repeats // rounds)
    for _ in range(rounds):
        with _seed_behavior():
            taped = min(taped, _best_of(legacy_forward, per_round))
        untaped = min(untaped, _best_of(fast_forward, per_round))
    return {
        "eval_forward_taped_s": taped,
        "eval_forward_no_grad_s": untaped,
        "eval_forward_speedup": taped / untaped,
    }


# ----------------------------------------------------------------------
# 2. RDD full-graph forwards per epoch (forward-counter hook)
# ----------------------------------------------------------------------
class _CountingGCN(GCN):
    """GCN whose every full-graph forward bumps a shared counter."""

    def __init__(self, *args, counter: Dict[str, int], **kwargs):
        super().__init__(*args, **kwargs)
        self._counter = counter

    def forward(self, graph):
        self._counter["forwards"] += 1
        return super().forward(graph)


def count_rdd_forwards(share_eval_forward: bool, epochs: int = 12) -> Dict[str, float]:
    """Steady-state full-graph forwards per epoch for one RDD student."""
    graph = cora_like(seed=0, scale=0.1)
    counters: List[Dict[str, int]] = []

    def factory(g, rng):
        counters.append({"forwards": 0})
        return _CountingGCN(
            g.num_features, g.num_classes, rng, hidden=16, dropout=0.5,
            counter=counters[-1],
        )

    trainer = RDDTrainer(
        HarnessConfig(
            num_base_models=2,
            max_epochs=epochs,
            patience=epochs,  # disable early stopping: fixed epoch count
            share_eval_forward=share_eval_forward,
        ).rdd_config(),
        model_factory=factory,
    )
    result = trainer.fit(graph, seed=0)

    student_forwards = counters[1]["forwards"]
    student_epochs = result.base_results[1].epochs_run
    assert student_epochs == epochs
    # One-time forwards outside the per-epoch loop: the best-checkpoint
    # restore forward, plus (shared schedule only) the epoch-0 bootstrap.
    one_time = 2 if share_eval_forward else 1
    per_epoch = (student_forwards - one_time) / student_epochs
    return {
        "share_eval_forward": share_eval_forward,
        "student_total_forwards": student_forwards,
        "student_epochs": student_epochs,
        "forwards_per_epoch": per_epoch,
    }


# ----------------------------------------------------------------------
# 3. Reliability refresh: per-call teacher work vs. hoisted context
# ----------------------------------------------------------------------
def bench_reliability_refresh(scale: float = 0.3, repeats: int = 50) -> Dict[str, float]:
    graph = cora_like(seed=0, scale=scale)
    rng = np.random.default_rng(0)
    teacher_probs = softmax_rows(rng.normal(size=(graph.num_nodes, graph.num_classes)))
    student_probs = softmax_rows(rng.normal(size=(graph.num_nodes, graph.num_classes)))
    labels, train_index = graph.labels, graph.train_index

    cold = _best_of(
        lambda: node_reliability(teacher_probs, student_probs, labels, train_index),
        repeats,
    )
    context = teacher_context(teacher_probs, labels, train_index)
    hoisted = _best_of(
        lambda: node_reliability(
            teacher_probs, student_probs, labels, train_index, context=context
        ),
        repeats,
    )
    return {
        "refresh_cold_s": cold,
        "refresh_hoisted_s": hoisted,
        "refresh_speedup": cold / hoisted,
    }


# ----------------------------------------------------------------------
# 4. Multi-seed harness: seed-parity stack vs. optimized stack
# ----------------------------------------------------------------------
def _harness_config(optimized: bool, **overrides) -> HarnessConfig:
    # Paper protocol on the Cora stand-in: T=5 base models, fixed epoch
    # count (patience == max_epochs disables early stopping so both
    # configurations train the same number of epochs).
    budget = dict(
        scale=1.0,
        seeds=(0, 1, 2, 3),
        num_base_models=5,
        max_epochs=25,
        patience=25,
        hidden=16,
    )
    budget.update(overrides)
    if optimized:
        return HarnessConfig(
            workers=4, dtype="float32", share_eval_forward=True, **budget
        )
    # Seed parity: the exact pre-overhaul execution (serial float64,
    # legacy 3-forward schedule).
    return HarnessConfig(workers=1, dtype=None, share_eval_forward=False, **budget)


def _time_harness(config: HarnessConfig, seed_behavior: bool = False) -> Dict[str, float]:
    graphs = load_graphs(config, "cora")
    context = _seed_behavior() if seed_behavior else contextlib.nullcontext()
    with context:
        start = time.perf_counter()
        results = run_over_seeds(run_rdd, graphs, config)
        elapsed = time.perf_counter() - start
    accs = [r.ensemble_test_accuracy for r in results]
    epochs = sum(br.epochs_run for r in results for br in r.base_results)
    return {
        "wall_s": elapsed,
        "epoch_time_s": elapsed / max(epochs, 1),
        "mean_ensemble_accuracy": float(np.mean(accs)),
    }


def bench_harness(**overrides) -> Dict[str, object]:
    # The baseline is the seed stack: seed configuration (serial,
    # float64, 3-forward schedule) AND seed code paths (_seed_behavior).
    baseline = _time_harness(
        _harness_config(optimized=False, **overrides), seed_behavior=True
    )
    optimized = _time_harness(_harness_config(optimized=True, **overrides))
    return {
        "seed_parity": baseline,
        "optimized": optimized,
        "harness_speedup": baseline["wall_s"] / optimized["wall_s"],
        "workers": 4,
    }


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_benchmark(quick: bool = False) -> Dict[str, object]:
    forward = bench_eval_forward(repeats=10 if quick else 30)
    counts = {
        "legacy": count_rdd_forwards(share_eval_forward=False),
        "shared": count_rdd_forwards(share_eval_forward=True),
    }
    refresh = bench_reliability_refresh(repeats=20 if quick else 50)
    harness = bench_harness(
        **({"seeds": (0, 1), "max_epochs": 10, "patience": 10} if quick else {})
    )
    return {
        "eval_forward": forward,
        "rdd_forward_counts": counts,
        "reliability_refresh": refresh,
        "multi_seed_harness": harness,
    }


def main(argv=None) -> int:
    results = run_benchmark()
    OUTPUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    forward = results["eval_forward"]
    counts = results["rdd_forward_counts"]
    harness = results["multi_seed_harness"]
    print(f"eval forward speedup (no_grad vs tape): {forward['eval_forward_speedup']:.2f}x")
    print(
        "RDD forwards/epoch: "
        f"{counts['legacy']['forwards_per_epoch']:.2f} -> "
        f"{counts['shared']['forwards_per_epoch']:.2f}"
    )
    print(f"reliability refresh speedup: {results['reliability_refresh']['refresh_speedup']:.2f}x")
    print(f"multi-seed harness speedup: {harness['harness_speedup']:.2f}x")
    print(f"wrote {OUTPUT_PATH}")
    return 0


# ----------------------------------------------------------------------
# pytest entries (perf-marked; excluded from the tier-1 run)
# ----------------------------------------------------------------------
@pytest.mark.perf
def test_eval_forward_speedup():
    result = bench_eval_forward()
    assert result["eval_forward_speedup"] >= 1.3


@pytest.mark.perf
def test_rdd_forwards_per_epoch():
    legacy = count_rdd_forwards(share_eval_forward=False)
    shared = count_rdd_forwards(share_eval_forward=True)
    assert legacy["forwards_per_epoch"] == pytest.approx(3.0)
    assert shared["forwards_per_epoch"] == pytest.approx(2.0)


@pytest.mark.perf
def test_reliability_refresh_speedup():
    result = bench_reliability_refresh()
    assert result["refresh_speedup"] > 1.0


@pytest.mark.perf
def test_harness_speedup():
    result = bench_harness(seeds=(0, 1), max_epochs=10, patience=10)
    assert result["harness_speedup"] > 1.0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
