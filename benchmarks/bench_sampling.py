"""Neighbor-sampled training benchmark: sampler speed and memory-boundedness.

Two claims back the ``repro.sampling`` subsystem, and this bench
measures both against committed baselines (``BENCH_sampling.json``,
guarded by ``scripts/check_bench.py --bench sampling``):

1. **Sampler speed** — the vectorized CSR kernel
   (:func:`repro.sampling.sample_adjacent`) must beat the per-node
   Python loop it replaced (kept as
   :func:`repro.graph.sampling._sample_neighbors_loop`) by at least
   :data:`SAMPLER_FLOOR` on a 10k-seed batch of a dense-degree DC-SBM.

2. **Memory-boundedness** — on an SBM graph **10× larger** than the
   repo's largest full-scale bench graph (cora_like: 2708 nodes /
   5278 edges), mini-batch sampled GCN training must peak below
   :data:`MEMORY_RATIO_LIMIT` of full-batch training's peak RSS.
   Peak RSS is read per mode in a fresh subprocess
   (``resource.getrusage(...).ru_maxrss``), so the high-water marks
   don't contaminate each other.  The sampled run's residual floor is
   the final full-graph eval forward plus the graph itself — the
   training pass proper scales with ``batch_size × prod(fanouts)``.

The same subprocess harness also runs a 2-student RDD fit in both modes
at 10× scale, demonstrating that reliability-weighted sampled
distillation trains at a graph size where its memory profile matters
(reported, not gated: RDD's reliability refresh is full-graph in both
modes, so its ratio is structurally milder than the GCN pair's).

Run ``python scripts/bench_sampling.py`` to refresh the baseline.  The
pytest entries are ``perf``-marked and excluded from tier-1.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import pytest  # noqa: E402

OUTPUT_PATH = REPO_ROOT / "BENCH_sampling.json"

#: Vectorized sampler must beat the per-node loop by at least this much.
SAMPLER_FLOOR = 5.0

#: Sampled GCN peak RSS over full-batch peak RSS at 10x scale.
MEMORY_RATIO_LIMIT = 0.5

#: The repo's largest full-scale bench graph (cora_like at scale=1.0).
BASE_NODES = 2708
BASE_EDGES = 5278

#: Training shape for the memory pair: wide hidden state so graph-sized
#: activations/gradients dominate the interpreter baseline.
NUM_FEATURES = 128
HIDDEN = 384
NUM_CLASSES = 7
EPOCHS = 3
BATCH_SIZE = 256
FANOUTS = (10, 10)


# ----------------------------------------------------------------------
# Shared graph builders
# ----------------------------------------------------------------------
def make_bench_graph(scale: int, seed: int = 0):
    """Class-informative DC-SBM at ``scale``× the largest bench graph."""
    from repro.datasets.sbm import generate_dcsbm_graph
    from repro.datasets.splits import planetoid_split
    from repro.graph.graph import Graph

    rng = np.random.default_rng(seed)
    num_nodes = BASE_NODES * scale
    adjacency, labels = generate_dcsbm_graph(
        num_nodes, NUM_CLASSES, BASE_EDGES * scale, homophily=0.85, rng=rng
    )
    centers = rng.normal(size=(NUM_CLASSES, NUM_FEATURES))
    features = centers[labels] + 1.2 * rng.normal(size=(num_nodes, NUM_FEATURES))
    train, val, test = planetoid_split(labels, rng)
    return Graph(adjacency, features, labels, train, val, test, name=f"sbm-{scale}x")


def make_sampler_graph(seed: int = 0):
    """Dense-degree DC-SBM for the kernel microbench (avg degree ~22,
    well above the fanout, so the over-fanout sort path dominates)."""
    from repro.datasets.sbm import generate_dcsbm_graph

    rng = np.random.default_rng(seed)
    adjacency, _ = generate_dcsbm_graph(
        BASE_NODES * 10, NUM_CLASSES, 300_000, homophily=0.85, rng=rng
    )
    return adjacency


# ----------------------------------------------------------------------
# 1. Sampler kernel speedup (vectorized vs per-node loop)
# ----------------------------------------------------------------------
def sampler_speedup(quick: bool = False) -> Dict[str, object]:
    from repro.graph.sampling import _sample_neighbors_loop
    from repro.sampling import NeighborSampler

    adjacency = make_sampler_graph()
    rng = np.random.default_rng(1)
    seeds = rng.choice(adjacency.shape[0], size=10_000, replace=False)
    fanout = 10
    repeats = 3 if quick else 5

    sampler = NeighborSampler(adjacency, seed=0)
    sampler.sample(seeds, fanout)  # warm-up (page/cache touch)
    vec_times, loop_times = [], []
    for _ in range(repeats):
        started = time.perf_counter()
        sampler.sample(seeds, fanout)
        vec_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        _sample_neighbors_loop(adjacency, seeds, fanout, rng)
        loop_times.append(time.perf_counter() - started)
    vec_s, loop_s = min(vec_times), min(loop_times)
    return {
        "nodes": int(adjacency.shape[0]),
        "edges": int(adjacency.nnz // 2),
        "num_seeds": len(seeds),
        "fanout": fanout,
        "repeats": repeats,
        "vectorized_s": vec_s,
        "loop_s": loop_s,
        "speedup": loop_s / vec_s,
    }


# ----------------------------------------------------------------------
# 2. Memory / throughput pairs (fresh subprocess per mode)
# ----------------------------------------------------------------------
CHILD_MODES = ("graph_only", "gcn_full", "gcn_sampled", "rdd_full", "rdd_sampled")


def _child_run(mode: str, scale: int) -> Dict[str, object]:
    """Executed inside the child process: train, report peak RSS."""
    import resource

    from repro.models.gcn import GCN
    from repro.training.trainer import Trainer

    graph = make_bench_graph(scale)
    epochs = EPOCHS
    test_accuracy = None
    started = time.perf_counter()
    if mode == "graph_only":
        pass  # baseline: imports + graph construction, no training
    elif mode in ("gcn_full", "gcn_sampled"):
        model = GCN(
            graph.num_features,
            graph.num_classes,
            np.random.default_rng(0),
            hidden=HIDDEN,
            dropout=0.5,
        )
        if mode == "gcn_full":
            trainer = Trainer(max_epochs=epochs, patience=epochs)
        else:
            from repro.training.sampled import SampledTrainer

            trainer = SampledTrainer(
                fanouts=FANOUTS,
                batch_size=BATCH_SIZE,
                sample_seed=0,
                eval_every=epochs,
                max_epochs=epochs,
                patience=epochs,
            )
        test_accuracy = trainer.fit(model, graph).test_accuracy
    elif mode in ("rdd_full", "rdd_sampled"):
        from repro.core.config import RDDConfig
        from repro.core.rdd import RDDTrainer

        config = RDDConfig(
            num_base_models=2,
            max_epochs=epochs,
            patience=epochs,
            hidden=HIDDEN,
            sampler="neighbor" if mode == "rdd_sampled" else "full",
            fanouts=FANOUTS,
            batch_size=BATCH_SIZE,
            eval_every=epochs,
        )
        test_accuracy = RDDTrainer(config).fit(graph, seed=0).ensemble_test_accuracy
    else:
        raise ValueError(f"unknown child mode {mode!r}")
    wall = time.perf_counter() - started
    # Linux reports ru_maxrss in KiB.
    peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "mode": mode,
        "scale": scale,
        "peak_rss_mb": peak_kib / 1024.0,
        "wall_s": wall,
        "epochs": epochs,
        "epoch_s": wall / epochs if mode != "graph_only" else None,
        "test_accuracy": test_accuracy,
    }


def _measure_child(mode: str, scale: int) -> Dict[str, object]:
    """Run one training mode in a fresh interpreter and parse its JSON."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), str(REPO_ROOT), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--child", mode, "--scale", str(scale)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child {mode}@{scale}x failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def memory_pairs(quick: bool = False) -> Dict[str, object]:
    results: Dict[str, object] = {}
    scales = (10,) if quick else (1, 10)
    for scale in scales:
        modes = CHILD_MODES if scale == 10 else ("graph_only", "gcn_full", "gcn_sampled")
        runs = {mode: _measure_child(mode, scale) for mode in modes}
        entry: Dict[str, object] = {"runs": runs}
        entry["gcn_peak_ratio"] = (
            runs["gcn_sampled"]["peak_rss_mb"] / runs["gcn_full"]["peak_rss_mb"]
        )
        if "rdd_sampled" in runs:
            entry["rdd_peak_ratio"] = (
                runs["rdd_sampled"]["peak_rss_mb"] / runs["rdd_full"]["peak_rss_mb"]
            )
        results[f"{scale}x"] = entry
    return results


def run_benchmark(quick: bool = False) -> Dict[str, object]:
    sampler = sampler_speedup(quick=quick)
    memory = memory_pairs(quick=quick)
    return {
        "base_graph": {"nodes": BASE_NODES, "edges": BASE_EDGES},
        "training_shape": {
            "num_features": NUM_FEATURES,
            "hidden": HIDDEN,
            "epochs": EPOCHS,
            "batch_size": BATCH_SIZE,
            "fanouts": list(FANOUTS),
        },
        "sampler": sampler,
        "memory": memory,
        "sampler_speedup": sampler["speedup"],
        "gcn_peak_ratio_10x": memory["10x"]["gcn_peak_ratio"],
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "--child":
        mode = argv[1]
        scale = int(argv[argv.index("--scale") + 1])
        print(json.dumps(_child_run(mode, scale)))
        return 0
    results = run_benchmark()
    OUTPUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nresults written to {OUTPUT_PATH}")
    return 0


# ----------------------------------------------------------------------
# pytest entries (perf-marked; excluded from tier-1)
# ----------------------------------------------------------------------
@pytest.mark.perf
def test_sampler_beats_loop_floor():
    result = sampler_speedup(quick=True)
    assert result["speedup"] >= SAMPLER_FLOOR, (
        f"vectorized sampler only {result['speedup']:.1f}x over the loop "
        f"(needs >= {SAMPLER_FLOOR:.0f}x)"
    )


@pytest.mark.perf
def test_sampled_training_is_memory_bounded_at_10x():
    runs = {mode: _measure_child(mode, 10) for mode in ("gcn_full", "gcn_sampled")}
    ratio = runs["gcn_sampled"]["peak_rss_mb"] / runs["gcn_full"]["peak_rss_mb"]
    assert ratio <= MEMORY_RATIO_LIMIT, (
        f"sampled peak {runs['gcn_sampled']['peak_rss_mb']:.0f}MB is "
        f"{ratio:.2f}x of full-batch {runs['gcn_full']['peak_rss_mb']:.0f}MB "
        f"(budget {MEMORY_RATIO_LIMIT:.2f}x)"
    )


if __name__ == "__main__":
    raise SystemExit(main())
