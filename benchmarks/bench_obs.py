"""Observability overhead benchmark: enabled vs disabled training time.

The tracing layer promises **zero overhead when disabled** (one module-
global read per ``span()``/``event()`` call) and **under 5% epoch-time
overhead when enabled** — per-epoch it emits a handful of JSON lines
(the epoch span plus, for distilled RDD students, one ``rdd_epoch``
diagnostics record) against an epoch dominated by forward/backward
passes.

The benchmark times an identical RDD fit (ensemble of 2, fixed epoch
count — patience equals ``max_epochs`` so early stopping never fires)
with observability off and with it writing to a throwaway run
directory, alternating the order across paired repeats.  The headline
number is the ``enabled / disabled`` ratio of the *total* wall time
across repeats: per-fit scheduler noise at this runtime is the same
order as the true overhead, so a min-of-N ratio is a coin flip while
the paired-sum ratio averages the noise away.  The ratio is capped at
:data:`OVERHEAD_LIMIT` by the perf test and guarded by
``scripts/check_bench.py`` (``BENCH_obs.json`` is the committed
baseline).

The same protocol runs twice: once for the full-batch trainer and once
for the neighbor-sampled loop (``sampler="neighbor"``), which emits one
``sampler:batch`` span per optimizer step — the chattiest span site in
the repo — so the sampled ratio is the stress case for the budget.

Run ``python scripts/bench_obs.py`` to refresh the baseline.  The pytest
entry is ``perf``-marked and excluded from tier-1.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Dict

import pytest

import repro.obs as obs
from repro.core.config import RDDConfig
from repro.core.rdd import RDDTrainer
from repro.datasets import cora_like
from repro.obs import EVENT_LOG_NAME

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_obs.json"

#: Enabled-mode wall time may be at most this multiple of disabled-mode.
OVERHEAD_LIMIT = 1.05


def _timed_fit(config: RDDConfig, graph, run_dir) -> float:
    """One full RDD fit; returns wall seconds.  ``run_dir`` None = obs off."""
    if run_dir is None:
        obs.disable()
    else:
        obs.enable(run_dir)
    try:
        started = time.perf_counter()
        RDDTrainer(config).fit(graph, seed=0)
        return time.perf_counter() - started
    finally:
        obs.disable()


def _paired_overhead(config: RDDConfig, graph, repeats: int) -> Dict[str, float]:
    """Alternating-order paired enabled/disabled timing for one config."""
    # Warm-up: JIT-free numpy still benefits from touched caches/pages.
    _timed_fit(config, graph, None)

    disabled_times, enabled_times = [], []
    events_logged = 0
    with tempfile.TemporaryDirectory() as tmp:
        for repeat in range(repeats):
            run_dir = Path(tmp) / f"run{repeat}"
            # Alternate order so drift (thermal, page cache) cancels.
            if repeat % 2 == 0:
                disabled_times.append(_timed_fit(config, graph, None))
                enabled_times.append(_timed_fit(config, graph, run_dir))
            else:
                enabled_times.append(_timed_fit(config, graph, run_dir))
                disabled_times.append(_timed_fit(config, graph, None))
            with open(run_dir / EVENT_LOG_NAME, "r", encoding="utf-8") as handle:
                events_logged = sum(1 for line in handle if line.strip())

    # Paired-sum ratio: each repeat ran both modes back to back, so
    # summing before dividing cancels drift that a min-of-N would not.
    disabled_s, enabled_s = sum(disabled_times), sum(enabled_times)
    return {
        "events_per_run": events_logged,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "overhead": enabled_s / disabled_s,
    }


def run_benchmark(quick: bool = False) -> Dict[str, object]:
    # quick trims the repeat count, never the workload: both modes
    # always run the same fixed-epoch fit, so the ratio stays
    # comparable.  The workload must keep epochs at paper scale
    # (milliseconds of numpy, not microseconds) — the obs cost is a
    # fixed few JSON lines per epoch, so a toy epoch would overstate
    # the relative overhead — and each fit must be long enough that
    # per-fit scheduler jitter (a few ms) averages out across pairs.
    scale = 1.0
    max_epochs = 20
    repeats = 5 if quick else 8
    graph = cora_like(seed=0, scale=scale)
    full_config = RDDConfig(
        num_base_models=2, max_epochs=max_epochs, patience=max_epochs, hidden=32
    )
    sampled_config = RDDConfig(
        num_base_models=2, max_epochs=max_epochs, patience=max_epochs, hidden=32,
        sampler="neighbor", fanouts=(10, 10), batch_size=512,
    )

    full = _paired_overhead(full_config, graph, repeats)
    sampled = _paired_overhead(sampled_config, graph, repeats)
    return {
        "graph": {"name": graph.name, "nodes": graph.num_nodes},
        "max_epochs": max_epochs,
        "num_base_models": full_config.num_base_models,
        "repeats": repeats,
        "events_per_run": full["events_per_run"],
        "disabled_s": full["disabled_s"],
        "enabled_s": full["enabled_s"],
        "overhead": full["overhead"],
        "sampled": sampled,
        "sampled_overhead": sampled["overhead"],
    }


def main() -> int:
    results = run_benchmark()
    OUTPUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nresults written to {OUTPUT_PATH}")
    return 0


# ----------------------------------------------------------------------
# pytest entry (perf-marked; excluded from tier-1)
# ----------------------------------------------------------------------
@pytest.mark.perf
def test_obs_overhead_within_budget():
    results = run_benchmark(quick=True)
    assert results["overhead"] <= OVERHEAD_LIMIT, (
        f"observability overhead {results['overhead']:.3f}x exceeds the "
        f"{OVERHEAD_LIMIT:.2f}x budget (enabled {results['enabled_s']:.2f}s "
        f"vs disabled {results['disabled_s']:.2f}s)"
    )
    assert results["sampled_overhead"] <= OVERHEAD_LIMIT, (
        f"sampled-path observability overhead {results['sampled_overhead']:.3f}x "
        f"exceeds the {OVERHEAD_LIMIT:.2f}x budget"
    )


if __name__ == "__main__":
    raise SystemExit(main())
