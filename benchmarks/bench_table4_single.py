"""Table 4 — single-model comparison (LP, GAT, APPNP, GCN vs RDD single)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation import table4


@pytest.mark.benchmark(group="table4")
def test_table4_single_model_comparison(benchmark, harness_config):
    report = benchmark.pedantic(
        lambda: table4.run(harness_config, datasets=("cora",)),
        iterations=1,
        rounds=1,
    )
    emit(report)
    by_method = {r["method"]: r["test_accuracy"] for r in report.rows if r["dataset"] == "cora"}
    # Shape: RDD(Single) beats the plain GCN; LP trails the GCN family.
    assert by_method["RDD(Single)"] > by_method["GCN"] - 0.01
    assert by_method["LP"] < by_method["RDD(Single)"]
    # Feature-only MLP must trail graph-aware models (dataset sanity).
    assert by_method["MLP (extra)"] < by_method["GCN"]
