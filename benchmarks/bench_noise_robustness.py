"""Extension bench: RDD's graceful degradation under feature noise."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation import ext_noise


@pytest.mark.benchmark(group="extensions")
def test_noise_robustness(benchmark, harness_config):
    report = benchmark.pedantic(
        lambda: ext_noise.run(harness_config, noise_levels=(0.0, 0.3)),
        iterations=1,
        rounds=1,
    )
    emit(report)
    rows = {r["feature_noise"]: r for r in report.rows}
    # Noise hurts everyone (sanity).
    assert rows[0.3]["Single GCN"] <= rows[0.0]["Single GCN"] + 0.05
    # RDD remains at least competitive with reliability-free KD under noise.
    assert rows[0.3]["RDD(Ensemble)"] >= rows[0.3]["BANs"] - 0.04
