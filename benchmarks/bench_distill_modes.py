"""Extension ablation: the three L2 distillation formulations.

DESIGN.md calls out our deviation from the literal Eq. 7 (raw-logit MSE
toward weight-averaged ensemble logits is unstable when base models'
logit scales differ); this bench quantifies the choice by running RDD
under each formulation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.losses import DISTILL_MODES
from repro.datasets import load_dataset
from repro.evaluation.common import ExperimentReport, mean_over_seeds, run_rdd


@pytest.mark.benchmark(group="extensions")
def test_distill_mode_ablation(benchmark, harness_config):
    def sweep():
        report = ExperimentReport(
            experiment="Extension: L2 distillation formulation ablation (cora)",
            notes="prob_mse is the library default; logit_mse is the literal Eq. 7.",
        )
        graphs = [
            load_dataset("cora", seed=seed, scale=harness_config.scale)
            for seed in harness_config.seeds
        ]
        for mode in DISTILL_MODES:
            results = [
                run_rdd(g, harness_config, s, distill_mode=mode)
                for g, s in zip(graphs, harness_config.seeds)
            ]
            report.rows.append(
                {
                    "distill_mode": mode,
                    "ensemble_accuracy": mean_over_seeds(
                        [r.ensemble_test_accuracy for r in results]
                    ),
                    "avg_base_accuracy": mean_over_seeds(
                        [r.average_base_accuracy for r in results]
                    ),
                    "last_base_accuracy": mean_over_seeds(
                        [r.last_base_test_accuracy for r in results]
                    ),
                }
            )
        return report

    report = benchmark.pedantic(sweep, iterations=1, rounds=1)
    emit(report)
    by_mode = {r["distill_mode"]: r for r in report.rows}
    # All three formulations are viable; which one leads flips with the
    # label-rate regime (prob_mse is preferred for its stability — see
    # DESIGN.md), so only require the default to stay in the same band.
    assert (
        by_mode["prob_mse"]["ensemble_accuracy"]
        >= by_mode["logit_mse"]["ensemble_accuracy"] - 0.06
    )
