"""Table 5 — deep GCN variants (JK-Net, ResGCN, DenseGCN) vs RDD(Single)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation import table5


@pytest.mark.benchmark(group="table5")
def test_table5_deep_gcn_comparison(benchmark, harness_config):
    report = benchmark.pedantic(
        lambda: table5.run(harness_config, datasets=("cora",), depths=(2, 3)),
        iterations=1,
        rounds=1,
    )
    emit(report)
    by_method = {r["method"]: r["test_accuracy"] for r in report.rows if r["dataset"] == "cora"}
    rdd = by_method["RDD(Single)"]
    # Shape: RDD(Single) at or above every depth-tuned deep variant
    # (benchmark-scale seed noise allowed for).
    for deep in ("JK-Net", "ResGCN", "DenseGCN", "GCN"):
        assert rdd >= by_method[deep] - 0.05, f"RDD(Single) should not trail {deep}"
    # Deep variants hover near plain GCN (over-smoothing; no big win).
    for deep in ("JK-Net", "ResGCN", "DenseGCN"):
        assert abs(by_method[deep] - by_method["GCN"]) < 0.12
