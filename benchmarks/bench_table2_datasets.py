"""Table 2 — dataset overview / generator calibration audit."""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, emit
from repro.evaluation import table2


@pytest.mark.benchmark(group="table2")
def test_table2_dataset_calibration(benchmark, harness_config):
    report = benchmark.pedantic(lambda: table2.run(harness_config), iterations=1, rounds=1)
    emit(report)
    for row in report.rows:
        # Class counts are preserved at every scale.
        assert row["classes"] == row["paper_classes"]
        # Homophily lands near the calibration target.
        assert abs(row["homophily"] - row["target_homophily"]) < 0.12
        # Scarce-label regime preserved (the paper's setting is ~0.3–5.2%,
        # NELL 10%).
        assert row["label_rate"] < 0.15
        if FULL:
            assert row["nodes"] == row["paper_nodes"]


@pytest.mark.benchmark(group="table2")
def test_table2_full_scale_exact_counts(benchmark):
    """At scale 1.0 the published node/feature/class counts are exact."""

    def audit():
        from repro.evaluation.common import HarnessConfig

        return table2.run(HarnessConfig(scale=1.0, seeds=(0,)), datasets=("cora",))

    report = benchmark.pedantic(audit, iterations=1, rounds=1)
    emit(report)
    row = report.rows[0]
    assert row["nodes"] == 2708
    assert row["features"] == 1433
    assert row["classes"] == 7
    # Edge count approximate (dedup losses), within 25%.
    assert abs(row["edges"] - 5429) / 5429 < 0.25
