"""Table 6 — average-vs-ensemble accuracy and the diversity/accuracy trade.

Shape targets: every method's ensemble beats its average base model;
Bagging (independent bases) gains more than BANs (mimicking bases).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.evaluation import table6


@pytest.mark.benchmark(group="table6")
def test_table6_ensemble_gain(benchmark, harness_config):
    report = benchmark.pedantic(lambda: table6.run(harness_config), iterations=1, rounds=1)
    emit(report)
    rows = {r["method"]: r for r in report.rows}
    for method, row in rows.items():
        assert row["gain"] > -0.02, f"{method}: ensembling should not hurt"
    # Diversity story: Bagging's gain exceeds BANs' (paper: 2.4 vs 0.8).
    assert rows["Bagging"]["gain"] >= rows["BANs"]["gain"] - 0.02
    # RDD ends with the best ensemble accuracy.
    best = max(r["ensemble"] for r in rows.values())
    assert rows["RDD(Ensemble)"]["ensemble"] >= best - 0.02
