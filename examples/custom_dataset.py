"""Scenario: run RDD on your own graph.

Shows the full adoption path for a downstream user with their own data:

1. build a :class:`repro.graph.Graph` from raw edges / features / labels;
2. register it so the CLI and harnesses can load it by name;
3. train RDD and inspect the result.

The demo data is a small "collaboration network": authors (nodes) with
keyword-vector features, co-authorship edges, and research-area labels.

Run with::

    python examples/custom_dataset.py
"""

from __future__ import annotations

import numpy as np

from repro import RDDConfig, train_rdd
from repro.datasets import load_dataset, register_dataset
from repro.graph import Graph, build_adjacency, summarize


def build_collaboration_network(seed: int = 0, **_) -> Graph:
    """Synthesize a 300-author collaboration network with 3 research areas."""
    rng = np.random.default_rng(seed)
    num_authors, num_areas, num_keywords = 300, 3, 60
    labels = rng.integers(0, num_areas, num_authors)

    # Co-authorship: mostly within an area, some cross-area collaborations.
    edges = []
    for _ in range(900):
        a = int(rng.integers(num_authors))
        if rng.random() < 0.85:  # within-area collaboration
            candidates = np.flatnonzero(labels == labels[a])
        else:
            candidates = np.flatnonzero(labels != labels[a])
        b = int(rng.choice(candidates))
        if a != b:
            edges.append((a, b))
    adjacency = build_adjacency(num_authors, np.asarray(edges))

    # Guard: attach any isolated author to a colleague in their area.
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    extra = []
    for node in np.flatnonzero(degrees == 0):
        peers = np.flatnonzero(labels == labels[node])
        peers = peers[peers != node]
        extra.append((node, int(rng.choice(peers))))
    if extra:
        adjacency = ((adjacency + build_adjacency(num_authors, np.asarray(extra))) > 0).astype(float)
        adjacency.setdiag(0.0)
        adjacency = adjacency.tocsr()
        adjacency.eliminate_zeros()

    # Keyword usage: each area favors a keyword block.
    block = num_keywords // num_areas
    rates = np.full((num_authors, num_keywords), 0.05)
    for area in range(num_areas):
        rows = labels == area
        rates[np.ix_(rows, range(area * block, (area + 1) * block))] = 0.35
    features = (rng.random((num_authors, num_keywords)) < rates).astype(np.float64)

    # Semi-supervised split: 5 labeled authors per area.
    train_parts = [rng.choice(np.flatnonzero(labels == a), 5, replace=False) for a in range(num_areas)]
    train = np.sort(np.concatenate(train_parts))
    rest = np.setdiff1d(np.arange(num_authors), train)
    rng.shuffle(rest)
    val, test = np.sort(rest[:60]), np.sort(rest[60:160])
    return Graph(adjacency, features, labels, train, val, test, name="collaboration")


def main() -> None:
    register_dataset("collaboration", build_collaboration_network)
    graph = load_dataset("collaboration", seed=42)
    print(f"dataset: {graph}")
    print(f"stats  : {summarize(graph)}\n")

    result = train_rdd(graph, RDDConfig(num_base_models=4, max_epochs=120), seed=0)
    print(f"RDD on the collaboration network: {result.summary()}")
    print("\nPer-student reliability sets:")
    for entry in result.reliability_history:
        print(f"  student {entry['student']}: |V_r|={entry['num_reliable']} "
              f"|V_b|={entry['num_distill']} |E_r|={entry['num_reliable_edges']}")


if __name__ == "__main__":
    main()
