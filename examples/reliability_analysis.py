"""Scenario: inspect what "reliability" actually selects.

The paper's core claim is that reliable nodes/edges carry trustworthy
knowledge.  This script verifies that empirically on a Cora-like graph:

1. trains a teacher ensemble and a fresh student;
2. computes node reliability (Alg. 1) and edge reliability (Alg. 2);
3. measures *oracle* precision — how often the teacher is actually right
   on reliable vs unreliable nodes, and how often reliable edges really
   connect same-class nodes;
4. injects feature noise and shows the reliable set absorbs the damage
   (noisy nodes are demoted to unreliable rather than contaminating V_b).

Run with::

    python examples/reliability_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import GCN, Trainer, cora_like
from repro.core import EnsembleModel, edge_reliability, ensemble_weight, node_reliability
from repro.models.base import softmax_rows
from repro.training import make_rng


def build_teacher(graph, num_models: int = 3, seed: int = 0) -> EnsembleModel:
    """A small RDD-style teacher: independently trained, weighted GCNs."""
    teacher = EnsembleModel()
    pagerank = graph.pagerank()
    trainer = Trainer(max_epochs=120)
    for t in range(num_models):
        model = GCN(graph.num_features, graph.num_classes, make_rng(seed + t))
        trainer.fit(model, graph)
        logits = model.predict_logits(graph)
        probs = softmax_rows(logits)
        teacher.add(probs, logits, ensemble_weight(probs, pagerank))
    return teacher


def reliability_report(graph, title: str) -> None:
    teacher = build_teacher(graph)
    student = GCN(graph.num_features, graph.num_classes, make_rng(99))
    Trainer(max_epochs=120).fit(student, graph)
    student_probs = softmax_rows(student.predict_logits(graph))
    teacher_probs = teacher.probs()

    sets = node_reliability(teacher_probs, student_probs, graph.labels, graph.train_index, p=40.0)
    teacher_pred = teacher_probs.argmax(axis=1)
    correct = teacher_pred == graph.labels

    reliable = sets.reliable_mask
    print(f"--- {title} ---")
    print(f"reliable nodes: {sets.num_reliable}/{graph.num_nodes} "
          f"(distillation set V_b: {sets.num_distill})")
    print(f"teacher precision on reliable nodes  : {correct[reliable].mean():.4f}")
    print(f"teacher precision on unreliable nodes: {correct[~reliable].mean():.4f}")

    src, dst = graph.edge_list()
    r_src, r_dst = edge_reliability(src, dst, reliable, student_probs.argmax(axis=1))
    same_class_all = (graph.labels[src] == graph.labels[dst]).mean()
    if len(r_src):
        same_class_reliable = (graph.labels[r_src] == graph.labels[r_dst]).mean()
    else:
        same_class_reliable = float("nan")
    print(f"edges: {len(src)} total, {len(r_src)} reliable")
    print(f"same-class rate: all edges {same_class_all:.4f}, "
          f"reliable edges {same_class_reliable:.4f}\n")


def main() -> None:
    clean = cora_like(seed=3, scale=0.25)
    reliability_report(clean, "clean features")

    noisy = cora_like(seed=3, scale=0.25, feature_noise=0.3)
    reliability_report(noisy, "30% feature noise injected")

    print("Expected: reliable-node precision >> unreliable-node precision, and")
    print("reliable edges are purer than the raw edge set — under noise too.")


if __name__ == "__main__":
    main()
