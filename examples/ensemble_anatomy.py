"""Scenario: dissect the self-boosting cycle.

Trains RDD with a larger ensemble and prints, per student: its test
accuracy, its entropy×PageRank weight (Eq. 12), the reliability-set sizes
it trained with, and the running ensemble accuracy — making the
"mutual-promoting cycle" of the paper's Figure 2 observable.

Run with::

    python examples/ensemble_anatomy.py
"""

from __future__ import annotations

from repro import RDDConfig, RDDTrainer, pubmed_like


def main() -> None:
    graph = pubmed_like(seed=11, scale=0.05)
    print(f"dataset: {graph}\n")

    config = RDDConfig(num_base_models=6, max_epochs=120, gamma_initial=3.0)
    result = RDDTrainer(config).fit(graph, seed=4)

    print(f"{'student':>7s} {'test acc':>9s} {'ensemble@t':>11s}")
    print("-" * 31)
    for t, (base, running) in enumerate(
        zip(result.base_test_accuracies, result.ensemble_curve), start=1
    ):
        print(f"{t:>7d} {base:>9.4f} {running:>11.4f}")

    print("\nreliability sets seen by each student (first epoch):")
    for entry in result.reliability_history:
        print(
            f"  student {entry['student']}: |V_r|={entry['num_reliable']:>5d} "
            f"|V_b|={entry['num_distill']:>5d} |E_r|={entry['num_reliable_edges']:>5d}"
        )

    print(f"\nfinal ensemble: {result.summary()}")
    print("Expected: later students (stronger teachers) match or beat earlier")
    print("ones, and the running ensemble accuracy is non-degrading in t.")


if __name__ == "__main__":
    main()
