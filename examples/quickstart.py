"""Quickstart: train a plain GCN and RDD on a Cora-like citation network.

Run with::

    python examples/quickstart.py

Expected outcome (seeds vary): RDD's ensemble — and usually even its last
single student — beats the plain GCN by several accuracy points, which is
the paper's headline claim.
"""

from __future__ import annotations

from repro import GCN, RDDConfig, Trainer, cora_like, train_rdd
from repro.training import make_rng


def main() -> None:
    # A calibrated synthetic stand-in for Cora at 25% scale (~670 nodes);
    # use scale=1.0 for the full 2708-node configuration.
    graph = cora_like(seed=2, scale=0.25)
    print(f"dataset: {graph}")
    print(f"label rate: {graph.label_rate:.1%}\n")

    # Baseline: one 2-layer GCN (the paper's base model).
    gcn = GCN(graph.num_features, graph.num_classes, make_rng(2))
    gcn_result = Trainer(max_epochs=150).fit(gcn, graph)
    print(f"single GCN      : {gcn_result.summary()}")

    # Reliable Data Distillation: 5 self-boosted students + weighted ensemble.
    config = RDDConfig(num_base_models=5, max_epochs=150, p=40.0, gamma_initial=1.0, beta=1.0)
    rdd_result = train_rdd(graph, config, seed=2)
    print(f"RDD             : {rdd_result.summary()}")
    print(f"RDD single (last student) test accuracy: {rdd_result.last_base_test_accuracy:.4f}")
    print(f"RDD ensemble test accuracy             : {rdd_result.ensemble_test_accuracy:.4f}")

    gain = rdd_result.ensemble_test_accuracy - gcn_result.test_accuracy
    print(f"\nRDD ensemble vs single GCN: {gain:+.4f}")


if __name__ == "__main__":
    main()
