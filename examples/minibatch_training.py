"""Scenario: memory-bounded training with sampled neighborhoods.

The paper's related work (§6) notes that spatial GCNs like GraphSAGE can
train on "a batch of nodes instead of the whole graph".  This example
contrasts the two regimes on a Pubmed-like graph:

1. full-batch GraphSAGE (exact neighbor means over the whole graph);
2. minibatch GraphSAGE with layer-wise neighbor sampling — each training
   step touches only a few hundred nodes regardless of graph size.

Run with::

    python examples/minibatch_training.py
"""

from __future__ import annotations

import time

from repro import pubmed_like
from repro.graph import build_blocks
from repro.models import GraphSAGE, MiniBatchSAGETrainer
from repro.training import Trainer, make_rng


def main() -> None:
    graph = pubmed_like(seed=5, scale=0.08)
    print(f"dataset: {graph}\n")

    # Full-batch: every epoch aggregates over all edges.
    start = time.perf_counter()
    full = GraphSAGE(graph.num_features, graph.num_classes, make_rng(0), hidden=16)
    full_result = Trainer(max_epochs=100).fit(full, graph)
    print(f"full-batch GraphSAGE : {full_result.summary()} "
          f"({time.perf_counter() - start:.1f}s)")

    # Minibatch: sampled 2-layer neighborhoods, 32 seeds per step.
    start = time.perf_counter()
    trainer = MiniBatchSAGETrainer(fanouts=(5, 5), batch_size=32, epochs=25)
    mini_result = trainer.fit(graph, seed=0, hidden=16)
    print(f"minibatch GraphSAGE  : {mini_result.summary()} "
          f"({time.perf_counter() - start:.1f}s)")

    # Show how small one sampled computation graph actually is.
    blocks = build_blocks(graph.adjacency, graph.train_index[:32], (5, 5), make_rng(1))
    print(f"\none minibatch touches {len(blocks[0].input_nodes)} of "
          f"{graph.num_nodes} nodes "
          f"({len(blocks[0].input_nodes) / graph.num_nodes:.1%} of the graph)")
    print("Expected: comparable accuracy, with per-step cost independent of graph size.")


if __name__ == "__main__":
    main()
