"""Scenario: infer paper topics in a citation network with scarce labels.

This is the workload the paper's introduction motivates: a citation graph
where labeling articles is expensive, so only a handful per topic are
labeled.  The script compares the classic semi-supervised toolbox —
label propagation, self-training, co-training — against the GCN and RDD,
on a Citeseer-like network.

Run with::

    python examples/citation_topic_classification.py
"""

from __future__ import annotations

from repro import GCN, RDDConfig, Trainer, citeseer_like, train_rdd
from repro.baselines import CoTraining, LabelPropagation, SelfTraining
from repro.tensor.functional import accuracy
from repro.training import make_rng


def main() -> None:
    graph = citeseer_like(seed=7, scale=0.25)
    print(f"dataset: {graph}")
    print(f"labeled papers: {len(graph.train_index)} of {graph.num_nodes} "
          f"({graph.label_rate:.1%})\n")

    results = {}

    lp = LabelPropagation(alpha=0.9)
    results["Label Propagation"] = accuracy(lp.predict(graph), graph.labels, graph.test_index)

    self_training = SelfTraining(rounds=2, additions_per_class=8, max_epochs=120)
    results["Self-Training"] = self_training.fit(graph, seed=1).test_accuracy

    co_training = CoTraining(additions_per_class=12, max_epochs=120)
    results["Co-Training (walk)"] = co_training.fit(graph, seed=1).test_accuracy

    gcn = GCN(graph.num_features, graph.num_classes, make_rng(1))
    results["GCN"] = Trainer(max_epochs=120).fit(gcn, graph).test_accuracy

    rdd = train_rdd(graph, RDDConfig(num_base_models=4, max_epochs=120, gamma_initial=3.0), seed=1)
    results["RDD (single)"] = rdd.last_base_test_accuracy
    results["RDD (ensemble)"] = rdd.ensemble_test_accuracy

    print(f"{'method':22s} test accuracy")
    print("-" * 38)
    for method, acc in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"{method:22s} {acc:.4f}")


if __name__ == "__main__":
    main()
