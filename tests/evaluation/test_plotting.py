"""Tests for the ASCII chart renderer."""

import pytest

from repro.errors import ConfigError
from repro.evaluation.common import ExperimentReport
from repro.evaluation.plotting import ascii_line_chart, chart_from_report


class TestAsciiLineChart:
    def test_contains_glyphs_and_legend(self):
        chart = ascii_line_chart([0, 1, 2], {"gcn": [0.1, 0.2, 0.3], "rdd": [0.2, 0.3, 0.4]})
        assert "o" in chart and "x" in chart
        assert "o=gcn" in chart and "x=rdd" in chart

    def test_extremes_on_first_and_last_axis_rows(self):
        chart = ascii_line_chart([0, 1], {"s": [0.0, 1.0]}, width=10, height=5)
        lines = chart.splitlines()
        assert "s"[0] not in lines[0] or True  # glyph 'o' used, not name
        assert "o" in lines[0]  # max value on top row
        assert "o" in lines[4]  # min value on bottom row

    def test_y_axis_labels_show_range(self):
        chart = ascii_line_chart([0, 1], {"s": [0.25, 0.75]})
        assert "0.750" in chart and "0.250" in chart

    def test_flat_series_does_not_crash(self):
        chart = ascii_line_chart([0, 1, 2], {"s": [0.5, 0.5, 0.5]})
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ConfigError):
            ascii_line_chart([0, 1], {})
        with pytest.raises(ConfigError):
            ascii_line_chart([0], {"s": [1.0]})
        with pytest.raises(ConfigError):
            ascii_line_chart([0, 1], {"s": [1.0]})
        with pytest.raises(ConfigError):
            ascii_line_chart([0, 0], {"s": [1.0, 2.0]})

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [0.0, 1.0] for i in range(9)}
        with pytest.raises(ConfigError):
            ascii_line_chart([0, 1], series)


class TestChartFromReport:
    def test_builds_from_rows(self):
        report = ExperimentReport(
            experiment="demo",
            rows=[
                {"labels": 5, "GCN": 0.7, "RDD": 0.75},
                {"labels": 10, "GCN": 0.75, "RDD": 0.8},
                {"labels": 20, "GCN": 0.8, "RDD": 0.84},
            ],
        )
        chart = chart_from_report(report, "labels", ["GCN", "RDD"])
        assert "o=GCN" in chart and "x=RDD" in chart
        assert "labels" in chart
