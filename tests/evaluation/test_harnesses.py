"""Tests for the experiment harnesses (tiny budgets — structure, not accuracy)."""

import math

import numpy as np
import pytest

from repro.evaluation import (
    ExperimentReport,
    HarnessConfig,
    ext_inductive,
    ext_noise,
    fig1,
    fig3,
    fig6,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)

TINY = HarnessConfig(scale=0.1, seeds=(0,), num_base_models=2, max_epochs=20, patience=10, hidden=8)


class TestReportFormatting:
    def test_empty_report(self):
        report = ExperimentReport(experiment="empty")
        assert "no rows" in report.format()

    def test_format_alignment_and_floats(self):
        report = ExperimentReport(
            experiment="demo",
            rows=[{"name": "a", "value": 0.123456}, {"name": "bb", "value": 1.0}],
            notes="note line",
        )
        text = report.format()
        assert "demo" in text
        assert "0.123" in text
        assert "note line" in text

    def test_harness_config_helpers(self):
        config = HarnessConfig(num_base_models=4, max_epochs=33)
        rdd = config.rdd_config(p=55.0)
        assert rdd.num_base_models == 4
        assert rdd.max_epochs == 33
        assert rdd.p == 55.0
        trainer = config.trainer()
        assert trainer.max_epochs == 33


class TestHarnessesProduceRows:
    def test_fig1(self):
        report = fig1.run(TINY, label_rates=(2.0, 5.2))
        assert len(report.rows) == 2
        assert all(0.0 <= r["gcn_accuracy"] <= 1.0 for r in report.rows)

    def test_table3(self):
        report = table3.run(TINY, datasets=("cora",))
        methods = {r["method"] for r in report.rows}
        assert methods == {"Single GCN", "RDD(Single)", "Bagging", "BANs", "RDD(Ensemble)"}
        assert all(not math.isnan(r["paper_accuracy_pct"]) for r in report.rows)

    def test_table4(self):
        report = table4.run(TINY, datasets=("cora",))
        methods = {r["method"] for r in report.rows}
        assert "LP" in methods and "RDD(Single)" in methods
        reference_rows = [r for r in report.rows if "not rerun" in r["method"]]
        assert len(reference_rows) == len(table4.REFERENCE_ONLY)
        assert all(math.isnan(r["test_accuracy"]) for r in reference_rows)

    def test_table5(self):
        report = table5.run(TINY, datasets=("cora",), depths=(2,))
        methods = {r["method"] for r in report.rows}
        assert methods == {"GCN", "JK-Net", "ResGCN", "DenseGCN", "RDD(Single)"}

    def test_table6(self):
        report = table6.run(TINY)
        rows = {r["method"]: r for r in report.rows}
        for row in rows.values():
            assert row["gain"] == pytest.approx(row["ensemble"] - row["average_base"])

    def test_fig6(self):
        report = fig6.run(TINY, sweep=(3, 5), include_deep=False)
        assert len(report.rows) >= 1
        assert "RDD(Ensemble)" in report.rows[0]

    def test_fig6_clips_sweep_to_available_labels(self):
        report = fig6.run(TINY, sweep=(3, 10_000), include_deep=False)
        assert all(r["labels_per_class"] < 10_000 for r in report.rows)

    def test_table7(self):
        report = table7.run(TINY, p_values=(40.0,), gamma_values=(0.0, 1.0), beta_values=(1.0,))
        assert len(report.rows) == 2
        assert {r["gamma"] for r in report.rows} == {0.0, 1.0}

    def test_table8(self):
        report = table8.run(TINY, datasets=("cora",))
        variants = {r["variant"] for r in report.rows}
        assert variants == {"No L2", "No Lreg", "WNR", "WER", "WKR", "WEW", "RDD"}
        rdd_row = next(r for r in report.rows if r["variant"] == "RDD")
        assert rdd_row["delta_vs_rdd"] == 0.0

    def test_table9(self):
        report = table9.run(TINY, target_margin=0.01)
        methods = {r["method"] for r in report.rows}
        assert methods == {"Bagging", "BANs", "RDD(Ensemble)"}
        for row in report.rows:
            assert row["avg_time_per_model_s"] > 0
            assert 1 <= row["models_to_target"] <= TINY.num_base_models
        rdd_row = next(r for r in report.rows if r["method"] == "RDD(Ensemble)")
        assert 0.0 < rdd_row["reliability_overhead"] < 1.0

    def test_table2(self):
        report = table2.run(TINY, datasets=("cora",))
        row = report.rows[0]
        assert row["classes"] == 7
        assert row["paper_nodes"] == 2708

    def test_fig3(self):
        report = fig3.run(TINY)
        selections = {r["selection"] for r in report.rows}
        assert len(selections) == 2
        for row in report.rows:
            assert 0.0 <= row["distilled_label_purity"] <= 1.0

    def test_ext_noise(self):
        report = ext_noise.run(TINY, noise_levels=(0.0, 0.5))
        assert len(report.rows) == 2
        assert {"Single GCN", "BANs", "RDD(Ensemble)"} <= set(report.rows[0])

    def test_ext_inductive(self):
        report = ext_inductive.run(TINY, unseen_fraction=0.4)
        methods = {r["method"] for r in report.rows}
        assert "GCN inductive" in methods and "RDD(Ensemble) inductive" in methods
