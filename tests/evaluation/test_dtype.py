"""Float32 opt-in compute: dtype propagation and accuracy tolerance.

float64 is the default and is bitwise-preserved; float32 is an opt-in
that must end up within ordinary run-to-run tolerance of the float64
result on the Cora stand-in.
"""

import numpy as np
import pytest

from repro.datasets.citation import cora_like
from repro.datasets.registry import load_dataset
from repro.evaluation.common import HarnessConfig, load_graphs, run_over_seeds, run_single_gcn
from repro.models.gcn import GCN
from repro.tensor.tensor import default_dtype, get_default_dtype


class TestDtypePropagation:
    def test_load_dataset_casts_graph(self):
        graph = load_dataset("cora", seed=0, scale=0.05, dtype="float32")
        assert graph.features.dtype == np.float32
        assert graph.normalized_adjacency().dtype == np.float32

    def test_default_dtype_context(self):
        assert get_default_dtype() == np.float64
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_default_dtype_none_is_noop(self):
        with default_dtype(None):
            assert get_default_dtype() == np.float64

    def test_model_computes_in_float32(self):
        graph = cora_like(seed=0, scale=0.05).astype("float32")
        with default_dtype("float32"):
            model = GCN(graph.num_features, graph.num_classes, np.random.default_rng(0))
        for param in model.parameters():
            assert param.data.dtype == np.float32
        assert model.predict_logits(graph).dtype == np.float32

    def test_float64_default_untouched(self):
        graph = cora_like(seed=0, scale=0.05)
        model = GCN(graph.num_features, graph.num_classes, np.random.default_rng(0))
        assert model.predict_logits(graph).dtype == np.float64


class TestFloat32Tolerance:
    def test_logits_close_to_float64(self):
        graph64 = cora_like(seed=0, scale=0.1)
        graph32 = graph64.astype("float32")
        model64 = GCN(graph64.num_features, graph64.num_classes, np.random.default_rng(0))
        with default_dtype("float32"):
            model32 = GCN(graph32.num_features, graph32.num_classes, np.random.default_rng(0))
        logits64 = model64.predict_logits(graph64)
        logits32 = model32.predict_logits(graph32)
        np.testing.assert_allclose(logits32, logits64, rtol=1e-4, atol=1e-4)

    def test_trained_accuracy_within_tolerance(self):
        # Train to convergence: undertrained runs are chaotically
        # sensitive to rounding (a different best-val checkpoint can
        # swing test accuracy by 10+ points); converged runs agree.
        budget = dict(scale=0.25, seeds=(0, 1), max_epochs=100, patience=20, hidden=16)
        results64 = run_over_seeds(
            run_single_gcn,
            load_graphs(HarnessConfig(dtype=None, **budget), "cora"),
            HarnessConfig(dtype=None, **budget),
        )
        results32 = run_over_seeds(
            run_single_gcn,
            load_graphs(HarnessConfig(dtype="float32", **budget), "cora"),
            HarnessConfig(dtype="float32", **budget),
        )
        acc64 = np.mean([r.test_accuracy for r in results64])
        acc32 = np.mean([r.test_accuracy for r in results32])
        # Same data, same seeds: only rounding differs.  Allow a few
        # points of slack — early stopping can pick a different epoch.
        assert abs(acc64 - acc32) < 0.05
