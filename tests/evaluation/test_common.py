"""Tests for the shared harness infrastructure in evaluation.common."""

import numpy as np
import pytest

from repro.evaluation.common import (
    PAPER_GAMMA_INITIAL,
    HarnessConfig,
    load_graphs,
    mean_over_seeds,
    run_rdd,
    run_single_gcn,
    std_over_seeds,
)


class TestSeedStatistics:
    def test_mean(self):
        assert mean_over_seeds([0.5, 0.7]) == pytest.approx(0.6)

    def test_std_single_seed_is_zero(self):
        assert std_over_seeds([0.5]) == 0.0

    def test_std_matches_numpy_sample_std(self):
        values = [0.5, 0.6, 0.8]
        assert std_over_seeds(values) == pytest.approx(np.std(values, ddof=1))


class TestLoadGraphs:
    def test_one_graph_per_seed(self):
        config = HarnessConfig(scale=0.1, seeds=(0, 1))
        graphs = load_graphs(config, "cora")
        assert len(graphs) == 2
        assert graphs[0].name == "cora"
        # Different seeds generate different structures.
        assert (graphs[0].adjacency != graphs[1].adjacency).nnz > 0


class TestRunners:
    def test_run_single_gcn_respects_config(self, small_citation):
        config = HarnessConfig(max_epochs=10, hidden=8)
        result = run_single_gcn(small_citation, config, seed=0)
        assert result.epochs_run <= 10

    def test_run_rdd_applies_paper_gamma(self, small_citation, monkeypatch):
        captured = {}

        from repro.evaluation import common

        class FakeTrainer:
            def __init__(self, config):
                captured["gamma"] = config.gamma_initial

            def fit(self, graph, seed):
                from repro.training.records import EnsembleResult

                return EnsembleResult(0.5, 0.5, [0.5])

        monkeypatch.setattr(common, "RDDTrainer", FakeTrainer)
        config = HarnessConfig(max_epochs=5)
        run_rdd(small_citation, config, seed=0)
        assert captured["gamma"] == PAPER_GAMMA_INITIAL["cora"]

    def test_run_rdd_explicit_gamma_wins(self, small_citation, monkeypatch):
        captured = {}
        from repro.evaluation import common

        class FakeTrainer:
            def __init__(self, config):
                captured["gamma"] = config.gamma_initial

            def fit(self, graph, seed):
                from repro.training.records import EnsembleResult

                return EnsembleResult(0.5, 0.5, [0.5])

        monkeypatch.setattr(common, "RDDTrainer", FakeTrainer)
        run_rdd(small_citation, HarnessConfig(), seed=0, gamma_initial=7.0)
        assert captured["gamma"] == 7.0

    def test_paper_gamma_table_complete(self):
        assert set(PAPER_GAMMA_INITIAL) == {"cora", "citeseer", "pubmed", "nell"}
