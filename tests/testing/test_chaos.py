"""Chaos tests: crash the runtime mid-run, resume, demand bit-identity.

The contract under test is the strongest one the crash-safe runtime
makes: after a worker crash, an interrupted checkpoint write, or even a
corrupted checkpoint file, resuming a multi-seed harness / RDD fit /
Bagging fit / grid search produces a result **bit-identical** to an
uninterrupted run — every accuracy, prediction array, and ensemble
weight, compared with :func:`results_bitwise_equal` (no tolerances).
"""

import numpy as np
import pytest

from repro.baselines.bagging import BaggingEnsemble
from repro.core.config import RDDConfig
from repro.core.rdd import RDDTrainer
from repro.datasets.citation import cora_like
from repro.evaluation.common import HarnessConfig, load_graphs, run_over_seeds, run_rdd
from repro.models.gcn import GCN
from repro.testing.faults import CheckpointFault, FaultPlan, WorkerCrash, inject, truncate_file
from repro.training.checkpoint import CheckpointStore
from repro.training.records import results_bitwise_equal
from repro.training.trainer import Trainer
from repro.training.tuning import grid_search

BUDGET = dict(scale=0.05, seeds=(0, 1, 2), num_base_models=2, max_epochs=4, patience=4, hidden=8)


@pytest.fixture(scope="module")
def graphs():
    return load_graphs(HarnessConfig(**BUDGET), "cora")


@pytest.fixture(scope="module")
def clean_harness(graphs):
    """The uninterrupted multi-seed RDD harness run (the reference)."""
    return run_over_seeds(run_rdd, graphs, HarnessConfig(**BUDGET))


class TestHarnessResume:
    def test_crash_mid_harness_then_resume_is_bit_identical(self, graphs, clean_harness, tmp_path):
        # Acceptance criterion: kill the multi-seed harness mid-run,
        # resume from checkpoint, final results bit-identical.
        config = HarnessConfig(checkpoint_dir=str(tmp_path), **BUDGET)
        with inject(FaultPlan().fail("harness:seed", key=2)):
            with pytest.raises(WorkerCrash):
                run_over_seeds(run_rdd, graphs, config)

        resumed = run_over_seeds(run_rdd, graphs, config)
        assert len(resumed) == len(clean_harness)
        for clean, after in zip(clean_harness, resumed):
            assert results_bitwise_equal(clean, after)
            assert after.ensemble_weights is not None

    def test_corrupted_checkpoint_falls_back_and_stays_bit_identical(
        self, graphs, clean_harness, tmp_path
    ):
        # Crash AND truncate the newest checkpoint generation: the
        # resume falls back to the previous generation (re-running one
        # extra seed) and the final results are still bit-identical.
        config = HarnessConfig(checkpoint_dir=str(tmp_path), **BUDGET)
        store = config.checkpoint_store()
        with inject(FaultPlan().fail("harness:seed", key=2)):
            with pytest.raises(WorkerCrash):
                run_over_seeds(run_rdd, graphs, config)

        (name,) = {p.name.rsplit("-", 1)[0] for p in tmp_path.iterdir()}
        truncate_file(store.latest_path(name), keep_fraction=0.5)

        with pytest.warns(UserWarning, match="skipping invalid generation"):
            resumed = run_over_seeds(run_rdd, graphs, config)
        for clean, after in zip(clean_harness, resumed):
            assert results_bitwise_equal(clean, after)

    def test_crash_during_checkpoint_write_loses_at_most_one_cell(
        self, graphs, clean_harness, tmp_path
    ):
        # The crash hits the checkpoint *save* of seed 1's result: seed 0
        # is durable, seed 1's work is lost — and recomputed identically.
        config = HarnessConfig(checkpoint_dir=str(tmp_path), **BUDGET)
        with inject(FaultPlan().fail("checkpoint:save", at=1, exc=CheckpointFault)):
            with pytest.raises(CheckpointFault):
                run_over_seeds(run_rdd, graphs, config)

        resumed = run_over_seeds(run_rdd, graphs, config)
        for clean, after in zip(clean_harness, resumed):
            assert results_bitwise_equal(clean, after)

    def test_no_resume_recomputes_everything_identically(self, graphs, clean_harness, tmp_path):
        config = HarnessConfig(checkpoint_dir=str(tmp_path), **BUDGET)
        with inject(FaultPlan().fail("harness:seed", key=1)):
            with pytest.raises(WorkerCrash):
                run_over_seeds(run_rdd, graphs, config)

        fresh = run_over_seeds(run_rdd, graphs, HarnessConfig(
            checkpoint_dir=str(tmp_path), resume=False, **BUDGET
        ))
        for clean, after in zip(clean_harness, fresh):
            assert results_bitwise_equal(clean, after)

    def test_retry_survives_transient_crash_in_one_run(self, graphs, clean_harness):
        # No checkpoint at all: a transient fault on seed 1 clears on
        # retry and the run completes bit-identically.
        config = HarnessConfig(task_retries=1, retry_backoff=0.0, **BUDGET)
        with inject(FaultPlan().fail("harness:seed", key=1, at=0)) as plan:
            with pytest.warns(UserWarning, match="retrying"):
                results = run_over_seeds(run_rdd, graphs, config)
        assert plan.fired() == 1
        for clean, after in zip(clean_harness, results):
            assert results_bitwise_equal(clean, after)


class TestRDDStudentResume:
    def test_crash_mid_student_loop_then_resume_is_bit_identical(self, tmp_path):
        graph = cora_like(seed=0, scale=0.05)
        config = RDDConfig(num_base_models=3, max_epochs=4, patience=4, hidden=8)
        clean = RDDTrainer(config).fit(graph, seed=0)

        store = CheckpointStore(tmp_path)
        with inject(FaultPlan().fail("rdd:student", key=2)):
            with pytest.raises(WorkerCrash):
                RDDTrainer(config).fit(graph, seed=0, checkpoint=store)

        resumed = RDDTrainer(config).fit(graph, seed=0, checkpoint=store)
        assert results_bitwise_equal(clean, resumed)
        np.testing.assert_array_equal(clean.ensemble_weights, resumed.ensemble_weights)
        for a, b in zip(clean.base_results, resumed.base_results):
            np.testing.assert_array_equal(a.predictions, b.predictions)

    def test_different_config_ignores_stale_checkpoint(self, tmp_path):
        graph = cora_like(seed=0, scale=0.05)
        store = CheckpointStore(tmp_path)
        config = RDDConfig(num_base_models=2, max_epochs=4, patience=4, hidden=8)
        RDDTrainer(config).fit(graph, seed=0, checkpoint=store)

        other = RDDConfig(num_base_models=2, max_epochs=4, patience=4, hidden=8, p=60.0)
        clean = RDDTrainer(other).fit(graph, seed=0)
        with pytest.warns(UserWarning, match="different config/seed fingerprint"):
            resumed = RDDTrainer(other).fit(graph, seed=0, checkpoint=store)
        # the p=60 run must not have inherited the p=40 teacher
        assert results_bitwise_equal(clean, resumed)

    def test_completed_checkpoint_short_circuits_retraining(self, tmp_path):
        graph = cora_like(seed=0, scale=0.05)
        config = RDDConfig(num_base_models=2, max_epochs=4, patience=4, hidden=8)
        store = CheckpointStore(tmp_path)
        first = RDDTrainer(config).fit(graph, seed=0, checkpoint=store)

        # A second fit finds every student already completed: no student
        # trains (the trainer:epoch fault would fire if one did).
        with inject(FaultPlan().fail("trainer:epoch", at=None)):
            again = RDDTrainer(config).fit(graph, seed=0, checkpoint=store)
        assert results_bitwise_equal(first, again)


class TestBaggingResume:
    def test_crash_mid_member_then_resume_is_bit_identical(self, tmp_path):
        graph = cora_like(seed=0, scale=0.05)
        kwargs = dict(num_base_models=3, hidden=8, max_epochs=4, patience=4)
        clean = BaggingEnsemble(**kwargs).fit(graph, seed=0)

        store = CheckpointStore(tmp_path)
        with inject(FaultPlan().fail("parallel:task", key=2)):
            with pytest.raises(WorkerCrash):
                BaggingEnsemble(**kwargs).fit(graph, seed=0, checkpoint=store)

        resumed = BaggingEnsemble(**kwargs).fit(graph, seed=0, checkpoint=store)
        assert results_bitwise_equal(clean, resumed)


def _grid_factory(graph, rng, hidden):
    return GCN(graph.num_features, graph.num_classes, rng, hidden=hidden, dropout=0.5)


class TestGridSearchResume:
    def test_crash_mid_grid_then_resume_selects_same_cell(self, tmp_path):
        graph = cora_like(seed=0, scale=0.05)
        trainer = Trainer(max_epochs=4, patience=4)
        grid = {"hidden": [4, 8, 12]}
        clean = grid_search(_grid_factory, grid, graph, trainer=trainer, seed=0)

        store = CheckpointStore(tmp_path)
        with inject(FaultPlan().fail("grid:cell", key=2)):
            with pytest.raises(WorkerCrash):
                grid_search(_grid_factory, grid, graph, trainer=trainer, seed=0, checkpoint=store)

        resumed = grid_search(_grid_factory, grid, graph, trainer=trainer, seed=0, checkpoint=store)
        assert resumed.best_params == clean.best_params
        assert results_bitwise_equal(clean.best_result, resumed.best_result)
        assert resumed.trials == clean.trials
