"""Differential tests: independent execution paths must agree bitwise.

Two families of redundancy exist in the runtime and both are easy to
break silently:

* every model has a taped forward (autodiff tape built, used in
  training) and a no-grad inference path (``predict_logits``; GCN even
  switches to a fused kernel there) — the two must produce identical
  logits, or evaluation would diverge from what training optimized;
* the multi-seed harness has a serial path and a process-pool path —
  with per-task spawned generators they must produce identical results,
  or ``--workers`` would change the science.
"""

import multiprocessing

import numpy as np
import pytest

from repro import models
from repro.datasets.citation import cora_like
from repro.evaluation.common import HarnessConfig, load_graphs, run_over_seeds, run_rdd
from repro.models.base import softmax_rows
from repro.core import RDDConfig, RDDTrainer
from repro.training import parallel
from repro.training.trainer import Trainer
from repro.training.records import results_bitwise_equal

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

# Every graph model in the zoo, by exported name (all share the
# (num_features, num_classes, rng, ...) constructor contract).
MODEL_ZOO = [
    "GCN",
    "SGC",
    "ChebNet",
    "GraphSAGE",
    "NGCN",
    "DGCN",
    "LGCN",
    "GPNN",
    "ResGCN",
    "DenseGCN",
    "JKNet",
    "GAT",
    "APPNP",
    "MLP",
]


@pytest.fixture(scope="module")
def graph():
    return cora_like(seed=0, scale=0.05)


def make_model(name, graph, seed=0):
    cls = getattr(models, name)
    return cls(graph.num_features, graph.num_classes, np.random.default_rng(seed))


class TestFusedVsTapedForward:
    @pytest.mark.parametrize("name", MODEL_ZOO)
    def test_no_grad_inference_matches_taped_forward_bitwise(self, name, graph):
        model = make_model(name, graph)
        model.eval()
        taped = model(graph).data  # grad enabled: the full tape is built
        fused = model.predict_logits(graph)  # no_grad / fused kernels
        np.testing.assert_array_equal(taped, fused)
        assert taped.dtype == fused.dtype

    @pytest.mark.parametrize("name", MODEL_ZOO)
    def test_predict_helpers_derive_from_the_same_logits(self, name, graph):
        model = make_model(name, graph)
        logits = model.predict_logits(graph)
        np.testing.assert_array_equal(model.predict_proba(graph), softmax_rows(logits))
        np.testing.assert_array_equal(model.predict(graph), logits.argmax(axis=1))

    def test_predict_logits_restores_training_mode(self, graph):
        model = make_model("GCN", graph)
        model.train()
        model.predict_logits(graph)
        assert model.training

    def test_inference_is_repeatable(self, graph):
        # No hidden RNG draw may happen on the inference path.
        model = make_model("GCN", graph)
        np.testing.assert_array_equal(model.predict_logits(graph), model.predict_logits(graph))


@pytest.mark.skipif(not HAS_FORK, reason="process-pool parity requires fork start method")
class TestWorkerCountParity:
    def test_workers_2_matches_workers_1_bitwise(self, monkeypatch):
        monkeypatch.setattr(parallel, "available_cores", lambda: 2)
        budget = dict(scale=0.05, seeds=(0, 1, 2), num_base_models=2,
                      max_epochs=4, patience=4, hidden=8)
        graphs = load_graphs(HarnessConfig(**budget), "cora")

        serial = run_over_seeds(run_rdd, graphs, HarnessConfig(workers=1, **budget))
        pooled = run_over_seeds(run_rdd, graphs, HarnessConfig(workers=2, **budget))

        assert len(serial) == len(pooled) == 3
        for a, b in zip(serial, pooled):
            assert results_bitwise_equal(a, b)


class TestFusedVsLegacyTraining:
    """The fused training-step kernels (and the gradient-buffer arena
    they run under) must leave every trained model bitwise identical to
    the legacy op-by-op tape — the guarantee that lets the fused path be
    the default."""

    @pytest.mark.parametrize("name", MODEL_ZOO)
    def test_zoo_trains_bitwise_identical(self, name, graph):
        def train(fused):
            model = make_model(name, graph)
            trainer = Trainer(max_epochs=8, patience=8, record_history=True, fused=fused)
            return trainer.fit(model, graph)

        assert results_bitwise_equal(train(True), train(False))

    def test_rdd_trains_bitwise_identical(self, graph):
        def run(fused):
            config = RDDConfig(
                num_base_models=2, max_epochs=6, patience=6, hidden=8,
                record_history=True, fused=fused,
            )
            return RDDTrainer(config).fit(graph, seed=0)

        assert results_bitwise_equal(run(True), run(False))
