"""Tests for the deterministic fault-injection layer."""

import pytest

from repro.testing.faults import (
    FaultPlan,
    InjectedFault,
    TransientFault,
    WorkerCrash,
    active_plan,
    fault_point,
    inject,
    truncate_file,
)


class TestInactiveByDefault:
    def test_fault_point_is_noop_without_plan(self):
        assert active_plan() is None
        fault_point("parallel:task", key=0)  # must not raise

    def test_inject_restores_previous_plan(self):
        plan = FaultPlan()
        with inject(plan):
            assert active_plan() is plan
        assert active_plan() is None

    def test_inject_restores_after_exception(self):
        plan = FaultPlan().fail("site", exc=WorkerCrash)
        with pytest.raises(WorkerCrash):
            with inject(plan):
                fault_point("site")
        assert active_plan() is None


class TestRuleMatching:
    def test_fires_on_first_hit_by_default(self):
        plan = FaultPlan().fail("site")
        with inject(plan):
            with pytest.raises(WorkerCrash):
                fault_point("site")
            fault_point("site")  # hit 1: already fired at hit 0
        assert plan.fired() == 1

    def test_keyed_rule_only_matches_its_key(self):
        plan = FaultPlan().fail("site", key=2)
        with inject(plan):
            fault_point("site", key=0)
            fault_point("site", key=1)
            with pytest.raises(WorkerCrash):
                fault_point("site", key=2)

    def test_hit_index_selection(self):
        plan = FaultPlan().fail("site", at=1)
        with inject(plan):
            fault_point("site")
            with pytest.raises(WorkerCrash):
                fault_point("site")

    def test_every_hit_when_at_is_none(self):
        plan = FaultPlan().fail("site", at=None, exc=TransientFault)
        with inject(plan):
            for _ in range(3):
                with pytest.raises(TransientFault):
                    fault_point("site")
        assert plan.fired("site") == 3

    def test_other_sites_unaffected(self):
        plan = FaultPlan().fail("site-a")
        with inject(plan):
            fault_point("site-b")  # must not raise

    def test_custom_exception_type(self):
        plan = FaultPlan().fail("site", exc=TransientFault)
        with inject(plan):
            with pytest.raises(TransientFault):
                fault_point("site")

    def test_injected_faults_are_library_errors(self):
        assert issubclass(WorkerCrash, InjectedFault)

    def test_rules_chain_fluently(self):
        plan = FaultPlan().fail("a").fail("b", key=1)
        assert len(plan.rules) == 2


class TestActions:
    def test_action_runs_instead_of_raising(self):
        seen = []
        plan = FaultPlan().fail("site", action=lambda ctx: seen.append(ctx))
        with inject(plan):
            fault_point("site", key=7, path="/tmp/x")
        assert seen == [{"key": 7, "path": "/tmp/x"}]
        assert plan.fired("site") == 1

    def test_action_receives_context_each_fire(self):
        seen = []
        plan = FaultPlan().fail("site", at=None, action=lambda ctx: seen.append(ctx["key"]))
        with inject(plan):
            fault_point("site", key="a")
            fault_point("site", key="b")
        assert seen == ["a", "b"]


class TestFileHelpers:
    def test_truncate_file(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"0123456789")
        truncate_file(path, keep_fraction=0.5)
        assert path.read_bytes() == b"01234"

    def test_flip_byte_rejects_empty(self, tmp_path):
        from repro.testing.faults import flip_byte

        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            flip_byte(path)
