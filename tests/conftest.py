"""Shared fixtures for the test suite.

``tiny_graph`` is a 60-node two-block graph with planted features — large
enough that every model learns something, small enough that training
tests finish in milliseconds.  ``small_citation`` is a scaled Cora
stand-in exercising the full dataset pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph.graph import Graph, build_adjacency


def make_two_block_graph(
    num_nodes: int = 60,
    num_features: int = 24,
    p_in: float = 0.2,
    p_out: float = 0.02,
    seed: int = 0,
    train_per_class: int = 6,
) -> Graph:
    """A deterministic two-community graph with class-informative features."""
    rng = np.random.default_rng(seed)
    labels = np.zeros(num_nodes, dtype=np.int64)
    labels[num_nodes // 2 :] = 1

    edges = []
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            prob = p_in if labels[i] == labels[j] else p_out
            if rng.random() < prob:
                edges.append((i, j))
    adjacency = build_adjacency(num_nodes, np.asarray(edges))
    # Attach isolated nodes to a same-class anchor so normalization works.
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    for node in np.flatnonzero(degrees == 0):
        anchor = 0 if labels[node] == 0 else num_nodes - 1
        if anchor == node:
            anchor = 1 if labels[node] == 0 else num_nodes - 2
        patch = build_adjacency(num_nodes, np.asarray([(node, anchor)]))
        adjacency = ((adjacency + patch) > 0).astype(np.float64).tocsr()
        adjacency.setdiag(0.0)
        adjacency.eliminate_zeros()

    centers = rng.normal(size=(2, num_features))
    features = centers[labels] + 0.8 * rng.normal(size=(num_nodes, num_features))

    per_class = [np.flatnonzero(labels == c) for c in (0, 1)]
    train = np.concatenate([cls[:train_per_class] for cls in per_class])
    val = np.concatenate([cls[train_per_class : train_per_class + 6] for cls in per_class])
    test = np.concatenate([cls[train_per_class + 6 : train_per_class + 16] for cls in per_class])
    return Graph(adjacency, features, labels, np.sort(train), np.sort(val), np.sort(test), name="two-block")


@pytest.fixture(scope="session")
def tiny_graph() -> Graph:
    return make_two_block_graph()


@pytest.fixture(scope="session")
def small_citation() -> Graph:
    from repro.datasets import cora_like

    return cora_like(seed=0, scale=0.1)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
