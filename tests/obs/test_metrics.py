"""MetricRegistry and the Prometheus text exporter."""

import pytest

from repro.obs.metrics import MetricRegistry, WindowHistogram, prometheus_text


class TestMetricRegistry:
    def test_counters_and_histograms(self):
        registry = MetricRegistry()
        registry.inc("a")
        registry.inc("a", 2)
        registry.observe("lat", 5.0)
        assert registry.counter("a") == 3
        assert registry.percentile("lat", "p50") == 5.0
        assert registry.percentile("missing") is None

    def test_window_bound_is_configurable(self):
        registry = MetricRegistry(window=2)
        for value in (1.0, 2.0, 3.0):
            registry.observe("x", value)
        snapshot = registry.snapshot()["histograms"]["x"]
        assert snapshot["count"] == 3  # total ever
        assert snapshot["window"] == 2  # retained
        assert snapshot["min"] == 2.0

    def test_prometheus_method_matches_module_function(self):
        registry = MetricRegistry()
        registry.inc("requests_total")
        registry.observe("latency_ms", 2.0)
        assert registry.prometheus() == prometheus_text(registry.snapshot())


class TestPrometheusText:
    def test_counter_rendering(self):
        text = prometheus_text({"counters": {"requests_total": 7}, "histograms": {}})
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 7" in text
        assert text.endswith("\n")

    def test_summary_rendering_with_quantiles(self):
        registry = MetricRegistry()
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("latency_ms", value)
        text = prometheus_text(registry.snapshot())
        assert "# TYPE repro_latency_ms summary" in text
        assert 'repro_latency_ms{quantile="0.5"} 2.5' in text
        assert 'repro_latency_ms{quantile="0.99"}' in text
        assert "repro_latency_ms_sum 10" in text
        assert "repro_latency_ms_count 4" in text

    def test_empty_histogram_renders_zero_samples(self):
        text = prometheus_text({"counters": {}, "histograms": {"h": {"count": 0}}})
        assert "repro_h_sum 0" in text
        assert "repro_h_count 0" in text
        assert "quantile" not in text

    def test_metric_names_are_sanitized(self):
        text = prometheus_text({"counters": {"span_rdd:student_s": 1}, "histograms": {}})
        assert "repro_span_rdd_student_s 1" in text
        assert ":" not in text.replace("# TYPE", "")

    def test_prefix_is_optional_and_leading_digit_guarded(self):
        text = prometheus_text({"counters": {"9lives": 1}, "histograms": {}}, prefix="")
        assert "_9lives 1" in text

    def test_histogram_rejects_empty_window(self):
        with pytest.raises(ValueError):
            WindowHistogram(window=0)
