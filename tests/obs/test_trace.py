"""Span/timer tracing: the JSONL event log and its zero-cost off switch."""

import json
import threading

import pytest

import repro.obs as obs
from repro.obs import EVENT_LOG_NAME


def read_log(run_dir):
    with open(run_dir / EVENT_LOG_NAME, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestDisabled:
    def test_span_is_the_shared_falsy_noop(self):
        first = obs.span("anything", attr=1)
        second = obs.span("else")
        assert first is second
        assert not first
        assert first.set(loss=1.0) is first  # chainable no-op
        with first:
            pass

    def test_event_is_a_noop_and_nothing_is_written(self, tmp_path):
        obs.event("rdd_epoch", gamma=0.5)
        assert not obs.enabled()
        assert obs.recorder() is None
        assert list(tmp_path.iterdir()) == []


class TestEnabled:
    def test_enable_emits_run_start_and_is_idempotent(self, tmp_path):
        recorder = obs.enable(tmp_path)
        assert obs.enable(tmp_path) is recorder  # same dir -> same recorder
        assert obs.enabled() and obs.recorder() is recorder
        events = read_log(tmp_path)
        assert len(events) == 1
        assert events[0]["kind"] == "run" and events[0]["name"] == "start"

    def test_switching_directories_starts_a_new_log(self, tmp_path):
        first = obs.enable(tmp_path / "a")
        second = obs.enable(tmp_path / "b")
        assert second is not first
        obs.event("only_in_b")
        names = [e["name"] for e in read_log(tmp_path / "b")]
        assert "only_in_b" in names
        assert "only_in_b" not in [e["name"] for e in read_log(tmp_path / "a")]

    def test_span_records_duration_status_and_attrs(self, tmp_path):
        obs.enable(tmp_path)
        with obs.span("epoch", epoch=3) as sp:
            assert sp
            sp.set(loss=0.25)
        record = [e for e in read_log(tmp_path) if e["kind"] == "span"][0]
        assert record["name"] == "epoch"
        assert record["epoch"] == 3 and record["loss"] == 0.25
        assert record["status"] == "ok"
        assert record["dur_s"] >= 0.0
        assert record["depth"] == 0 and record["parent"] is None
        assert "pid" in record and "thread" in record

    def test_nested_spans_record_parent_and_depth(self, tmp_path):
        obs.enable(tmp_path)
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = {e["name"]: e for e in read_log(tmp_path) if e["kind"] == "span"}
        assert spans["inner"]["parent"] == "outer" and spans["inner"]["depth"] == 1
        assert spans["outer"]["parent"] is None and spans["outer"]["depth"] == 0

    def test_exception_marks_span_error_and_propagates(self, tmp_path):
        obs.enable(tmp_path)
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        record = [e for e in read_log(tmp_path) if e["kind"] == "span"][0]
        assert record["status"] == "error"
        assert record["exception"] == "ValueError"

    def test_span_durations_feed_the_live_registry(self, tmp_path):
        recorder = obs.enable(tmp_path)
        with obs.span("epoch"):
            pass
        snapshot = recorder.metrics.snapshot()
        assert snapshot["histograms"]["span_epoch_s"]["count"] == 1

    def test_numpy_values_serialize(self, tmp_path):
        import numpy as np

        obs.enable(tmp_path)
        obs.event("diag", count=np.int64(7), score=np.float32(0.5), vec=np.arange(3))
        record = [e for e in read_log(tmp_path) if e["name"] == "diag"][0]
        assert record["count"] == 7
        assert record["score"] == 0.5
        assert record["vec"] == [0, 1, 2]

    def test_span_stacks_are_thread_local(self, tmp_path):
        obs.enable(tmp_path)
        ready, release = threading.Barrier(2), threading.Event()

        def worker():
            with obs.span("worker_outer"):
                ready.wait(timeout=5)
                release.wait(timeout=5)

        thread = threading.Thread(target=worker)
        thread.start()
        ready.wait(timeout=5)
        # Main thread's span must not see the worker's open span as parent.
        with obs.span("main_top"):
            pass
        release.set()
        thread.join(timeout=5)
        spans = {e["name"]: e for e in read_log(tmp_path) if e["kind"] == "span"}
        assert spans["main_top"]["parent"] is None and spans["main_top"]["depth"] == 0

    def test_disable_closes_the_log(self, tmp_path):
        obs.enable(tmp_path)
        obs.disable()
        assert not obs.enabled()
        obs.event("dropped")  # no-op, must not raise
        assert all(e["name"] != "dropped" for e in read_log(tmp_path))


class TestWorkerForwarding:
    def test_harness_worker_spans_land_in_the_parent_log(self, tmp_path):
        # Forked run_over_seeds workers inherit the enabled recorder and
        # append to the same events.jsonl; every seed's harness span must
        # be present regardless of which process ran it.  (On platforms
        # without fork the harness falls back to serial, which trivially
        # satisfies the same contract.)
        from repro.datasets.citation import cora_like
        from repro.evaluation.common import HarnessConfig, run_over_seeds, run_rdd

        config = HarnessConfig(
            scale=0.05,
            seeds=(0, 1),
            num_base_models=2,
            max_epochs=3,
            patience=3,
            hidden=8,
            workers=2,
            obs_dir=str(tmp_path),
        )
        graphs = [cora_like(seed=s, scale=config.scale) for s in config.seeds]
        run_over_seeds(run_rdd, graphs, config)
        events = read_log(tmp_path)
        seed_spans = [e for e in events if e["kind"] == "span" and e["name"] == "harness:seed"]
        assert sorted(e["seed"] for e in seed_spans) == [0, 1]
        assert any(e["name"] == "rdd_epoch" for e in events)
