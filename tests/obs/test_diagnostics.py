"""Per-epoch RDD reliability diagnostics in the event log."""

import json

import repro.obs as obs
from repro.core.config import RDDConfig
from repro.core.rdd import RDDTrainer
from repro.datasets.citation import cora_like
from repro.obs import EVENT_LOG_NAME
from repro.training.records import results_bitwise_equal

CONFIG = RDDConfig(num_base_models=2, max_epochs=4, patience=4, hidden=8)

REQUIRED_KEYS = {
    "student",
    "epoch",
    "L1",
    "L2",
    "Lreg",
    "loss",
    "num_reliable",
    "num_distill",
    "num_reliable_edges",
    "agreement",
    "gamma",
}


def read_log(run_dir):
    with open(run_dir / EVENT_LOG_NAME, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestRDDDiagnostics:
    def test_every_epoch_emits_a_complete_diagnostics_record(self, tmp_path):
        obs.enable(tmp_path)
        RDDTrainer(CONFIG).fit(cora_like(seed=0, scale=0.05), seed=0)
        events = read_log(tmp_path)
        epochs = [e for e in events if e["name"] == "rdd_epoch"]
        assert epochs, "no rdd_epoch events recorded"
        # The first student is plain supervised (Alg. 3 line 2) — only
        # distilled students (2..T) run the reliability machinery.
        assert {e["student"] for e in epochs} == {2}
        for record in epochs:
            assert REQUIRED_KEYS <= set(record), f"missing {REQUIRED_KEYS - set(record)}"

    def test_diagnostics_values_are_sane(self, tmp_path):
        graph = cora_like(seed=0, scale=0.05)
        obs.enable(tmp_path)
        RDDTrainer(CONFIG).fit(graph, seed=0)
        for record in [e for e in read_log(tmp_path) if e["name"] == "rdd_epoch"]:
            assert 0 <= record["num_reliable"] <= graph.num_nodes
            assert 0 <= record["num_distill"] <= graph.num_nodes
            assert record["num_reliable_edges"] >= 0
            assert 0.0 <= record["agreement"] <= 1.0
            assert record["gamma"] >= 0.0
            assert record["L1"] >= 0.0
            assert record["loss"] >= record["L1"] - 1e-9

    def test_student_result_events_cover_the_ensemble(self, tmp_path):
        obs.enable(tmp_path)
        RDDTrainer(CONFIG).fit(cora_like(seed=0, scale=0.05), seed=0)
        results = [e for e in read_log(tmp_path) if e["name"] == "rdd_student_result"]
        assert [e["student"] for e in results] == [1, 2]
        for record in results:
            assert 0.0 <= record["test_accuracy"] <= 1.0
            assert 0.0 <= record["ensemble_test_accuracy"] <= 1.0

    def test_observability_does_not_change_the_trajectory(self, tmp_path):
        # Diagnostics are pure reads off the tape: enabling obs must leave
        # the trained result bitwise identical to an unobserved run.
        graph = cora_like(seed=0, scale=0.05)
        clean = RDDTrainer(CONFIG).fit(graph, seed=0)
        obs.enable(tmp_path)
        observed = RDDTrainer(CONFIG).fit(graph, seed=0)
        obs.disable()
        assert results_bitwise_equal(clean, observed)

    def test_disabled_run_writes_nothing(self, tmp_path):
        RDDTrainer(CONFIG).fit(cora_like(seed=0, scale=0.05), seed=0)
        assert list(tmp_path.iterdir()) == []
