"""`repro report`: reconstructing summaries from a run's event log."""

import json

import pytest

import repro.obs as obs
from repro.cli import main
from repro.core.config import RDDConfig
from repro.core.rdd import RDDTrainer
from repro.datasets.citation import cora_like
from repro.obs import EVENT_LOG_NAME
from repro.obs.report import (
    ReportError,
    read_events,
    registry_from_events,
    reliability_rows,
    render_report,
    span_rows,
)


@pytest.fixture(scope="module")
def rdd_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("rdd_run")
    obs.enable(run_dir)
    config = RDDConfig(num_base_models=2, max_epochs=4, patience=4, hidden=8)
    RDDTrainer(config).fit(cora_like(seed=0, scale=0.05), seed=0)
    obs.disable()
    return run_dir


class TestReadEvents:
    def test_missing_log_raises_report_error(self, tmp_path):
        with pytest.raises(ReportError, match="--obs-dir"):
            read_events(tmp_path)

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / EVENT_LOG_NAME
        good = json.dumps({"kind": "point", "name": "x"})
        path.write_text(good + "\n" + '{"kind": "point", "na', encoding="utf-8")
        events = read_events(tmp_path)
        assert len(events) == 1 and events[0]["name"] == "x"

    def test_accepts_a_file_path_too(self, tmp_path):
        path = tmp_path / EVENT_LOG_NAME
        path.write_text(json.dumps({"kind": "point", "name": "x"}) + "\n", encoding="utf-8")
        assert read_events(path) == read_events(tmp_path)


class TestAggregation:
    def test_registry_from_events_counts_spans_points_and_errors(self):
        events = [
            {"kind": "span", "name": "epoch", "dur_s": 0.5, "status": "ok"},
            {"kind": "span", "name": "epoch", "dur_s": 1.5, "status": "error"},
            {"kind": "point", "name": "rdd_epoch"},
        ]
        registry = registry_from_events(events)
        assert registry.counter("spans_epoch_total") == 2
        assert registry.counter("span_errors_epoch_total") == 1
        assert registry.counter("events_rdd_epoch_total") == 1
        assert registry.percentile("span_epoch_s", "max") == 1.5

    def test_span_rows_sorted_by_total_time(self):
        events = [
            {"kind": "span", "name": "fast", "dur_s": 0.1},
            {"kind": "span", "name": "slow", "dur_s": 5.0},
            {"kind": "span", "name": "fast", "dur_s": 0.3},
        ]
        rows = span_rows(events)
        assert [row["span"] for row in rows] == ["slow", "fast"]
        fast = rows[1]
        assert fast["count"] == 2
        assert fast["total_s"] == pytest.approx(0.4)
        assert fast["mean_s"] == pytest.approx(0.2)
        assert fast["max_s"] == pytest.approx(0.3)

    def test_reliability_rows_show_first_to_last_trajectory(self):
        events = [
            {
                "kind": "point",
                "name": "rdd_epoch",
                "student": 1,
                "epoch": epoch,
                "num_reliable": 10 + epoch,
                "num_distill": 5,
                "num_reliable_edges": 20,
                "agreement": 0.5,
                "gamma": 1.0 - 0.1 * epoch,
                "L1": 0.9,
                "L2": 0.4,
                "Lreg": 0.01,
            }
            for epoch in (0, 1, 2)
        ]
        (row,) = reliability_rows(events)
        assert row["student"] == 1 and row["epochs"] == 3
        assert row["num_reliable"] == "10->12"
        assert row["gamma"] == "1->0.8"
        assert row["L1"] == 0.9 and row["L2"] == 0.4 and row["Lreg"] == 0.01


class TestRenderedReport:
    def test_report_covers_spans_reliability_and_prometheus(self, rdd_run):
        text = render_report(rdd_run)
        assert "== spans ==" in text
        assert "epoch" in text
        assert "RDD reliability diagnostics" in text
        assert "== metrics (prometheus) ==" in text
        assert "repro_spans_epoch_total" in text

    def test_report_without_rdd_events_says_so(self, tmp_path):
        path = tmp_path / EVENT_LOG_NAME
        path.write_text(
            json.dumps({"kind": "span", "name": "epoch", "dur_s": 0.1}) + "\n",
            encoding="utf-8",
        )
        assert "no rdd_epoch events" in render_report(tmp_path)


class TestCLI:
    def test_report_command_prints_the_summary(self, rdd_run, capsys):
        assert main(["report", str(rdd_run)]) == 0
        out = capsys.readouterr().out
        assert "RDD reliability diagnostics" in out

    def test_report_prometheus_format(self, rdd_run, capsys):
        assert main(["report", str(rdd_run), "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_spans_epoch_total counter" in out

    def test_report_on_empty_directory_fails_cleanly(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) != 0
