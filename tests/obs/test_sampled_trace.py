"""Observability of the sampled training path.

Sampled epochs must emit one ``sampler:batch`` span per optimizer step
(carrying batch composition attrs, including the per-batch reliable-seed
count for RDD students), without perturbing the recorded trajectory —
obs on/off results stay bitwise identical.  The wall-time budget itself
(≤1.05× enabled vs disabled) is enforced by the perf-marked
``benchmarks/bench_obs.py``, which now times the sampled path too.
"""

import json

import numpy as np

import repro.obs as obs
from repro.core.config import RDDConfig
from repro.core.rdd import RDDTrainer
from repro.models.gcn import GCN
from repro.obs import EVENT_LOG_NAME
from repro.training.sampled import SampledTrainer


def read_log(run_dir):
    with open(run_dir / EVENT_LOG_NAME, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def make_gcn(graph, seed=3):
    return GCN(
        graph.num_features, graph.num_classes, np.random.default_rng(seed), hidden=16
    )


SAMPLED_CONFIG = dict(
    num_base_models=2, max_epochs=4, patience=50, hidden=16,
    sampler="neighbor", fanouts=(3, 3), batch_size=8,
)


class TestSampledTrainerSpans:
    def test_batch_spans_carry_composition(self, tiny_graph, tmp_path):
        obs.enable(tmp_path)
        SampledTrainer(
            fanouts=(3, 3), batch_size=8, max_epochs=2, patience=50
        ).fit(make_gcn(tiny_graph), tiny_graph)
        spans = [e for e in read_log(tmp_path) if e.get("name") == "sampler:batch"]
        # 12 train seeds / batch 8 = 2 batches per epoch, 2 epochs.
        assert len(spans) == 4
        for span in spans:
            assert span["kind"] == "span" and span["status"] == "ok"
            assert span["parent"] == "epoch"
            assert 0 < span["num_seeds"] <= 8
            assert span["num_input_nodes"] >= span["num_seeds"]
            assert span["loss"] > 0.0
        assert sorted({s["epoch"] for s in spans}) == [0, 1]

    def test_fit_span_reports_sampler_settings(self, tiny_graph, tmp_path):
        obs.enable(tmp_path)
        SampledTrainer(
            fanouts=(3, 3), batch_size=8, max_epochs=1, patience=50
        ).fit(make_gcn(tiny_graph), tiny_graph)
        fit = [e for e in read_log(tmp_path) if e.get("name") == "trainer:fit"][0]
        assert fit["sampler"] == "neighbor"
        assert fit["fanouts"] == [3, 3] and fit["batch_size"] == 8


class TestSampledRDDSpans:
    def test_distilled_students_report_reliable_seed_counts(self, tiny_graph, tmp_path):
        obs.enable(tmp_path)
        RDDTrainer(RDDConfig(**SAMPLED_CONFIG)).fit(tiny_graph, seed=0)
        events = read_log(tmp_path)
        spans = [e for e in events if e.get("name") == "sampler:batch"]
        assert spans, "sampled RDD fit emitted no sampler:batch spans"
        distilled = [s for s in spans if "reliable_seeds" in s]
        assert distilled, "distilled-student batches must report reliable seeds"
        for span in distilled:
            assert 0 <= span["reliable_seeds"] <= span["num_seeds"]
        # The first (plain supervised) student has no reliability sets,
        # so some spans legitimately lack the attribute.
        assert len(distilled) < len(spans)

    def test_rdd_epoch_events_once_per_distilled_epoch(self, tiny_graph, tmp_path):
        obs.enable(tmp_path)
        RDDTrainer(RDDConfig(**SAMPLED_CONFIG)).fit(tiny_graph, seed=0)
        epochs = [e for e in read_log(tmp_path) if e.get("name") == "rdd_epoch"]
        assert len(epochs) == SAMPLED_CONFIG["max_epochs"]
        assert [e["epoch"] for e in epochs] == list(range(SAMPLED_CONFIG["max_epochs"]))
        for event in epochs:
            assert event["student"] == 2
            assert "num_reliable" in event and "gamma" in event

    def test_trajectory_bitwise_identical_obs_on_off(self, tiny_graph, tmp_path):
        enabled_dir = tmp_path / "on"
        obs.enable(enabled_dir)
        with_obs = RDDTrainer(RDDConfig(**SAMPLED_CONFIG)).fit(tiny_graph, seed=0)
        obs.disable()
        without_obs = RDDTrainer(RDDConfig(**SAMPLED_CONFIG)).fit(tiny_graph, seed=0)
        assert with_obs.ensemble_test_accuracy == without_obs.ensemble_test_accuracy
        assert with_obs.base_test_accuracies == without_obs.base_test_accuracies
        for a, b in zip(with_obs.base_results, without_obs.base_results):
            np.testing.assert_array_equal(a.predictions, b.predictions)
