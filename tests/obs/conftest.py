"""Observability tests toggle the process-global recorder; always
disable it afterwards so the rest of the suite runs unobserved."""

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def obs_disabled_after():
    obs.disable()
    yield
    obs.disable()
