"""Tests for decision-boundary analysis."""

import numpy as np
import pytest

from repro.analysis import boundary_mask, boundary_reliability_report
from repro.core import node_reliability
from repro.errors import ShapeError
from repro.graph import Graph, build_adjacency
from repro.models import GCN
from repro.models.base import softmax_rows
from repro.training import Trainer, make_rng


def two_triangles_with_bridge():
    """Two 3-cliques connected by one edge: nodes 2 and 3 are boundary."""
    edges = np.array([[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5], [2, 3]])
    adjacency = build_adjacency(6, edges)
    labels = np.array([0, 0, 0, 1, 1, 1])
    return Graph(
        adjacency, np.eye(6), labels,
        train_index=np.array([0, 5]),
        val_index=np.array([1, 4]),
        test_index=np.array([2, 3]),
    )


class TestBoundaryMask:
    def test_identifies_bridge_endpoints(self):
        graph = two_triangles_with_bridge()
        mask = boundary_mask(graph)
        np.testing.assert_array_equal(mask, [False, False, True, True, False, False])

    def test_fully_homophilous_graph_has_no_boundary(self):
        adjacency = build_adjacency(4, np.array([[0, 1], [2, 3]]))
        graph = Graph(adjacency, np.eye(4), np.array([0, 0, 1, 1]),
                      np.array([0]), np.array([1]), np.array([2]))
        assert not boundary_mask(graph).any()


class TestBoundaryReliabilityReport:
    def _report(self, graph):
        model = GCN(graph.num_features, graph.num_classes, make_rng(0), hidden=8)
        Trainer(max_epochs=60).fit(model, graph)
        probs = softmax_rows(model.predict_logits(graph))
        sets = node_reliability(probs, probs, graph.labels, graph.train_index, p=40.0)
        return boundary_reliability_report(graph, sets, probs)

    def test_report_fields_well_formed(self, tiny_graph):
        report = self._report(tiny_graph)
        assert 0.0 <= report.boundary_fraction <= 1.0
        for value in (
            report.reliable_rate_boundary,
            report.reliable_rate_interior,
            report.teacher_accuracy_boundary,
            report.teacher_accuracy_interior,
        ):
            assert np.isnan(value) or 0.0 <= value <= 1.0

    def test_paper_claim_boundary_nodes_harder(self, tiny_graph):
        # "nodes lying near the decision boundary ... are actually the
        # ones on which predictions are unreliable" (§1.2): teacher
        # accuracy on boundary nodes should not exceed interior accuracy.
        report = self._report(tiny_graph)
        assert report.teacher_accuracy_boundary <= report.teacher_accuracy_interior + 0.1

    def test_shape_validation(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        probs = softmax_rows(model.predict_logits(tiny_graph))
        sets = node_reliability(probs, probs, tiny_graph.labels, tiny_graph.train_index)
        with pytest.raises(ShapeError):
            boundary_reliability_report(tiny_graph, sets, probs[:5])
