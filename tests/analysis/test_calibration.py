"""Tests for calibration metrics (ECE, entropy-correctness AUC)."""

import numpy as np
import pytest

from repro.analysis import calibration_report, entropy_correctness_auc
from repro.errors import ShapeError


def confident_probs(labels, confidence, k=3):
    n = len(labels)
    probs = np.full((n, k), (1 - confidence) / (k - 1))
    probs[np.arange(n), labels] = confidence
    return probs


class TestCalibrationReport:
    def test_perfectly_calibrated_low_ece(self):
        rng = np.random.default_rng(0)
        n = 5000
        labels = rng.integers(0, 2, n)
        # Confidence 0.7 predictions that are right exactly 70% of the time.
        predicted = labels.copy()
        flip = rng.random(n) < 0.3
        predicted[flip] = 1 - predicted[flip]
        probs = np.zeros((n, 2))
        probs[np.arange(n), predicted] = 0.7
        probs[np.arange(n), 1 - predicted] = 0.3
        report = calibration_report(probs, labels)
        assert report.expected_calibration_error < 0.05

    def test_overconfident_model_high_ece(self):
        rng = np.random.default_rng(1)
        n = 2000
        labels = rng.integers(0, 2, n)
        predicted = rng.integers(0, 2, n)  # 50% accuracy
        probs = np.zeros((n, 2))
        probs[np.arange(n), predicted] = 0.99
        probs[np.arange(n), 1 - predicted] = 0.01
        report = calibration_report(probs, labels)
        assert report.expected_calibration_error > 0.4

    def test_bin_counts_sum_to_n(self):
        rng = np.random.default_rng(2)
        probs = rng.dirichlet(np.ones(3), size=100)
        labels = rng.integers(0, 3, 100)
        report = calibration_report(probs, labels, num_bins=7)
        assert report.bin_counts.sum() == 100

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            calibration_report(np.ones((3, 2)) / 2, np.zeros(4, dtype=int))

    def test_bins_validation(self):
        with pytest.raises(ValueError):
            calibration_report(np.ones((3, 2)) / 2, np.zeros(3, dtype=int), num_bins=0)


class TestEntropyCorrectnessAuc:
    def test_perfect_ranking(self):
        labels = np.array([0, 0, 0, 0])
        # Correct predictions confident, wrong ones unsure.
        probs = np.array(
            [[0.99, 0.005, 0.005], [0.98, 0.01, 0.01], [0.4, 0.35, 0.25], [0.34, 0.33, 0.33]]
        )
        # Last two rows predict class 0 too but we make them wrong:
        labels = np.array([0, 0, 1, 2])
        assert entropy_correctness_auc(probs, labels) == pytest.approx(1.0)

    def test_uninformative_entropy_near_half(self):
        rng = np.random.default_rng(3)
        n = 3000
        labels = rng.integers(0, 2, n)
        # All predictions equally confident; correctness random.
        predicted = rng.integers(0, 2, n)
        probs = np.zeros((n, 2))
        probs[np.arange(n), predicted] = 0.8
        probs[np.arange(n), 1 - predicted] = 0.2
        auc = entropy_correctness_auc(probs, labels)
        assert auc == pytest.approx(0.5, abs=0.05)

    def test_degenerate_all_correct(self):
        labels = np.array([0, 1])
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert entropy_correctness_auc(probs, labels) == 1.0

    def test_trained_gcn_entropy_is_informative(self, tiny_graph):
        # The premise of Algorithm 1: on a real model, low entropy should
        # correlate with correctness (AUC well above chance).
        from repro.models import GCN
        from repro.models.base import softmax_rows
        from repro.training import Trainer, make_rng

        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        Trainer(max_epochs=60).fit(model, tiny_graph)
        probs = softmax_rows(model.predict_logits(tiny_graph))
        assert entropy_correctness_auc(probs, tiny_graph.labels) > 0.55
