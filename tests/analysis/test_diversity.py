"""Tests for ensemble diversity metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ambiguity_decomposition, pairwise_disagreement, yule_q_statistic
from repro.errors import ShapeError


class TestPairwiseDisagreement:
    def test_identical_predictors_zero(self):
        preds = np.array([0, 1, 2, 0])
        assert pairwise_disagreement([preds, preds.copy(), preds.copy()]) == 0.0

    def test_fully_conflicting_predictors_one(self):
        a = np.zeros(10, dtype=int)
        b = np.ones(10, dtype=int)
        assert pairwise_disagreement([a, b]) == 1.0

    def test_accepts_probability_matrices(self):
        a = np.array([[0.9, 0.1], [0.1, 0.9]])
        b = np.array([[0.1, 0.9], [0.1, 0.9]])
        assert pairwise_disagreement([a, b]) == pytest.approx(0.5)

    def test_needs_two_models(self):
        with pytest.raises(ShapeError):
            pairwise_disagreement([np.zeros(3, dtype=int)])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100), models=st.integers(2, 5))
    def test_property_bounded(self, seed, models):
        rng = np.random.default_rng(seed)
        preds = [rng.integers(0, 3, 20) for _ in range(models)]
        value = pairwise_disagreement(preds)
        assert 0.0 <= value <= 1.0


class TestYuleQ:
    def test_identical_correctness_gives_one(self):
        labels = np.array([0, 1, 0, 1])
        preds = np.array([0, 1, 1, 0])  # half right
        assert yule_q_statistic([preds, preds.copy()], labels) == pytest.approx(1.0)

    def test_complementary_errors_give_negative(self):
        labels = np.zeros(4, dtype=int)
        a = np.array([0, 0, 1, 1])  # right on first half
        b = np.array([1, 1, 0, 0])  # right on second half
        assert yule_q_statistic([a, b], labels) < 0

    def test_bounded(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, 30)
        preds = [rng.integers(0, 3, 30) for _ in range(4)]
        value = yule_q_statistic(preds, labels)
        assert -1.0 <= value <= 1.0


class TestAmbiguityDecomposition:
    def _one_hot(self, labels, k=2):
        out = np.zeros((len(labels), k))
        out[np.arange(len(labels)), labels] = 1.0
        return out

    def test_decomposition_identity(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 3, 15)
        probs = [rng.dirichlet(np.ones(3), size=15) for _ in range(4)]
        result = ambiguity_decomposition(probs, labels)
        assert result["ensemble_error"] == pytest.approx(
            result["average_error"] - result["ambiguity"], abs=1e-10
        )

    def test_identical_models_zero_ambiguity(self):
        labels = np.array([0, 1])
        probs = self._one_hot(labels)
        result = ambiguity_decomposition([probs, probs.copy()], labels)
        assert result["ambiguity"] == pytest.approx(0.0)

    def test_perfect_models_zero_errors(self):
        labels = np.array([0, 1, 0])
        probs = self._one_hot(labels)
        result = ambiguity_decomposition([probs, probs.copy()], labels)
        assert result["average_error"] == pytest.approx(0.0)
        assert result["ensemble_error"] == pytest.approx(0.0)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ShapeError):
            ambiguity_decomposition([np.zeros(3)], np.zeros(3, dtype=int))
