"""Tests for over-smoothing metrics and reliability-quality diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    depth_collapse_curve,
    edge_reliability_quality,
    mad_gap,
    mean_pairwise_distance,
    node_reliability_quality,
)
from repro.core import node_reliability
from repro.errors import ShapeError
from repro.models import GCN
from repro.models.base import softmax_rows
from repro.training import Trainer, make_rng


class TestOversmoothingMetrics:
    def test_collapsed_embeddings_zero_distance(self):
        embeddings = np.ones((50, 8))
        assert mean_pairwise_distance(embeddings) == pytest.approx(0.0)

    def test_spread_embeddings_positive_distance(self, rng):
        embeddings = rng.normal(size=(50, 8))
        assert mean_pairwise_distance(embeddings) > 1.0

    def test_distance_shape_validation(self):
        with pytest.raises(ShapeError):
            mean_pairwise_distance(np.ones(10))

    def test_mad_gap_positive_for_community_structure(self, tiny_graph):
        # Embeddings = one-hot community indicator → neighbors nearly always
        # same community → positive gap.
        embeddings = np.zeros((tiny_graph.num_nodes, 2))
        embeddings[np.arange(tiny_graph.num_nodes), tiny_graph.labels] = 1.0
        assert mad_gap(tiny_graph, embeddings) > 0.1

    def test_mad_gap_zero_for_constant_embeddings(self, tiny_graph):
        embeddings = np.ones((tiny_graph.num_nodes, 4))
        assert mad_gap(tiny_graph, embeddings) == pytest.approx(0.0, abs=1e-9)

    def test_depth_collapse_curve_structure(self, tiny_graph):
        curve = depth_collapse_curve(tiny_graph, depths=(2, 4), max_epochs=30)
        assert set(curve) == {2, 4}
        for metrics in curve.values():
            assert {"test_accuracy", "mean_pairwise_distance", "mad_gap"} <= set(metrics)


class TestReliabilityQuality:
    def _setup(self, graph):
        model = GCN(graph.num_features, graph.num_classes, make_rng(0), hidden=8)
        Trainer(max_epochs=60).fit(model, graph)
        probs = softmax_rows(model.predict_logits(graph))
        sets = node_reliability(probs, probs, graph.labels, graph.train_index, p=40.0)
        return probs, sets

    def test_reliable_nodes_are_more_accurate(self, tiny_graph):
        probs, sets = self._setup(tiny_graph)
        quality = node_reliability_quality(sets, probs, tiny_graph.labels)
        assert quality.reliable_precision >= quality.unreliable_precision
        assert quality.separation >= 0.0
        assert 0.0 < quality.reliable_fraction < 1.0
        assert quality.distill_fraction <= quality.reliable_fraction

    def test_node_quality_shape_validation(self, tiny_graph):
        probs, sets = self._setup(tiny_graph)
        with pytest.raises(ShapeError):
            node_reliability_quality(sets, probs[:5], tiny_graph.labels)

    def test_reliable_edges_purer_than_raw(self, tiny_graph):
        probs, sets = self._setup(tiny_graph)
        quality = edge_reliability_quality(tiny_graph, sets, probs.argmax(axis=1))
        assert quality.reliable_edge_same_class_rate >= quality.all_edge_same_class_rate - 0.05
        assert 0.0 <= quality.reliable_edge_fraction <= 1.0
        assert quality.purity_gain == pytest.approx(
            quality.reliable_edge_same_class_rate - quality.all_edge_same_class_rate
        )
