"""Tests for checkpoint/report persistence and the CLI."""

import json

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.evaluation.common import ExperimentReport
from repro.io import load_checkpoint, load_report, save_checkpoint, save_report
from repro.models import GCN
from repro.training import make_rng


class TestCheckpoints:
    def test_roundtrip(self, tiny_graph, tmp_path):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        path = tmp_path / "ckpt" / "model.npz"
        save_checkpoint(model, path)

        clone = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(1), hidden=8)
        load_checkpoint(clone, path)
        np.testing.assert_allclose(
            model.predict_logits(tiny_graph), clone.predict_logits(tiny_graph)
        )

    def test_wrong_architecture_rejected(self, tiny_graph, tmp_path):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        other = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=16)
        with pytest.raises(ValueError):
            load_checkpoint(other, path)


class TestReports:
    def test_roundtrip_with_nan(self, tmp_path):
        report = ExperimentReport(
            experiment="demo",
            rows=[{"method": "x", "value": 0.5, "paper": float("nan")}],
            notes="hello",
        )
        path = tmp_path / "r.json"
        save_report(report, path)
        loaded = load_report(path)
        assert loaded.experiment == "demo"
        assert loaded.notes == "hello"
        assert loaded.rows[0]["value"] == 0.5
        assert np.isnan(loaded.rows[0]["paper"])

    def test_numpy_scalars_serialized(self, tmp_path):
        report = ExperimentReport(
            experiment="np", rows=[{"a": np.int64(3), "b": np.float64(0.25)}]
        )
        path = tmp_path / "np.json"
        save_report(report, path)
        payload = json.loads(path.read_text())
        assert payload["rows"][0] == {"a": 3, "b": 0.25}


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cora" in out and "nell" in out

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_run_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "fig1.json"
        code = main([
            "run", "fig1",
            "--scale", "0.1", "--seeds", "0", "--base-models", "2",
            "--max-epochs", "15", "--hidden", "8",
            "--out", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()
        loaded = load_report(out_path)
        assert loaded.rows
        assert "Figure 1" in capsys.readouterr().out
