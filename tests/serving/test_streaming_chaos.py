"""Concurrency + chaos battery for streaming serving.

Clients hammer ``predict_many`` through a :class:`MicroBatcher` while
deltas land and a :class:`BackgroundRefresher` races them.  The
invariants under fire:

* **no torn reads** — every response is bitwise equal to some
  *committed* graph version's table rows (precomputed reference engines,
  one per version), never a mixture of two versions;
* **attribution** — ``predict_many_versioned`` returns a version, and
  the rows match *that* version's reference exactly;
* **fault degradation** — a ``serving:refresh`` crash in the refresher
  thread leaves the engine lazily consistent and never wedges the
  batching loop.

The delta sequence is deterministic and all queried node ids stay below
the initial node count, so every (version, node) pair has a well-defined
reference row.
"""

import threading
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import GraphDelta, apply_delta
from repro.serving import (
    BackgroundRefresher,
    MicroBatcher,
    PredictionEngine,
)
from repro.testing.faults import FaultPlan, inject


def edge_pairs(graph):
    coo = sp.triu(graph.adjacency, k=1).tocoo()
    return list(zip(coo.row.tolist(), coo.col.tolist()))


@pytest.fixture(scope="module")
def delta_sequence(tiny_graph):
    """Six deterministic deltas: removals, re-adds, and node appends."""
    pairs = edge_pairs(tiny_graph)
    victims = [pairs[2], pairs[9], pairs[21]]
    n = tiny_graph.num_nodes
    features = np.full((1, tiny_graph.num_features), 0.25)
    return [
        GraphDelta(removed_edges=[victims[0]]),
        GraphDelta(removed_edges=[victims[1], victims[2]]),
        GraphDelta(added_edges=[victims[0]]),
        GraphDelta(added_edges=[[5, n]], new_features=features),
        GraphDelta(removed_edges=[pairs[30]]),
        GraphDelta(added_edges=[victims[1]]),
    ]


@pytest.fixture(scope="module")
def reference_tables(gcn_artifact_path, tiny_graph, delta_sequence):
    """Per-version ground truth: the streaming table at each version."""
    tables = []
    graph = tiny_graph
    engine = PredictionEngine(gcn_artifact_path, graph, streaming=True)
    tables.append(engine.logits_table().copy())
    for delta in delta_sequence:
        graph = apply_delta(graph, delta)
        fresh = PredictionEngine(
            gcn_artifact_path, graph, streaming=True, verify_graph=False
        )
        tables.append(fresh.logits_table().copy())
    return tables


class TestConcurrentDeltasAndQueries:
    def run_storm(
        self,
        gcn_artifact_path,
        tiny_graph,
        delta_sequence,
        reference_tables,
        *,
        use_refresher,
        fault_plan=None,
    ):
        engine = PredictionEngine(gcn_artifact_path, tiny_graph, streaming=True)
        engine.logits_table()
        num_nodes = tiny_graph.num_nodes  # queried ids valid at every version
        rng = np.random.default_rng(0)
        violations = []
        stop = threading.Event()

        def client(worker: int):
            local = np.random.default_rng(worker)
            while not stop.is_set():
                nodes = local.integers(0, num_nodes, size=3)
                rows, version = engine.predict_many_versioned([nodes])
                expected = reference_tables[version][nodes]
                if not np.array_equal(rows[0], expected):
                    violations.append(
                        (worker, version, nodes.tolist())
                    )  # pragma: no cover - failure path
                    return

        def run():
            threads = [
                threading.Thread(target=client, args=(w,), daemon=True)
                for w in range(4)
            ]
            for thread in threads:
                thread.start()
            try:
                for delta in delta_sequence:
                    engine.apply_delta(delta)
                    time.sleep(0.01)
                time.sleep(0.05)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)

        refresher_ctx = (
            BackgroundRefresher(engine, interval_s=0.005)
            if use_refresher
            else None
        )
        if fault_plan is not None:
            with inject(fault_plan):
                if refresher_ctx is not None:
                    with refresher_ctx:
                        run()
                else:
                    run()
        elif refresher_ctx is not None:
            with refresher_ctx:
                run()
        else:
            run()
        return engine, violations

    def test_no_torn_reads_lazy_only(
        self, gcn_artifact_path, tiny_graph, delta_sequence, reference_tables
    ):
        engine, violations = self.run_storm(
            gcn_artifact_path,
            tiny_graph,
            delta_sequence,
            reference_tables,
            use_refresher=False,
        )
        assert not violations, f"torn/unattributable reads: {violations[:5]}"
        assert engine.version == len(delta_sequence)

    def test_no_torn_reads_with_background_refresher(
        self, gcn_artifact_path, tiny_graph, delta_sequence, reference_tables
    ):
        engine, violations = self.run_storm(
            gcn_artifact_path,
            tiny_graph,
            delta_sequence,
            reference_tables,
            use_refresher=True,
        )
        assert not violations, f"torn/unattributable reads: {violations[:5]}"
        # Final state equals the last version's reference everywhere.
        final = reference_tables[-1]
        np.testing.assert_array_equal(
            engine.predict_nodes(np.arange(final.shape[0])), final
        )

    def test_refresher_crashes_degrade_to_lazy(
        self, gcn_artifact_path, tiny_graph, delta_sequence, reference_tables
    ):
        """Every refresh cycle faults; clients still only ever see valid
        versioned rows, and the engine ends consistent via lazy refresh."""
        plan = FaultPlan().fail("serving:refresh", at=None)
        engine, violations = self.run_storm(
            gcn_artifact_path,
            tiny_graph,
            delta_sequence,
            reference_tables,
            use_refresher=True,
            fault_plan=plan,
        )
        assert not violations, f"torn/unattributable reads: {violations[:5]}"
        assert plan.fired("serving:refresh") >= 1
        assert engine.metrics.counter("refresh_errors_total") >= 1
        final = reference_tables[-1]
        np.testing.assert_array_equal(
            engine.predict_nodes(np.arange(final.shape[0])), final
        )


class TestBatcherUnderDeltas:
    def test_microbatcher_clients_with_concurrent_deltas(
        self, gcn_artifact_path, tiny_graph, delta_sequence, reference_tables
    ):
        """The batching loop coalesces requests while deltas land; every
        batched response must match the pre- or post-delta reference for
        its nodes (the engine versions the whole batch atomically)."""
        engine = PredictionEngine(gcn_artifact_path, tiny_graph, streaming=True)
        engine.logits_table()
        num_nodes = tiny_graph.num_nodes

        def batch_fn(payloads):
            results, version = engine.predict_many_versioned(payloads)
            return [(rows, version) for rows in results]

        with MicroBatcher(batch_fn, max_batch_size=8, max_wait_s=0.001) as batcher:
            with BackgroundRefresher(engine, interval_s=0.005):
                futures = []
                rng = np.random.default_rng(7)
                for i, delta in enumerate(delta_sequence):
                    for _ in range(10):
                        nodes = rng.integers(0, num_nodes, size=2)
                        futures.append((nodes, batcher.submit(nodes)))
                    engine.apply_delta(delta)
                for nodes, future in futures:
                    rows, version = future.result(timeout=10)
                    expected = reference_tables[version][nodes]
                    assert np.array_equal(rows, expected), (
                        f"response for nodes {nodes} not attributable to "
                        f"version {version}"
                    )

    def test_faulted_refresher_never_wedges_batching(
        self, gcn_artifact_path, tiny_graph, delta_sequence
    ):
        """serving:refresh faults must not leak into request futures or
        stall the batcher: every submitted request completes."""
        engine = PredictionEngine(gcn_artifact_path, tiny_graph, streaming=True)
        plan = FaultPlan().fail("serving:refresh", at=None)
        answered = 0
        with inject(plan):
            with MicroBatcher(
                engine.predict_many, max_batch_size=4, max_wait_s=0.001
            ) as batcher:
                with BackgroundRefresher(engine, interval_s=0.002):
                    futures = []
                    for delta in delta_sequence:
                        engine.apply_delta(delta)
                        futures.extend(
                            batcher.submit([node]) for node in (0, 1, 2, 3)
                        )
                    for future in futures:
                        rows = future.result(timeout=10)
                        assert rows.shape[0] == 1 and np.isfinite(rows).all()
                        answered += 1
        assert answered == 4 * len(delta_sequence)
        assert plan.fired("serving:refresh") >= 1
        # The engine is still healthy after the storm of failed cycles.
        assert np.isfinite(engine.logits_table()).all()
