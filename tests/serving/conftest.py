"""Shared serving fixtures: small artifacts over the tiny two-block graph.

Weights are untrained — serving correctness (round-trips, batching
parity, HTTP plumbing) is independent of accuracy, and eval-mode
forwards are deterministic either way.
"""

import numpy as np
import pytest

from repro.core.ensemble import EnsembleModel
from repro.models.base import softmax_rows
from repro.models.gcn import GCN
from repro.serving.artifacts import (
    ModelSpec,
    export_ensemble_artifact,
    export_model_artifact,
)
from repro.serving.engine import PredictionEngine

GCN_OPTIONS = {"hidden": 8}
MEMBER_WEIGHTS = (0.5, 0.3, 0.2)


def build_gcn(graph, seed: int = 3):
    model = GCN(
        graph.num_features, graph.num_classes, np.random.default_rng(seed), **GCN_OPTIONS
    )
    model.eval()
    return model


@pytest.fixture(scope="session")
def gcn_spec():
    return ModelSpec("gcn", dict(GCN_OPTIONS))


@pytest.fixture(scope="session")
def gcn_model(tiny_graph):
    return build_gcn(tiny_graph)


@pytest.fixture(scope="session")
def gcn_artifact_path(tmp_path_factory, tiny_graph, gcn_model, gcn_spec):
    path = tmp_path_factory.mktemp("artifacts") / "gcn.rddart"
    return export_model_artifact(path, gcn_model, gcn_spec, tiny_graph)


@pytest.fixture(scope="session")
def engine(gcn_artifact_path, tiny_graph):
    return PredictionEngine(gcn_artifact_path, tiny_graph)


@pytest.fixture(scope="session")
def ensemble_members(tiny_graph):
    """(model, spec, logits) triples standing in for trained base models."""
    members = []
    for seed in (10, 11, 12):
        model = build_gcn(tiny_graph, seed=seed)
        members.append((model, ModelSpec("gcn", dict(GCN_OPTIONS)), model.predict_logits(tiny_graph)))
    return members


@pytest.fixture(scope="session")
def ensemble(ensemble_members):
    teacher = EnsembleModel()
    for (_, _, logits), weight in zip(ensemble_members, MEMBER_WEIGHTS):
        teacher.add(softmax_rows(logits), logits, weight)
    return teacher


@pytest.fixture(scope="session")
def ensemble_artifact_path(tmp_path_factory, tiny_graph, ensemble, ensemble_members):
    path = tmp_path_factory.mktemp("artifacts") / "ensemble.rddart"
    members = [(spec, model.state_dict()) for model, spec, _ in ensemble_members]
    return export_ensemble_artifact(path, ensemble, tiny_graph, members=members)
