"""Artifact format: export → load round-trips, dtype preservation, rejection.

The satellite contract under test: ``Module.state_dict()`` and
``EnsembleModel.state()`` round-trip through the artifact format
bitwise — including ``float32`` artifacts loading back as ``float32``
parameters — and the loader refuses wrong graphs, corrupted files, and
foreign checkpoints.
"""

import numpy as np
import pytest

from repro.core.ensemble import EnsembleModel
from repro.serving.artifacts import (
    ARTIFACT_KIND,
    ArtifactError,
    ModelSpec,
    export_ensemble_artifact,
    export_model_artifact,
    graph_fingerprint,
    load_artifact,
    model_kinds,
    register_model_kind,
)
from repro.tensor.tensor import default_dtype
from repro.testing.faults import flip_byte, truncate_file
from repro.training.checkpoint import CheckpointError, write_checkpoint

from tests.serving.conftest import GCN_OPTIONS, MEMBER_WEIGHTS, build_gcn


class TestSingleModelRoundTrip:
    def test_state_dict_round_trips_bitwise(self, gcn_artifact_path, gcn_model):
        artifact = load_artifact(gcn_artifact_path)
        original = gcn_model.state_dict()
        assert set(artifact.state_dict) == set(original)
        for name, value in original.items():
            stored = artifact.state_dict[name]
            assert stored.dtype == value.dtype
            assert np.array_equal(stored, value)

    def test_rebuilt_model_predicts_bitwise(self, gcn_artifact_path, gcn_model, tiny_graph):
        artifact = load_artifact(gcn_artifact_path)
        rebuilt = artifact.build_model(tiny_graph)
        assert np.array_equal(
            rebuilt.predict_logits(tiny_graph), gcn_model.predict_logits(tiny_graph)
        )

    def test_spec_and_identity_round_trip(self, gcn_artifact_path, tiny_graph):
        artifact = load_artifact(gcn_artifact_path)
        assert artifact.spec == ModelSpec("gcn", dict(GCN_OPTIONS))
        assert not artifact.is_ensemble
        assert artifact.model_kind == "gcn"
        assert artifact.graph_fingerprint == graph_fingerprint(tiny_graph)

    def test_normalized_adjacency_cache_matches_graph(self, gcn_artifact_path, tiny_graph):
        artifact = load_artifact(gcn_artifact_path)
        shipped = artifact.normalized_adjacency()
        computed = tiny_graph.normalized_adjacency()
        assert (shipped != computed).nnz == 0

    def test_float32_artifact_loads_back_float32_bitwise(self, tiny_graph, tmp_path):
        with default_dtype(np.float32):
            model = build_gcn(tiny_graph)
        state = model.state_dict()
        assert all(v.dtype == np.float32 for v in state.values())

        path = export_model_artifact(
            tmp_path / "f32.rddart", model, ModelSpec("gcn", dict(GCN_OPTIONS)), tiny_graph
        )
        artifact = load_artifact(path)
        assert artifact.dtype == np.float32
        for name, value in state.items():
            assert artifact.state_dict[name].dtype == np.float32
            assert np.array_equal(artifact.state_dict[name], value)

        rebuilt = artifact.build_model(tiny_graph)
        for name, value in rebuilt.state_dict().items():
            assert value.dtype == np.float32
            assert np.array_equal(value, state[name])
        logits = rebuilt.predict_logits(tiny_graph.astype(np.float32))
        assert logits.dtype == np.float32

    def test_dataset_and_metadata_round_trip(self, tiny_graph, gcn_model, gcn_spec, tmp_path):
        dataset = {"name": "cora", "kwargs": {"seed": 0, "scale": 0.1}}
        path = export_model_artifact(
            tmp_path / "meta.rddart",
            gcn_model,
            gcn_spec,
            tiny_graph,
            dataset=dataset,
            metadata={"val_accuracy": 0.5},
        )
        artifact = load_artifact(path)
        assert artifact.dataset == dataset
        assert artifact.metadata == {"val_accuracy": 0.5}


class TestEnsembleRoundTrip:
    def test_ensemble_state_round_trips_bitwise(self, ensemble_artifact_path, ensemble):
        artifact = load_artifact(ensemble_artifact_path)
        assert artifact.is_ensemble
        assert artifact.model_kind == f"ensemble[{len(MEMBER_WEIGHTS)}]"
        rebuilt = artifact.ensemble()
        assert isinstance(rebuilt, EnsembleModel)
        assert np.array_equal(rebuilt.weights, ensemble.weights)
        assert np.array_equal(rebuilt.embeddings(), ensemble.embeddings())
        assert np.array_equal(rebuilt.probs(), ensemble.probs())

    def test_member_models_rebuild_bitwise(
        self, ensemble_artifact_path, ensemble_members, tiny_graph
    ):
        artifact = load_artifact(ensemble_artifact_path)
        rebuilt = artifact.member_models(tiny_graph)
        assert len(rebuilt) == len(ensemble_members)
        for model, (_, _, logits) in zip(rebuilt, ensemble_members):
            assert np.array_equal(model.predict_logits(tiny_graph), logits)

    def test_tables_only_artifact_refuses_member_models(self, tiny_graph, ensemble, tmp_path):
        path = export_ensemble_artifact(tmp_path / "tables.rddart", ensemble, tiny_graph)
        artifact = load_artifact(path)
        assert artifact.members is None
        assert np.array_equal(artifact.ensemble().embeddings(), ensemble.embeddings())
        with pytest.raises(ArtifactError, match="transductive prediction tables"):
            artifact.member_models(tiny_graph)

    def test_member_count_mismatch_rejected_at_export(
        self, tiny_graph, ensemble, ensemble_members, tmp_path
    ):
        members = [(spec, model.state_dict()) for model, spec, _ in ensemble_members[:1]]
        with pytest.raises(ArtifactError, match="member specs"):
            export_ensemble_artifact(tmp_path / "x.rddart", ensemble, tiny_graph, members=members)

    def test_kind_accessors_enforce_artifact_flavor(
        self, gcn_artifact_path, ensemble_artifact_path, tiny_graph
    ):
        single = load_artifact(gcn_artifact_path)
        teacher = load_artifact(ensemble_artifact_path)
        with pytest.raises(ArtifactError, match="ensemble artifact"):
            teacher.build_model(tiny_graph)
        with pytest.raises(ArtifactError, match="single-model artifact"):
            single.ensemble()
        with pytest.raises(ArtifactError, match="single-model artifact"):
            single.member_models(tiny_graph)


class TestRejection:
    def test_wrong_graph_rejected(self, gcn_artifact_path, small_citation):
        artifact = load_artifact(gcn_artifact_path)
        with pytest.raises(ArtifactError, match="does not match"):
            artifact.check_graph(small_citation)

    def test_graph_name_is_not_identity(self, gcn_artifact_path, tiny_graph):
        from repro.graph.graph import Graph

        renamed = Graph(
            tiny_graph.adjacency,
            tiny_graph.features,
            tiny_graph.labels,
            tiny_graph.train_index,
            tiny_graph.val_index,
            tiny_graph.test_index,
            name="renamed",
        )
        load_artifact(gcn_artifact_path).check_graph(renamed)  # must not raise

    def test_unknown_kind_rejected_at_export(self, tiny_graph, gcn_model, tmp_path):
        with pytest.raises(ArtifactError, match="unknown model kind"):
            export_model_artifact(
                tmp_path / "x.rddart", gcn_model, ModelSpec("no-such-model"), tiny_graph
            )

    def test_flipped_byte_rejected(self, gcn_artifact_path, tmp_path):
        path = tmp_path / "rot.rddart"
        path.write_bytes(gcn_artifact_path.read_bytes())
        flip_byte(path)
        with pytest.raises(CheckpointError):
            load_artifact(path)

    def test_truncated_file_rejected(self, gcn_artifact_path, tmp_path):
        path = tmp_path / "cut.rddart"
        path.write_bytes(gcn_artifact_path.read_bytes())
        truncate_file(path)
        with pytest.raises(CheckpointError):
            load_artifact(path)

    def test_foreign_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "foreign.ckpt"
        write_checkpoint(path, {"kind": "not-an-artifact"})
        with pytest.raises(ArtifactError, match="not a model artifact"):
            load_artifact(path)

    def test_future_artifact_version_rejected(self, gcn_artifact_path, tmp_path):
        from repro.training.checkpoint import read_checkpoint

        payload = read_checkpoint(gcn_artifact_path)
        assert payload["kind"] == ARTIFACT_KIND
        payload["artifact_version"] = 99
        path = tmp_path / "future.rddart"
        write_checkpoint(path, payload)
        with pytest.raises(ArtifactError, match="artifact version"):
            load_artifact(path)


class TestRegistry:
    def test_builtin_kinds_present(self):
        assert {"gcn", "mlp", "sgc"} <= set(model_kinds())

    def test_registered_kind_round_trips(self, tiny_graph, tmp_path):
        from repro.models.gcn import GCN

        def tiny_gcn(num_features, num_classes, rng, **options):
            return GCN(num_features, num_classes, rng, hidden=4, **options)

        register_model_kind("tiny-gcn", tiny_gcn)
        model = tiny_gcn(
            tiny_graph.num_features, tiny_graph.num_classes, np.random.default_rng(0)
        )
        model.eval()
        path = export_model_artifact(
            tmp_path / "tiny.rddart", model, ModelSpec("tiny-gcn"), tiny_graph
        )
        rebuilt = load_artifact(path).build_model(tiny_graph)
        assert np.array_equal(
            rebuilt.predict_logits(tiny_graph), model.predict_logits(tiny_graph)
        )
