"""Replica tier: shared table, fan-out parity, healing, reload, admission.

The contract under test is the module docstring of
:mod:`repro.serving.frontend`: N worker processes attached to **one**
shared-memory logits table answer bitwise-identically to a single
in-process engine; a full admission queue sheds with
:class:`Overloaded` instead of queueing without bound; dead or wedged
replicas are re-forked and the in-flight batch retried; and a rolling
reload swaps artifacts with zero downtime.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.serving.artifacts import ModelSpec, export_model_artifact
from repro.serving.batching import BatcherClosed, Overloaded
from repro.serving.engine import PredictionEngine, ServingError
from repro.serving.frontend import ReplicaFrontend
from repro.serving.metrics import ServingMetrics, merge_counter_snapshots
from repro.serving.replica import SharedLogitsTable
from repro.serving.server import PredictionServer
from repro.testing.faults import FaultPlan, inject

from .conftest import build_gcn

NUM_NODES = 60  # tiny_graph size; strategies must stay in range

node_request = st.lists(st.integers(min_value=0, max_value=NUM_NODES - 1), min_size=1, max_size=6)
request_stream = st.lists(node_request, min_size=1, max_size=16)

relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def frontend(gcn_artifact_path, tiny_graph):
    """A 2-replica tier over the session artifact, reused across tests."""
    with ReplicaFrontend(
        gcn_artifact_path, tiny_graph, replicas=2, max_wait_s=0.001, reply_timeout_s=15.0
    ) as tier:
        yield tier


def _export_v2(tmp_path, tiny_graph):
    """A second (differently seeded) artifact to swap in."""
    model = build_gcn(tiny_graph, seed=11)
    return export_model_artifact(
        tmp_path / "v2.rddart", model, ModelSpec("gcn", {"hidden": 8}), tiny_graph
    )


# ----------------------------------------------------------------------
# Shared-memory table
# ----------------------------------------------------------------------
class TestSharedLogitsTable:
    def test_attach_sees_the_creators_bytes_readonly(self):
        table = np.arange(24, dtype=np.float64).reshape(6, 4)
        owner = SharedLogitsTable.create(table)
        try:
            attached = SharedLogitsTable.attach(*owner.descriptor)
            assert np.array_equal(attached.table, table)
            assert not attached.table.flags.writeable
            assert not owner.table.flags.writeable
            with pytest.raises(ValueError):
                attached.table[0, 0] = 1.0
            attached.close()
            attached.unlink()  # non-owner: must be a no-op
            assert np.array_equal(owner.table, table)  # segment survived
        finally:
            owner.close()
            owner.unlink()

    def test_descriptor_roundtrips_shape_and_dtype(self):
        table = np.ones((3, 5), dtype=np.float32)
        owner = SharedLogitsTable.create(table)
        try:
            name, shape, dtype = owner.descriptor
            assert name == owner.name
            assert shape == (3, 5) and dtype == "float32"
        finally:
            owner.close()
            owner.unlink()

    def test_unlink_destroys_the_segment(self):
        owner = SharedLogitsTable.create(np.zeros((2, 2)))
        descriptor = owner.descriptor
        owner.close()
        owner.unlink()
        with pytest.raises(FileNotFoundError):
            SharedLogitsTable.attach(*descriptor)
        owner.unlink()  # idempotent


# ----------------------------------------------------------------------
# Fan-out parity
# ----------------------------------------------------------------------
class TestParity:
    @relaxed
    @given(stream=request_stream)
    def test_fanout_is_bitwise_equal_to_single_process(self, frontend, engine, stream):
        futures = [frontend.submit(("nodes", nodes)) for nodes in stream]
        for nodes, future in zip(stream, futures):
            assert np.array_equal(future.result(timeout=30), engine.predict_nodes(nodes))

    def test_inductive_parity(self, frontend, engine, tiny_graph):
        features = np.asarray(tiny_graph.features[7]).ravel()
        for neighbors in ([3, 4], [0, 1, 2], [50]):
            assert np.array_equal(
                frontend.predict_inductive(features, neighbors, timeout=30),
                engine.predict_inductive(features, neighbors),
            )

    def test_concurrent_clients_get_their_own_results(self, frontend, engine):
        rng = np.random.default_rng(9)
        streams = [
            [rng.integers(0, NUM_NODES, size=4).tolist() for _ in range(15)]
            for _ in range(6)
        ]
        expected = [[engine.predict_nodes(nodes) for nodes in stream] for stream in streams]
        mismatches = []

        def client(index):
            for nodes, reference in zip(streams[index], expected[index]):
                if not np.array_equal(
                    frontend.predict_nodes(nodes, timeout=30), reference
                ):
                    mismatches.append(index)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not mismatches

    def test_ping_reports_every_replica(self, frontend):
        infos = frontend.ping()
        assert len(infos) == 2
        assert all(info["alive"] for info in infos)
        assert {info["replica"] for info in infos} == {0, 1}


# ----------------------------------------------------------------------
# Admission control (saturation)
# ----------------------------------------------------------------------
class TestAdmission:
    def test_saturation_sheds_overloaded_and_accepted_requests_complete(
        self, gcn_artifact_path, tiny_graph, engine
    ):
        # Wedge the single dispatcher at the serving:request fault point,
        # fill the tiny admission queue, and assert the valve: excess
        # submits raise Overloaded immediately, every accepted request
        # still answers (bitwise-correctly) once the wedge clears, and
        # the accepted tail is bounded by queue depth — not by how much
        # load was offered.
        entered, release = threading.Event(), threading.Event()

        def block(context):
            entered.set()
            release.wait(timeout=30)

        metrics = ServingMetrics()
        plan = FaultPlan().fail("serving:request", at=0, action=block)
        with ReplicaFrontend(
            gcn_artifact_path, tiny_graph, replicas=1, max_queue=2,
            max_batch_size=1, max_wait_s=0.0, metrics=metrics,
        ) as frontend:
            with inject(plan):
                first = frontend.submit(("nodes", [0]))
                assert entered.wait(timeout=10), "dispatcher never reached the wedge"
                accepted = [frontend.submit(("nodes", [i + 1])) for i in range(2)]
                shed = 0
                for i in range(8):
                    try:
                        accepted.append(frontend.submit(("nodes", [i + 10])))
                    except Overloaded as error:
                        shed += 1
                        assert error.retry_after_s > 0
                assert shed > 0, "queue bound never engaged"
                started = time.perf_counter()
                release.set()
                assert np.array_equal(first.result(timeout=30), engine.predict_nodes([0]))
                for future in accepted:
                    future.result(timeout=30)
                drain = time.perf_counter() - started
            assert drain < 10.0, f"accepted backlog took {drain:.1f}s to drain"
        assert metrics.counter("shed_total") == shed
        assert metrics.counter("errors_total") == 0

    def test_closed_frontend_refuses_submissions(self, gcn_artifact_path, tiny_graph):
        frontend = ReplicaFrontend(gcn_artifact_path, tiny_graph, replicas=1)
        frontend.close()
        with pytest.raises(BatcherClosed):
            frontend.submit(("nodes", [0]))
        frontend.close()  # idempotent

    def test_streaming_engines_are_rejected(self, gcn_artifact_path, tiny_graph):
        with pytest.raises(ServingError, match="single-process"):
            ReplicaFrontend(
                gcn_artifact_path, tiny_graph, replicas=1,
                engine_kwargs={"streaming": True},
            )

    @pytest.mark.parametrize(
        "kwargs", [{"replicas": 0}, {"max_queue": 0}], ids=["replicas", "queue"]
    )
    def test_invalid_knobs_rejected(self, gcn_artifact_path, tiny_graph, kwargs):
        with pytest.raises(ReproError):
            ReplicaFrontend(gcn_artifact_path, tiny_graph, **kwargs)


# ----------------------------------------------------------------------
# Self-healing
# ----------------------------------------------------------------------
class TestSelfHealing:
    def test_killed_replica_is_revived_and_the_request_retried(
        self, gcn_artifact_path, tiny_graph, engine
    ):
        metrics = ServingMetrics()
        with ReplicaFrontend(
            gcn_artifact_path, tiny_graph, replicas=1, max_wait_s=0.0, metrics=metrics
        ) as frontend:
            victim = frontend._replicas[0].process
            victim.kill()
            victim.join(timeout=10)
            assert not victim.is_alive()
            # The next request finds the corpse, re-forks, and retries —
            # the caller sees only a correct answer.
            assert np.array_equal(
                frontend.predict_nodes([1, 2], timeout=60), engine.predict_nodes([1, 2])
            )
            assert frontend._replicas[0].process.pid != victim.pid
        assert metrics.counter("replica_restarts_total") >= 1
        assert metrics.counter("errors_total") == 0

    def test_wedged_replica_times_out_and_is_replaced(
        self, gcn_artifact_path, tiny_graph, engine
    ):
        # SIGSTOP freezes the worker mid-service: alive but silent — the
        # failure mode reply_timeout_s exists for.  The dispatcher must
        # declare it wedged, re-fork, and retry on the fresh process.
        metrics = ServingMetrics()
        with ReplicaFrontend(
            gcn_artifact_path, tiny_graph, replicas=1, max_wait_s=0.0,
            reply_timeout_s=1.0, metrics=metrics,
        ) as frontend:
            wedged_pid = frontend._replicas[0].process.pid
            os.kill(wedged_pid, signal.SIGSTOP)
            try:
                assert np.array_equal(
                    frontend.predict_nodes([5], timeout=60), engine.predict_nodes([5])
                )
                assert frontend._replicas[0].process.pid != wedged_pid
            finally:
                try:
                    os.kill(wedged_pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
        assert metrics.counter("replica_restarts_total") >= 1


# ----------------------------------------------------------------------
# Rolling reload
# ----------------------------------------------------------------------
class TestRollingReload:
    def test_reload_swaps_artifacts_with_zero_downtime(
        self, gcn_artifact_path, tiny_graph, engine, tmp_path
    ):
        v2_path = _export_v2(tmp_path, tiny_graph)
        engine_v2 = PredictionEngine(v2_path, tiny_graph)
        probe = [0, 13, 31]
        v1_answer = engine.predict_nodes(probe)
        v2_answer = engine_v2.predict_nodes(probe)
        assert not np.array_equal(v1_answer, v2_answer), "v2 must be distinguishable"

        with ReplicaFrontend(
            gcn_artifact_path, tiny_graph, replicas=2, max_wait_s=0.001
        ) as frontend:
            stop = threading.Event()
            bad, served = [], [0]

            def hammer():
                while not stop.is_set():
                    # During the swap either version may answer — but
                    # never an error, and never a torn mixture of the
                    # two tables.
                    try:
                        logits = frontend.predict_nodes(probe, timeout=30)
                    except Exception as error:  # noqa: BLE001 - asserted below
                        bad.append(error)
                        return
                    if not (np.array_equal(logits, v1_answer) or np.array_equal(logits, v2_answer)):
                        bad.append(logits)
                    served[0] += 1

            clients = [threading.Thread(target=hammer) for _ in range(3)]
            for client in clients:
                client.start()
            try:
                version = frontend.reload(v2_path)
            finally:
                stop.set()
                for client in clients:
                    client.join(timeout=30)
            assert version == 1 and frontend.artifact_version == 1
            assert served[0] > 0 and not bad
            # Post-swap the whole tier answers from v2, repeatedly.
            for _ in range(8):
                assert np.array_equal(frontend.predict_nodes(probe, timeout=30), v2_answer)
            assert all(info["artifact_version"] == 1 for info in frontend.ping())
            assert frontend.metrics.counter("reloads_total") == 1

    def test_failed_reload_keeps_the_old_artifact_serving(
        self, gcn_artifact_path, tiny_graph, engine, tmp_path
    ):
        with ReplicaFrontend(
            gcn_artifact_path, tiny_graph, replicas=1, max_wait_s=0.0
        ) as frontend:
            with pytest.raises(ReproError):
                frontend.reload(tmp_path / "missing.rddart")
            assert frontend.artifact_version == 0
            assert np.array_equal(
                frontend.predict_nodes([2, 3], timeout=30), engine.predict_nodes([2, 3])
            )


# ----------------------------------------------------------------------
# HTTP end-to-end (frontend mode)
# ----------------------------------------------------------------------
def _call(url: str, body=None, timeout: float = 15.0):
    """(status, payload, headers) for a GET or JSON POST; 4xx/5xx included."""
    if body is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url,
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


class TestHTTPFrontend:
    def test_frontend_server_end_to_end(
        self, gcn_artifact_path, tiny_graph, engine, tmp_path
    ):
        v2_path = _export_v2(tmp_path, tiny_graph)
        engine_v2 = PredictionEngine(v2_path, tiny_graph)
        frontend = ReplicaFrontend(gcn_artifact_path, tiny_graph, replicas=2, max_wait_s=0.001)
        with PredictionServer(frontend=frontend, port=0).start() as server:
            status, health, _ = _call(f"{server.url}/healthz")
            assert status == 200
            assert health["replicas"] == 2 and health["artifact_version"] == 0
            assert health["model"] == "gcn" and health["batching"] is False

            nodes = [0, 17, 59]
            status, payload, _ = _call(f"{server.url}/predict", {"nodes": nodes})
            assert status == 200
            assert payload["labels"] == engine.predict_nodes(nodes).argmax(axis=1).tolist()

            features = np.asarray(tiny_graph.features[4]).ravel()
            status, payload, _ = _call(
                f"{server.url}/predict", {"features": features.tolist(), "neighbors": [4, 9]}
            )
            assert status == 200
            expected = engine.predict_inductive(features, [4, 9])
            assert payload["label"] == int(np.argmax(expected))

            status, payload, _ = _call(
                f"{server.url}/admin/reload", {"artifact": str(v2_path)}
            )
            assert status == 200
            assert payload == {"status": "reloaded", "artifact_version": 1}
            status, payload, _ = _call(f"{server.url}/predict", {"nodes": nodes})
            assert status == 200
            assert payload["labels"] == engine_v2.predict_nodes(nodes).argmax(axis=1).tolist()

            status, snapshot, _ = _call(f"{server.url}/metrics")
            assert snapshot["counters"]["requests_total"] >= 3
            assert snapshot["counters"]["reloads_total"] == 1

    def test_saturated_tier_answers_429_with_retry_after(
        self, gcn_artifact_path, tiny_graph
    ):
        entered, release = threading.Event(), threading.Event()

        def block(context):
            entered.set()
            release.wait(timeout=30)

        plan = FaultPlan().fail("serving:request", at=0, action=block)
        frontend = ReplicaFrontend(
            gcn_artifact_path, tiny_graph, replicas=1, max_queue=1,
            max_batch_size=1, max_wait_s=0.0,
        )
        with PredictionServer(frontend=frontend, port=0).start() as server:
            results = []

            def post():
                results.append(_call(f"{server.url}/predict", {"nodes": [0]}, timeout=30))

            with inject(plan):
                wedged = threading.Thread(target=post)
                wedged.start()
                assert entered.wait(timeout=10)
                queued = threading.Thread(target=post)
                queued.start()
                deadline = time.monotonic() + 10
                while not frontend._admission.full() and time.monotonic() < deadline:
                    time.sleep(0.005)
                assert frontend._admission.full()

                status, payload, headers = _call(f"{server.url}/predict", {"nodes": [1]})
                assert status == 429
                assert "full" in payload["error"]
                assert int(headers["Retry-After"]) >= 1

                release.set()
                wedged.join(timeout=30)
                queued.join(timeout=30)
            assert [status for status, _, _ in results] == [200, 200]
            status, snapshot, _ = _call(f"{server.url}/metrics")
            assert snapshot["counters"]["http_429"] >= 1
            assert snapshot["counters"]["shed_total"] >= 1
            assert snapshot["counters"]["http_200"] >= 2


# ----------------------------------------------------------------------
# Metrics plumbing
# ----------------------------------------------------------------------
def test_merge_counter_snapshots_sums_across_processes():
    merged = merge_counter_snapshots(
        [
            {"counters": {"requests_total": 3, "shed_total": 1}},
            {"counters": {"requests_total": 4, "errors_total": 2}},
            {"counters": {}},
        ]
    )
    assert merged == {"requests_total": 7, "shed_total": 1, "errors_total": 2}
