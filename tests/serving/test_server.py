"""HTTP front end: routes, status codes, metrics, fault survival.

Each test boots a real :class:`PredictionServer` on an ephemeral port and
talks to it over stdlib ``urllib`` — the same path ``scripts/loadgen.py``
and the CI smoke use.  The overload/timeout/disconnect classes pin the
bugfix contract: saturation answers 429 + ``Retry-After`` instead of
queueing without bound, a wedged worker answers 503 instead of hanging
the handler thread forever, and a client dropping mid-response is
counted — never a traceback, never a dead server.
"""

import http.client
import json
import socket
import struct
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving.engine import PredictionEngine
from repro.serving.server import PredictionServer
from repro.testing.faults import FaultPlan, inject


def _call(url: str, body=None, timeout: float = 10.0):
    """(status, payload) for a GET (body=None) or JSON POST; 4xx/5xx included."""
    if body is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url,
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def server(engine):
    with PredictionServer(engine, port=0, max_wait_s=0.001).start() as running:
        yield running


class TestRoutes:
    def test_healthz_reports_identity(self, server, engine):
        status, payload = _call(f"{server.url}/healthz")
        assert status == 200
        assert payload == {
            "status": "ok",
            "model": "gcn",
            "nodes": engine.num_nodes,
            "batching": True,
        }

    def test_predict_nodes_matches_engine(self, server, engine):
        nodes = [0, 17, 59]
        status, payload = _call(f"{server.url}/predict", {"nodes": nodes})
        assert status == 200
        assert payload["nodes"] == nodes
        assert payload["labels"] == engine.predict_nodes(nodes).argmax(axis=1).tolist()

    def test_predict_scalar_node_and_logits(self, server, engine):
        status, payload = _call(
            f"{server.url}/predict", {"nodes": 5, "return_probs": True, "return_logits": True}
        )
        assert status == 200
        assert payload["nodes"] == [5]
        assert np.array_equal(np.asarray(payload["logits"]), engine.predict_nodes([5]))
        assert np.isclose(sum(payload["probs"][0]), 1.0)

    def test_predict_inductive(self, server, engine, tiny_graph):
        features = np.asarray(tiny_graph.features[4]).ravel()
        body = {"features": features.tolist(), "neighbors": [4, 9], "return_probs": True}
        status, payload = _call(f"{server.url}/predict", body)
        assert status == 200
        expected = engine.predict_inductive(features, [4, 9])
        assert payload["label"] == int(np.argmax(expected))
        assert np.isclose(sum(payload["probs"]), 1.0)

    def test_metrics_populate_after_traffic(self, server):
        for _ in range(3):
            assert _call(f"{server.url}/predict", {"nodes": [1, 2]})[0] == 200
        status, snapshot = _call(f"{server.url}/metrics")
        assert status == 200
        assert snapshot["counters"]["requests_total"] >= 3
        assert snapshot["counters"]["http_200"] >= 3
        latency = snapshot["histograms"]["latency_ms"]
        assert latency["count"] >= 3
        assert latency["p50"] > 0.0 and latency["p99"] >= latency["p50"]
        assert snapshot["histograms"]["batch_size"]["count"] >= 1


class TestErrors:
    def test_unknown_paths_404(self, server):
        assert _call(f"{server.url}/nope")[0] == 404
        assert _call(f"{server.url}/nope", {"x": 1})[0] == 404

    def test_invalid_json_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/predict",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "invalid JSON" in json.loads(excinfo.value.read())["error"]

    @pytest.mark.parametrize(
        "body",
        [
            {"wrong": "keys"},
            {"nodes": [10**6]},
            {"nodes": []},
            {"features": [1.0, 2.0]},
            {"features": [1.0, 2.0], "neighbors": [0]},
        ],
        ids=["no-route", "unknown-id", "empty", "no-neighbors", "bad-features"],
    )
    def test_client_errors_400_with_json_error(self, server, body):
        status, payload = _call(f"{server.url}/predict", body)
        assert status == 400
        assert isinstance(payload["error"], str) and payload["error"]

    def test_client_errors_counted(self, server):
        before = _call(f"{server.url}/metrics")[1]["counters"].get("http_client_errors_total", 0)
        _call(f"{server.url}/predict", {"nodes": [10**6]})
        after = _call(f"{server.url}/metrics")[1]["counters"]["http_client_errors_total"]
        assert after == before + 1


class TestFaultSurvival:
    def test_injected_fault_returns_clean_json_and_server_lives(self, engine):
        # A worker-side fault on one request must surface as a clean 500
        # {"error": ...} for that caller only — the batching loop and the
        # server keep answering.
        with PredictionServer(engine, port=0, max_wait_s=0.0).start() as server:
            with inject(FaultPlan().fail("serving:request", key=0)) as plan:
                status, payload = _call(f"{server.url}/predict", {"nodes": [0]})
                assert status == 500
                assert "injected fault" in payload["error"]
                status, payload = _call(f"{server.url}/predict", {"nodes": [0]})
                assert status == 200
                assert payload["labels"] == engine.predict_nodes([0]).argmax(axis=1).tolist()
            assert plan.fired("serving:request") == 1
            snapshot = _call(f"{server.url}/metrics")[1]
            assert snapshot["counters"]["errors_total"] == 1
            assert snapshot["counters"]["http_500"] == 1
            assert snapshot["counters"]["http_200"] >= 1


def _wedge():
    """(plan, entered, release): a serving:request fault whose action
    parks the worker until ``release`` is set — the deterministic stand-in
    for a slow or wedged backend."""
    entered, release = threading.Event(), threading.Event()

    def block(context):
        entered.set()
        release.wait(timeout=30)

    return FaultPlan().fail("serving:request", at=0, action=block), entered, release


class TestOverload:
    def test_full_queue_answers_429_with_retry_after(self, engine):
        # Regression: a saturated server used to queue without bound —
        # every request eventually answered, minutes late.  Now the
        # bounded admission queue sheds the excess immediately.
        plan, entered, release = _wedge()
        with PredictionServer(
            engine, port=0, max_batch_size=1, max_wait_s=0.0, max_queue=1
        ).start() as server:
            statuses = []

            def post(nodes):
                statuses.append(_call(f"{server.url}/predict", {"nodes": nodes})[0])

            with inject(plan):
                wedged = threading.Thread(target=post, args=([0],))
                wedged.start()
                assert entered.wait(timeout=10), "worker never reached the wedge"
                queued = threading.Thread(target=post, args=([1],))
                queued.start()
                deadline = time.monotonic() + 10
                while not server.batcher._queue.full() and time.monotonic() < deadline:
                    time.sleep(0.005)
                assert server.batcher._queue.full()

                request = urllib.request.Request(
                    f"{server.url}/predict",
                    data=json.dumps({"nodes": [2]}).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=10)
                assert excinfo.value.code == 429
                assert int(excinfo.value.headers["Retry-After"]) >= 1
                assert "full" in json.loads(excinfo.value.read())["error"]

                release.set()
                wedged.join(timeout=30)
                queued.join(timeout=30)
            # The in-flight and queued requests were not casualties.
            assert statuses == [200, 200]
            counters = _call(f"{server.url}/metrics")[1]["counters"]
            assert counters["http_429"] >= 1
            assert counters["shed_total"] >= 1

    def test_wedged_worker_answers_503_not_a_hung_request(self, engine):
        # Regression: a request whose worker never answered used to hang
        # its handler thread (and the client) forever.  The deadline now
        # frees both with a clean 503.
        plan, entered, release = _wedge()
        with PredictionServer(
            engine, port=0, max_batch_size=1, max_wait_s=0.0, request_timeout_s=0.3
        ).start() as server:
            try:
                with inject(plan):
                    started = time.monotonic()
                    status, payload = _call(f"{server.url}/predict", {"nodes": [0]})
                    elapsed = time.monotonic() - started
                    assert status == 503
                    assert payload == {"error": "timed out"}
                    assert elapsed < 10.0, f"503 took {elapsed:.1f}s — the deadline did not fire"
            finally:
                release.set()
            assert entered.is_set()
            # The handler thread survived; once the wedge clears the
            # server answers normally again.
            status, payload = _call(f"{server.url}/predict", {"nodes": [3]})
            assert status == 200
            assert payload["labels"] == engine.predict_nodes([3]).argmax(axis=1).tolist()
            counters = _call(f"{server.url}/metrics")[1]["counters"]
            assert counters["http_timeouts_total"] >= 1

    def test_timeout_applies_without_batching_too(self, engine):
        # Batching off routes handler threads to the compute pool; the
        # deadline must hold there as well.  No fault point sits on the
        # direct path, so wedge the engine itself.
        release = threading.Event()

        class SlowEngine:
            def __getattr__(self, name):
                return getattr(engine, name)

            def predict_nodes(self, nodes):
                release.wait(timeout=30)
                return engine.predict_nodes(nodes)

        with PredictionServer(
            SlowEngine(), port=0, batching=False, request_timeout_s=0.3
        ).start() as server:
            try:
                status, payload = _call(f"{server.url}/predict", {"nodes": [0]})
                assert (status, payload) == (503, {"error": "timed out"})
            finally:
                release.set()
            assert _call(f"{server.url}/predict", {"nodes": [1]})[0] == 200


class TestClientDisconnect:
    def test_client_dropping_mid_response_is_counted_not_fatal(self, engine):
        # Regression: a loadgen client timing out and resetting its
        # connection used to leave a BrokenPipe/ConnectionReset traceback
        # in the handler thread.  The wedge holds the response until the
        # client is certainly gone, so the write deterministically hits a
        # dead socket.
        plan, entered, release = _wedge()
        with PredictionServer(
            engine, port=0, max_batch_size=1, max_wait_s=0.0
        ).start() as server:
            with inject(plan):
                client = socket.create_connection((server.host, server.port), timeout=10)
                # SO_LINGER(on, 0): close() sends RST, so the server's
                # later write fails instead of landing in a kernel buffer.
                client.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                )
                body = json.dumps({"nodes": [0]}).encode("utf-8")
                client.sendall(
                    b"POST /predict HTTP/1.1\r\n"
                    b"Host: test\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode("utf-8")
                    + body
                )
                assert entered.wait(timeout=10), "request never reached the worker"
                client.close()  # RST while the response is still pending
                release.set()

            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                counters = _call(f"{server.url}/metrics")[1]["counters"]
                if counters.get("http_disconnects_total", 0) >= 1:
                    break
                time.sleep(0.02)
            assert counters.get("http_disconnects_total", 0) >= 1
            # The server shrugged it off and keeps serving.
            status, payload = _call(f"{server.url}/predict", {"nodes": [1]})
            assert status == 200
            assert payload["labels"] == engine.predict_nodes([1]).argmax(axis=1).tolist()


class TestKeepAlive:
    def test_one_connection_serves_many_requests(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            sockets = []
            for _ in range(3):
                connection.request(
                    "POST", "/predict", body=json.dumps({"nodes": [0, 1]}),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                assert response.status == 200
                assert response.getheader("Connection") != "close"
                json.loads(response.read())
                sockets.append(connection.sock)
            # HTTP/1.1 keep-alive: the TCP connection was reused, not
            # re-established per request.
            assert all(sock is sockets[0] for sock in sockets)
        finally:
            connection.close()


class TestAdminReload:
    def test_reload_requires_replica_serving(self, server):
        status, payload = _call(f"{server.url}/admin/reload", {"artifact": "/tmp/x.rddart"})
        assert status == 400
        assert "replica" in payload["error"]


class TestEnsembleServer:
    def test_ensemble_artifact_serves_end_to_end(
        self, ensemble_artifact_path, ensemble, tiny_graph
    ):
        engine = PredictionEngine(ensemble_artifact_path, tiny_graph)
        with PredictionServer(engine, port=0, max_wait_s=0.001).start() as server:
            status, health = _call(f"{server.url}/healthz")
            assert status == 200 and health["model"] == "ensemble[3]"

            nodes = [0, 21, 42]
            status, payload = _call(f"{server.url}/predict", {"nodes": nodes})
            assert status == 200
            assert payload["labels"] == ensemble.embeddings()[nodes].argmax(axis=1).tolist()

            features = np.asarray(tiny_graph.features[2]).ravel()
            status, payload = _call(
                f"{server.url}/predict", {"features": features.tolist(), "neighbors": [2, 3]}
            )
            assert status == 200
            expected = engine.predict_inductive(features, [2, 3])
            assert payload["label"] == int(np.argmax(expected))


class TestUnbatchedMode:
    def test_batching_off_still_serves_and_counts(self, engine):
        with PredictionServer(engine, port=0, batching=False).start() as server:
            assert server.batcher is None
            status, health = _call(f"{server.url}/healthz")
            assert status == 200 and health["batching"] is False
            status, payload = _call(f"{server.url}/predict", {"nodes": [3]})
            assert status == 200
            assert payload["labels"] == engine.predict_nodes([3]).argmax(axis=1).tolist()
            assert _call(f"{server.url}/metrics")[1]["counters"]["requests_total"] >= 1
