"""HTTP front end: routes, status codes, metrics, fault survival.

Each test boots a real :class:`PredictionServer` on an ephemeral port and
talks to it over stdlib ``urllib`` — the same path ``scripts/loadgen.py``
and the CI smoke use.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving.engine import PredictionEngine
from repro.serving.server import PredictionServer
from repro.testing.faults import FaultPlan, inject


def _call(url: str, body=None, timeout: float = 10.0):
    """(status, payload) for a GET (body=None) or JSON POST; 4xx/5xx included."""
    if body is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url,
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def server(engine):
    with PredictionServer(engine, port=0, max_wait_s=0.001).start() as running:
        yield running


class TestRoutes:
    def test_healthz_reports_identity(self, server, engine):
        status, payload = _call(f"{server.url}/healthz")
        assert status == 200
        assert payload == {
            "status": "ok",
            "model": "gcn",
            "nodes": engine.num_nodes,
            "batching": True,
        }

    def test_predict_nodes_matches_engine(self, server, engine):
        nodes = [0, 17, 59]
        status, payload = _call(f"{server.url}/predict", {"nodes": nodes})
        assert status == 200
        assert payload["nodes"] == nodes
        assert payload["labels"] == engine.predict_nodes(nodes).argmax(axis=1).tolist()

    def test_predict_scalar_node_and_logits(self, server, engine):
        status, payload = _call(
            f"{server.url}/predict", {"nodes": 5, "return_probs": True, "return_logits": True}
        )
        assert status == 200
        assert payload["nodes"] == [5]
        assert np.array_equal(np.asarray(payload["logits"]), engine.predict_nodes([5]))
        assert np.isclose(sum(payload["probs"][0]), 1.0)

    def test_predict_inductive(self, server, engine, tiny_graph):
        features = np.asarray(tiny_graph.features[4]).ravel()
        body = {"features": features.tolist(), "neighbors": [4, 9], "return_probs": True}
        status, payload = _call(f"{server.url}/predict", body)
        assert status == 200
        expected = engine.predict_inductive(features, [4, 9])
        assert payload["label"] == int(np.argmax(expected))
        assert np.isclose(sum(payload["probs"]), 1.0)

    def test_metrics_populate_after_traffic(self, server):
        for _ in range(3):
            assert _call(f"{server.url}/predict", {"nodes": [1, 2]})[0] == 200
        status, snapshot = _call(f"{server.url}/metrics")
        assert status == 200
        assert snapshot["counters"]["requests_total"] >= 3
        assert snapshot["counters"]["http_200"] >= 3
        latency = snapshot["histograms"]["latency_ms"]
        assert latency["count"] >= 3
        assert latency["p50"] > 0.0 and latency["p99"] >= latency["p50"]
        assert snapshot["histograms"]["batch_size"]["count"] >= 1


class TestErrors:
    def test_unknown_paths_404(self, server):
        assert _call(f"{server.url}/nope")[0] == 404
        assert _call(f"{server.url}/nope", {"x": 1})[0] == 404

    def test_invalid_json_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/predict",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "invalid JSON" in json.loads(excinfo.value.read())["error"]

    @pytest.mark.parametrize(
        "body",
        [
            {"wrong": "keys"},
            {"nodes": [10**6]},
            {"nodes": []},
            {"features": [1.0, 2.0]},
            {"features": [1.0, 2.0], "neighbors": [0]},
        ],
        ids=["no-route", "unknown-id", "empty", "no-neighbors", "bad-features"],
    )
    def test_client_errors_400_with_json_error(self, server, body):
        status, payload = _call(f"{server.url}/predict", body)
        assert status == 400
        assert isinstance(payload["error"], str) and payload["error"]

    def test_client_errors_counted(self, server):
        before = _call(f"{server.url}/metrics")[1]["counters"].get("http_client_errors_total", 0)
        _call(f"{server.url}/predict", {"nodes": [10**6]})
        after = _call(f"{server.url}/metrics")[1]["counters"]["http_client_errors_total"]
        assert after == before + 1


class TestFaultSurvival:
    def test_injected_fault_returns_clean_json_and_server_lives(self, engine):
        # A worker-side fault on one request must surface as a clean 500
        # {"error": ...} for that caller only — the batching loop and the
        # server keep answering.
        with PredictionServer(engine, port=0, max_wait_s=0.0).start() as server:
            with inject(FaultPlan().fail("serving:request", key=0)) as plan:
                status, payload = _call(f"{server.url}/predict", {"nodes": [0]})
                assert status == 500
                assert "injected fault" in payload["error"]
                status, payload = _call(f"{server.url}/predict", {"nodes": [0]})
                assert status == 200
                assert payload["labels"] == engine.predict_nodes([0]).argmax(axis=1).tolist()
            assert plan.fired("serving:request") == 1
            snapshot = _call(f"{server.url}/metrics")[1]
            assert snapshot["counters"]["errors_total"] == 1
            assert snapshot["counters"]["http_500"] == 1
            assert snapshot["counters"]["http_200"] >= 1


class TestEnsembleServer:
    def test_ensemble_artifact_serves_end_to_end(
        self, ensemble_artifact_path, ensemble, tiny_graph
    ):
        engine = PredictionEngine(ensemble_artifact_path, tiny_graph)
        with PredictionServer(engine, port=0, max_wait_s=0.001).start() as server:
            status, health = _call(f"{server.url}/healthz")
            assert status == 200 and health["model"] == "ensemble[3]"

            nodes = [0, 21, 42]
            status, payload = _call(f"{server.url}/predict", {"nodes": nodes})
            assert status == 200
            assert payload["labels"] == ensemble.embeddings()[nodes].argmax(axis=1).tolist()

            features = np.asarray(tiny_graph.features[2]).ravel()
            status, payload = _call(
                f"{server.url}/predict", {"features": features.tolist(), "neighbors": [2, 3]}
            )
            assert status == 200
            expected = engine.predict_inductive(features, [2, 3])
            assert payload["label"] == int(np.argmax(expected))


class TestUnbatchedMode:
    def test_batching_off_still_serves_and_counts(self, engine):
        with PredictionServer(engine, port=0, batching=False).start() as server:
            assert server.batcher is None
            status, health = _call(f"{server.url}/healthz")
            assert status == 200 and health["batching"] is False
            status, payload = _call(f"{server.url}/predict", {"nodes": [3]})
            assert status == 200
            assert payload["labels"] == engine.predict_nodes([3]).argmax(axis=1).tolist()
            assert _call(f"{server.url}/metrics")[1]["counters"]["requests_total"] >= 1
