"""Prediction engine: transductive tables, inductive queries, validation.

The engine's contract is determinism — the same query against the same
artifact returns bitwise-identical logits, cached or not — plus strict
request validation (ServingError) and wrong-graph refusal (ArtifactError).
"""

import numpy as np
import pytest

from repro.models.base import softmax_rows
from repro.serving.artifacts import ArtifactError, load_artifact
from repro.serving.engine import PredictionEngine, ServingError


class TestTransductive:
    def test_predictions_match_direct_forward(self, engine, gcn_model, tiny_graph):
        nodes = [0, 7, 31, 59]
        expected = gcn_model.predict_logits(tiny_graph)[nodes]
        assert np.array_equal(engine.predict_nodes(nodes), expected)

    def test_cache_on_and_off_are_bitwise_equal(self, gcn_artifact_path, tiny_graph):
        cached = PredictionEngine(gcn_artifact_path, tiny_graph, cache_logits=True)
        uncached = PredictionEngine(gcn_artifact_path, tiny_graph, cache_logits=False)
        nodes = np.arange(tiny_graph.num_nodes)
        first = cached.predict_nodes(nodes)
        assert cached._table is not None
        assert uncached._table is None
        assert np.array_equal(first, uncached.predict_nodes(nodes))
        assert np.array_equal(first, cached.predict_nodes(nodes))  # served from cache

    def test_predict_many_matches_per_request_calls(self, engine):
        requests = [[0, 1], [5], [59, 30, 2]]
        batched = engine.predict_many(requests)
        assert len(batched) == len(requests)
        for request, result in zip(requests, batched):
            assert np.array_equal(result, engine.predict_nodes(request))

    def test_predict_proba_rows_normalize(self, engine):
        probs = engine.predict_proba_nodes([0, 1, 2])
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.array_equal(probs, softmax_rows(engine.predict_nodes([0, 1, 2])))

    def test_introspection(self, engine, tiny_graph):
        assert engine.model_kind == "gcn"
        assert engine.num_nodes == tiny_graph.num_nodes
        assert engine.num_classes == tiny_graph.num_classes

    @pytest.mark.parametrize(
        "nodes", [[], [-1], [10**6], [[0, 1]]], ids=["empty", "negative", "too-big", "2d"]
    )
    def test_bad_node_requests_rejected(self, engine, nodes):
        with pytest.raises(ServingError):
            engine.predict_nodes(nodes)

    def test_one_bad_request_fails_before_the_batch_runs(self, engine):
        with pytest.raises(ServingError):
            engine.predict_many([[0, 1], [10**6]])


class TestEnsembleServing:
    def test_predictions_are_weighted_member_average(
        self, ensemble_artifact_path, ensemble, tiny_graph
    ):
        engine = PredictionEngine(ensemble_artifact_path, tiny_graph)
        assert engine.model_kind == "ensemble[3]"
        nodes = [0, 13, 44]
        assert np.array_equal(engine.predict_nodes(nodes), ensemble.embeddings()[nodes])

    def test_inductive_uses_member_models(self, ensemble_artifact_path, tiny_graph):
        engine = PredictionEngine(ensemble_artifact_path, tiny_graph)
        features = np.asarray(tiny_graph.features[0]).ravel()
        logits = engine.predict_inductive(features, [0, 1, 5])
        assert logits.shape == (tiny_graph.num_classes,)
        assert np.all(np.isfinite(logits))

    def test_tables_only_ensemble_refuses_inductive(self, tiny_graph, ensemble, tmp_path):
        from repro.serving.artifacts import export_ensemble_artifact

        path = export_ensemble_artifact(tmp_path / "tables.rddart", ensemble, tiny_graph)
        engine = PredictionEngine(path, tiny_graph)
        features = np.asarray(tiny_graph.features[0]).ravel()
        with pytest.raises(ArtifactError, match="transductive prediction tables"):
            engine.predict_inductive(features, [0, 1])


class TestInductive:
    def test_repeat_query_is_bitwise_identical(self, engine, tiny_graph):
        features = np.asarray(tiny_graph.features[3]).ravel()
        first = engine.predict_inductive(features, [3, 8, 20])
        again = engine.predict_inductive(features, [3, 8, 20])
        assert np.array_equal(first, again)

    def test_determinism_survives_cache_disable(self, gcn_artifact_path, tiny_graph, engine):
        uncached = PredictionEngine(gcn_artifact_path, tiny_graph, inductive_cache_size=0)
        features = np.asarray(tiny_graph.features[3]).ravel()
        expected = engine.predict_inductive(features, [3, 8, 20])
        assert np.array_equal(uncached.predict_inductive(features, [3, 8, 20]), expected)
        assert np.array_equal(uncached.predict_inductive(features, [3, 8, 20]), expected)
        assert len(uncached._inductive_cache) == 0

    def test_neighbor_order_and_duplicates_do_not_matter(self, engine, tiny_graph):
        features = np.asarray(tiny_graph.features[9]).ravel()
        assert np.array_equal(
            engine.predict_inductive(features, [20, 8, 3, 8]),
            engine.predict_inductive(features, [3, 8, 20]),
        )

    def test_different_neighbors_change_the_prediction_context(self, engine, tiny_graph):
        # Two-block graph: attaching to block 0 vs block 1 must not share
        # a cache entry (keys differ); results are computed independently.
        features = np.ones(tiny_graph.num_features, dtype=float)
        a = engine.predict_inductive(features, [0, 1, 2])
        b = engine.predict_inductive(features, [57, 58, 59])
        assert a.shape == b.shape == (tiny_graph.num_classes,)
        assert len(engine._inductive_cache) >= 2

    def test_single_isolated_neighbor_is_served(self, engine, tiny_graph):
        features = np.asarray(tiny_graph.features[0]).ravel()
        logits = engine.predict_inductive(features, [0])
        assert logits.shape == (tiny_graph.num_classes,)

    def test_lru_stays_bounded(self, gcn_artifact_path, tiny_graph):
        engine = PredictionEngine(gcn_artifact_path, tiny_graph, inductive_cache_size=4)
        features = np.asarray(tiny_graph.features[0]).ravel()
        for node in range(10):
            engine.predict_inductive(features, [node])
        assert len(engine._inductive_cache) == 4

    def test_wrong_feature_shape_rejected(self, engine, tiny_graph):
        with pytest.raises(ServingError, match="features"):
            engine.predict_inductive(np.ones(tiny_graph.num_features + 1), [0, 1])

    def test_bad_neighbors_rejected(self, engine, tiny_graph):
        features = np.ones(tiny_graph.num_features, dtype=float)
        with pytest.raises(ServingError):
            engine.predict_inductive(features, [10**6])


class TestConstruction:
    def test_wrong_graph_refused(self, gcn_artifact_path, small_citation):
        with pytest.raises(ArtifactError, match="does not match"):
            PredictionEngine(gcn_artifact_path, small_citation)

    def test_verify_graph_opt_out(self, gcn_artifact_path, tiny_graph):
        engine = PredictionEngine(gcn_artifact_path, tiny_graph, verify_graph=False)
        assert engine.predict_nodes([0]).shape == (1, tiny_graph.num_classes)

    def test_accepts_loaded_artifact_or_path(self, gcn_artifact_path, tiny_graph):
        from_path = PredictionEngine(gcn_artifact_path, tiny_graph)
        from_artifact = PredictionEngine(load_artifact(gcn_artifact_path), tiny_graph)
        nodes = [0, 30, 59]
        assert np.array_equal(from_path.predict_nodes(nodes), from_artifact.predict_nodes(nodes))

    def test_hops_inferred_from_spec(self, engine, gcn_artifact_path, tiny_graph):
        assert engine._num_hops == 2  # GCN default num_layers
        override = PredictionEngine(gcn_artifact_path, tiny_graph, num_hops=1)
        assert override._num_hops == 1
