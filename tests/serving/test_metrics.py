"""Serving metrics: counters, windowed histograms, snapshots."""

import threading

import numpy as np
import pytest

from repro.serving.metrics import ServingMetrics, WindowHistogram


class TestWindowHistogram:
    def test_empty_summary(self):
        assert WindowHistogram().summary() == {"count": 0}

    def test_summary_statistics(self):
        histogram = WindowHistogram()
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.add(value)
        summary = histogram.summary()
        assert summary["count"] == summary["window"] == 4
        assert summary["mean"] == 2.5
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["p50"] == np.percentile([1.0, 2.0, 3.0, 4.0], 50)

    def test_window_evicts_oldest_but_count_is_total(self):
        histogram = WindowHistogram(window=3)
        for value in range(10):
            histogram.add(float(value))
        summary = histogram.summary()
        assert summary["count"] == 10
        assert summary["window"] == 3
        assert summary["min"] == 7.0 and summary["max"] == 9.0

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            WindowHistogram(window=0)


class TestServingMetrics:
    def test_counters_accumulate(self):
        metrics = ServingMetrics()
        assert metrics.counter("requests_total") == 0
        metrics.inc("requests_total")
        metrics.inc("requests_total", 4)
        assert metrics.counter("requests_total") == 5

    def test_latency_stored_in_milliseconds(self):
        metrics = ServingMetrics()
        metrics.observe_latency(0.25)
        assert metrics.percentile("latency_ms", "p50") == 250.0

    def test_batch_size_observation_counts_batches(self):
        metrics = ServingMetrics()
        metrics.observe_batch_size(4)
        metrics.observe_batch_size(8)
        assert metrics.counter("batches_total") == 2
        assert metrics.percentile("batch_size", "max") == 8.0

    def test_percentile_of_unknown_histogram_is_none(self):
        assert ServingMetrics().percentile("nope") is None

    def test_snapshot_is_json_ready_and_sorted(self):
        import json

        metrics = ServingMetrics()
        metrics.inc("b")
        metrics.inc("a")
        metrics.observe("latency_ms", 1.0)
        snapshot = metrics.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["histograms"]["latency_ms"]["count"] == 1
        json.dumps(snapshot)  # must not raise

    def test_percentile_races_observe_without_errors(self):
        # Regression: percentile() used to grab the histogram under the
        # lock but call summary() after releasing it, racing the ring
        # buffer against concurrent add() calls.  Hammer readers against
        # writers: every read must return a coherent value, never raise.
        metrics = ServingMetrics()
        stop = threading.Event()
        failures = []

        def writer():
            value = 0.0
            while not stop.is_set():
                metrics.observe("latency_ms", value % 100.0)
                value += 1.0

        def reader():
            while not stop.is_set():
                try:
                    p50 = metrics.percentile("latency_ms", "p50")
                except Exception as exc:  # noqa: BLE001 - the regression itself
                    failures.append(exc)
                    return
                if p50 is not None and not (0.0 <= p50 < 100.0):
                    failures.append(p50)
                    return

        threads = [threading.Thread(target=writer) for _ in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        threading.Event().wait(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not failures

    def test_thread_safety_under_contention(self):
        metrics = ServingMetrics()

        def hammer():
            for _ in range(500):
                metrics.inc("hits")
                metrics.observe("value", 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("hits") == 4000
        assert metrics.snapshot()["histograms"]["value"]["count"] == 4000
