"""Serving parity + staleness tests for delta-aware engines.

The streaming contract, in decreasing order of strength:

1. **Full-refresh parity** — after any delta sequence, a refreshed
   streaming engine's ``predict_nodes`` is bitwise identical to a
   freshly-constructed streaming engine on the updated graph.  (The
   row-pure forward makes this exact, not approximate.)
2. **Laziness** — queries touching only rows outside the k-hop affected
   set are answered from the existing table without recomputing
   anything, and those rows are provably unchanged anyway.
3. **Versioned inductive LRU** — a cache entry computed before a delta
   is never returned after it.
"""

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import GraphDelta, apply_delta
from repro.serving import (
    BackgroundRefresher,
    PredictionEngine,
    RowRefresher,
    ServingError,
)

from .conftest import build_gcn


def edge_pairs(graph):
    coo = sp.triu(graph.adjacency, k=1).tocoo()
    return list(zip(coo.row.tolist(), coo.col.tolist()))


def absent_edge(graph, start=0):
    present = set(edge_pairs(graph))
    for u in range(start, graph.num_nodes):
        for v in range(u + 1, graph.num_nodes):
            if (u, v) not in present:
                return (u, v)
    raise AssertionError("graph is complete")


@pytest.fixture()
def streaming_engine(gcn_artifact_path, tiny_graph):
    return PredictionEngine(gcn_artifact_path, tiny_graph, streaming=True)


@pytest.fixture(scope="module")
def some_deltas(tiny_graph):
    """A deterministic 3-delta sequence: removals, adds, node appends."""
    pairs = edge_pairs(tiny_graph)
    deltas = [
        GraphDelta(removed_edges=[pairs[3], pairs[17]]),
        GraphDelta(added_edges=[absent_edge(tiny_graph)]),
        GraphDelta(
            added_edges=[[2, tiny_graph.num_nodes], [40, tiny_graph.num_nodes]],
            new_features=np.linspace(0, 1, tiny_graph.num_features)[None, :],
            new_labels=[1],
        ),
    ]
    return deltas


def updated_graph(graph, deltas):
    for delta in deltas:
        graph = apply_delta(graph, delta)
    return graph


class TestStreamingConstruction:
    def test_requires_gcn_single_model(self, ensemble_artifact_path, tiny_graph):
        with pytest.raises(ServingError, match="streaming"):
            PredictionEngine(ensemble_artifact_path, tiny_graph, streaming=True)

    def test_requires_cached_logits(self, gcn_artifact_path, tiny_graph):
        with pytest.raises(ServingError, match="cache_logits"):
            PredictionEngine(
                gcn_artifact_path, tiny_graph, streaming=True, cache_logits=False
            )

    def test_static_engine_rejects_apply_delta(self, gcn_artifact_path, tiny_graph):
        engine = PredictionEngine(gcn_artifact_path, tiny_graph)
        with pytest.raises(ServingError, match="streaming=True"):
            engine.apply_delta(GraphDelta(added_edges=[absent_edge(tiny_graph)]))

    def test_streaming_table_matches_static_closely(self, gcn_artifact_path, tiny_graph):
        """The row-pure table and the static table are the same numbers up
        to summation order — tight float tolerance, not bitwise."""
        static = PredictionEngine(gcn_artifact_path, tiny_graph)
        streaming = PredictionEngine(gcn_artifact_path, tiny_graph, streaming=True)
        np.testing.assert_allclose(
            streaming.logits_table(), static.logits_table(), rtol=1e-12, atol=1e-12
        )

    def test_engine_on_updated_graph_normalizes_its_own_adjacency(
        self, gcn_artifact_path, tiny_graph, some_deltas
    ):
        """The init-time Â install must not leak the training graph's
        propagation matrix onto a structurally different serving graph."""
        plain = updated_graph(tiny_graph, some_deltas[:1])
        plain._normalized = None
        engine = PredictionEngine(gcn_artifact_path, plain, verify_graph=False)
        expected = plain.normalized_adjacency()  # freshly normalized
        assert engine.graph._normalized.nnz == expected.nnz


class TestFullRefreshParity:
    def test_refreshed_matches_fresh_engine_bitwise(
        self, gcn_artifact_path, tiny_graph, some_deltas, streaming_engine
    ):
        streaming_engine.logits_table()  # build at version 0
        for delta in some_deltas:
            streaming_engine.apply_delta(delta)
        streaming_engine.refresh()
        fresh = PredictionEngine(
            gcn_artifact_path,
            updated_graph(tiny_graph, some_deltas),
            streaming=True,
            verify_graph=False,
        )
        nodes = np.arange(fresh.graph.num_nodes)
        assert np.array_equal(
            streaming_engine.predict_nodes(nodes), fresh.predict_nodes(nodes)
        )

    def test_refresh_per_delta_matches_one_shot(
        self, gcn_artifact_path, tiny_graph, some_deltas
    ):
        """Refreshing after every delta and refreshing once at the end
        land on the same bytes."""
        eager = PredictionEngine(gcn_artifact_path, tiny_graph, streaming=True)
        eager.logits_table()
        lazy = PredictionEngine(gcn_artifact_path, tiny_graph, streaming=True)
        lazy.logits_table()
        for delta in some_deltas:
            eager.apply_delta(delta)
            eager.refresh()
            lazy.apply_delta(delta)
        lazy.refresh()
        assert np.array_equal(eager.logits_table(), lazy.logits_table())

    def test_refresh_before_first_build_is_the_build(
        self, gcn_artifact_path, tiny_graph, some_deltas
    ):
        engine = PredictionEngine(gcn_artifact_path, tiny_graph, streaming=True)
        engine.apply_delta(some_deltas[0])
        refreshed = engine.refresh()
        assert refreshed == engine.graph.num_nodes  # full build
        fresh = PredictionEngine(
            gcn_artifact_path,
            updated_graph(tiny_graph, some_deltas[:1]),
            streaming=True,
            verify_graph=False,
        )
        assert np.array_equal(engine.logits_table(), fresh.logits_table())

    def test_float32_artifact_parity(self, tiny_graph, tmp_path):
        from repro.serving.artifacts import ModelSpec, export_model_artifact

        graph32 = tiny_graph.astype(np.float32)
        model = build_gcn(graph32)
        for parameter in model.parameters():
            parameter.data = parameter.data.astype(np.float32)
        path = export_model_artifact(
            tmp_path / "gcn32.rddart", model, ModelSpec("gcn", {"hidden": 8}), graph32
        )
        engine = PredictionEngine(path, tiny_graph, streaming=True)
        engine.logits_table()
        delta = GraphDelta(removed_edges=[edge_pairs(tiny_graph)[0]])
        engine.apply_delta(delta)
        engine.refresh()
        assert engine.logits_table().dtype == np.float32
        fresh = PredictionEngine(
            path, apply_delta(tiny_graph, delta), streaming=True, verify_graph=False
        )
        assert np.array_equal(engine.logits_table(), fresh.logits_table())

    def test_version_increments_monotonically(self, streaming_engine, some_deltas):
        assert streaming_engine.version == 0
        versions = [streaming_engine.apply_delta(d) for d in some_deltas]
        assert versions == [1, 2, 3]
        streaming_engine.refresh()
        assert streaming_engine.version == 3  # refresh is not a graph change


class TestLaziness:
    def test_clean_rows_served_without_recompute(self, streaming_engine, tiny_graph):
        table_before = streaming_engine.logits_table().copy()
        delta = GraphDelta(removed_edges=[edge_pairs(tiny_graph)[5]])
        streaming_engine.apply_delta(delta)
        stale = streaming_engine._stale.copy()
        assert stale.any() and not stale.all(), "need both stale and clean rows"
        clean = np.flatnonzero(~stale)
        out = streaming_engine.predict_nodes(clean)
        # No refresh happened: the stale mask is untouched and no rows
        # were recomputed.
        assert streaming_engine._stale.any()
        assert streaming_engine.metrics.counter("rows_refreshed_total") == 0
        assert streaming_engine.metrics.counter("stale_row_hits_total") == 0
        # ... and clean rows are exactly their pre-delta bytes.
        assert np.array_equal(out, table_before[clean])

    def test_clean_rows_equal_post_refresh_rows(self, streaming_engine, tiny_graph):
        """Laziness is sound: rows outside the k-hop set would not have
        changed anyway."""
        streaming_engine.logits_table()
        delta = GraphDelta(removed_edges=[edge_pairs(tiny_graph)[5]])
        streaming_engine.apply_delta(delta)
        clean = np.flatnonzero(~streaming_engine._stale)
        before = streaming_engine.predict_nodes(clean)
        streaming_engine.refresh()
        after = streaming_engine.predict_nodes(clean)
        assert np.array_equal(before, after)

    def test_stale_row_query_triggers_refresh(self, streaming_engine, tiny_graph):
        streaming_engine.logits_table()
        streaming_engine.apply_delta(
            GraphDelta(removed_edges=[edge_pairs(tiny_graph)[5]])
        )
        stale_node = int(np.flatnonzero(streaming_engine._stale)[0])
        streaming_engine.predict_nodes([stale_node])
        assert not streaming_engine._stale.any()
        assert streaming_engine.metrics.counter("stale_row_hits_total") == 1
        assert streaming_engine.metrics.counter("rows_refreshed_total") > 0

    def test_stale_mask_is_khop_closure(self, streaming_engine, tiny_graph):
        from repro.graph import k_hop_rows

        streaming_engine.logits_table()
        pair = edge_pairs(tiny_graph)[5]
        streaming_engine.apply_delta(GraphDelta(removed_edges=[pair]))
        expected = k_hop_rows(
            [tiny_graph.adjacency, streaming_engine.graph.adjacency],
            np.asarray(pair),
            streaming_engine._refresher.num_layers,
        )
        np.testing.assert_array_equal(
            np.flatnonzero(streaming_engine._stale), expected
        )

    def test_appended_node_is_stale_until_served(self, streaming_engine, tiny_graph):
        streaming_engine.logits_table()
        new_id = tiny_graph.num_nodes
        streaming_engine.apply_delta(
            GraphDelta(
                added_edges=[[0, new_id]],
                new_features=np.zeros((1, tiny_graph.num_features)),
            )
        )
        assert streaming_engine._stale[new_id]
        row = streaming_engine.predict_nodes([new_id])
        assert row.shape[0] == 1 and np.isfinite(row).all()
        assert not streaming_engine._stale.any()


class TestVersionedInductiveLRU:
    def test_pre_delta_entry_never_served_post_delta(
        self, streaming_engine, tiny_graph, rng
    ):
        features = rng.random(tiny_graph.num_features)
        neighbors = [0, 7]
        first = streaming_engine.predict_inductive(features, neighbors)
        # Hitting the cache returns the identical object bytes.
        assert np.array_equal(
            streaming_engine.predict_inductive(features, neighbors), first
        )
        assert len(streaming_engine._inductive_cache) == 1
        # Remove one of the attachment points' edges: same query must be
        # recomputed (new cache entry), not served from version 0.
        row = tiny_graph.adjacency.indices[
            tiny_graph.adjacency.indptr[0] : tiny_graph.adjacency.indptr[1]
        ]
        streaming_engine.apply_delta(
            GraphDelta(removed_edges=[[0, int(row[0])]])
        )
        second = streaming_engine.predict_inductive(features, neighbors)
        assert len(streaming_engine._inductive_cache) == 2
        fresh = PredictionEngine(
            streaming_engine.artifact,
            streaming_engine.graph,
            streaming=True,
            verify_graph=False,
            seed=streaming_engine.seed,
        )
        assert np.array_equal(second, fresh.predict_inductive(features, neighbors))

    def test_static_engine_keys_unchanged_by_version_field(self, engine, rng):
        """Static engines stay at version 0 — memoization still works."""
        features = rng.random(engine.graph.num_features)
        first = engine.predict_inductive(features, [1, 2])
        assert np.array_equal(engine.predict_inductive(features, [1, 2]), first)


class TestBackgroundRefresher:
    def wait_fresh(self, engine, timeout=5.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            with engine._lock:
                if engine._refresher.table is not None and not engine._stale.any():
                    return True
            time.sleep(0.005)
        return False

    def test_refreshes_eagerly_after_delta(
        self, gcn_artifact_path, tiny_graph, some_deltas
    ):
        engine = PredictionEngine(gcn_artifact_path, tiny_graph, streaming=True)
        engine.logits_table()
        with BackgroundRefresher(engine, interval_s=0.01):
            for delta in some_deltas:
                engine.apply_delta(delta)
            assert self.wait_fresh(engine)
        assert engine.metrics.counter("refresh_cycles_total") >= 1
        fresh = PredictionEngine(
            gcn_artifact_path,
            updated_graph(tiny_graph, some_deltas),
            streaming=True,
            verify_graph=False,
        )
        assert np.array_equal(engine.logits_table(), fresh.logits_table())

    def test_stop_is_idempotent_and_restartable(self, streaming_engine):
        refresher = BackgroundRefresher(streaming_engine, interval_s=0.01)
        refresher.start()
        refresher.stop()
        refresher.stop()
        refresher.start()
        refresher.stop()
        assert not streaming_engine._delta_listeners

    def test_start_twice_rejected(self, streaming_engine):
        refresher = BackgroundRefresher(streaming_engine, interval_s=0.01)
        refresher.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                refresher.start()
        finally:
            refresher.stop()


class TestRowRefresherUnit:
    def test_rebuild_is_idempotent_bitwise(self, gcn_model, tiny_graph):
        refresher = RowRefresher(gcn_model, np.float64)
        first = refresher.rebuild(tiny_graph).copy()
        second = refresher.rebuild(tiny_graph)
        assert np.array_equal(first, second)

    def test_refresh_of_everything_equals_rebuild(self, gcn_model, tiny_graph):
        refresher = RowRefresher(gcn_model, np.float64)
        expected = refresher.rebuild(tiny_graph).copy()
        everything = np.arange(tiny_graph.num_nodes)
        closures = [everything] * (refresher.num_layers + 1)
        refresher.refresh(tiny_graph, closures)
        assert np.array_equal(refresher.table, expected)

    def test_refresh_before_rebuild_rejected(self, gcn_model, tiny_graph):
        refresher = RowRefresher(gcn_model, np.float64)
        with pytest.raises(RuntimeError, match="rebuild"):
            refresher.refresh(tiny_graph, [np.arange(1)] * (refresher.num_layers + 1))

    def test_wrong_closure_count_rejected(self, gcn_model, tiny_graph):
        refresher = RowRefresher(gcn_model, np.float64)
        refresher.rebuild(tiny_graph)
        with pytest.raises(ValueError, match="closures"):
            refresher.refresh(tiny_graph, [np.arange(1)])
