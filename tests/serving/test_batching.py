"""Micro-batcher: ordering, bitwise parity, fault isolation, lifecycle.

Satellite contract: hypothesis property tests that batching preserves
per-request ordering and returns results bitwise-equal to unbatched
single-request inference; a multi-threaded smoke test with concurrent
clients; and proof that an injected ``serving:request`` fault errors only
its own future while the batching loop survives.
"""

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.serving.batching import BatcherClosed, MicroBatcher, Overloaded
from repro.serving.engine import ServingError
from repro.serving.metrics import ServingMetrics
from repro.testing.faults import FaultPlan, WorkerCrash, inject

NUM_NODES = 60  # tiny_graph size; strategies must stay in range

node_request = st.lists(st.integers(min_value=0, max_value=NUM_NODES - 1), min_size=1, max_size=6)
request_stream = st.lists(node_request, min_size=1, max_size=24)

relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------
class TestProperties:
    @relaxed
    @given(stream=request_stream)
    def test_results_are_bitwise_equal_to_unbatched(self, engine, stream):
        expected = [engine.predict_nodes(nodes) for nodes in stream]
        with MicroBatcher(engine.predict_many, max_batch_size=8, max_wait_s=0.001) as batcher:
            futures = [batcher.submit(nodes) for nodes in stream]
            for future, reference in zip(futures, expected):
                assert np.array_equal(future.result(timeout=10), reference)

    @relaxed
    @given(stream=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=32))
    def test_ordering_is_preserved_under_coalescing(self, stream):
        # A payload-tagging batch_fn makes routing mistakes visible: each
        # future must resolve to a pure function of its own payload.
        def batch_fn(payloads):
            return [(value, value * 2 + 1) for value in payloads]

        with MicroBatcher(batch_fn, max_batch_size=4, max_wait_s=0.001) as batcher:
            futures = [batcher.submit(value) for value in stream]
            for value, future in zip(stream, futures):
                assert future.result(timeout=10) == (value, value * 2 + 1)

    @relaxed
    @given(stream=request_stream)
    def test_parity_holds_with_multiple_workers(self, engine, stream):
        with MicroBatcher(
            engine.predict_many, max_batch_size=4, max_wait_s=0.0, workers=2
        ) as batcher:
            futures = [batcher.submit(nodes) for nodes in stream]
            for nodes, future in zip(stream, futures):
                assert np.array_equal(future.result(timeout=10), engine.predict_nodes(nodes))


# ----------------------------------------------------------------------
# Concurrency smoke
# ----------------------------------------------------------------------
class TestConcurrentClients:
    def test_concurrent_clients_get_their_own_bitwise_results(self, engine):
        clients, per_client = 8, 20
        rng = np.random.default_rng(5)
        streams = [
            [rng.integers(0, engine.num_nodes, size=4) for _ in range(per_client)]
            for _ in range(clients)
        ]
        expected = [[engine.predict_nodes(nodes) for nodes in stream] for stream in streams]
        metrics = ServingMetrics()
        mismatches = []

        with MicroBatcher(
            engine.predict_many, max_batch_size=16, max_wait_s=0.002, metrics=metrics
        ) as batcher:

            def client(index):
                for nodes, reference in zip(streams[index], expected[index]):
                    if not np.array_equal(batcher.predict(nodes, timeout=30), reference):
                        mismatches.append(index)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not mismatches
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["requests_total"] == clients * per_client
        assert snapshot["counters"].get("errors_total", 0) == 0
        assert snapshot["histograms"]["batch_size"]["count"] == snapshot["counters"]["batches_total"]
        assert snapshot["histograms"]["latency_ms"]["count"] == clients * per_client


# ----------------------------------------------------------------------
# Fault isolation
# ----------------------------------------------------------------------
class TestFaultIsolation:
    def test_injected_fault_fails_only_its_own_future(self, engine):
        metrics = ServingMetrics()
        with inject(FaultPlan().fail("serving:request", key=1)) as plan:
            with MicroBatcher(
                engine.predict_many, max_batch_size=8, max_wait_s=0.02, metrics=metrics
            ) as batcher:
                futures = [batcher.submit([node]) for node in (0, 1, 2, 3)]
                with pytest.raises(WorkerCrash):
                    futures[1].result(timeout=10)
                for node in (0, 2, 3):
                    assert np.array_equal(
                        futures[node].result(timeout=10), engine.predict_nodes([node])
                    )
                # The loop survived: later requests still get answers.
                assert np.array_equal(
                    batcher.predict([5], timeout=10), engine.predict_nodes([5])
                )
        assert plan.fired("serving:request") == 1
        assert metrics.counter("errors_total") == 1
        assert metrics.counter("requests_total") == 5

    def test_malformed_payload_fails_alone_in_a_coalesced_batch(self, engine):
        # predict_many validates up front and raises for the whole batch;
        # the batcher isolates by re-running each request alone, so only
        # the bad payload's future errors.
        with MicroBatcher(engine.predict_many, max_batch_size=8, max_wait_s=0.05) as batcher:
            futures = [batcher.submit(payload) for payload in ([0, 1], [10**6], [2])]
            with pytest.raises(ServingError):
                futures[1].result(timeout=10)
            assert np.array_equal(futures[0].result(timeout=10), engine.predict_nodes([0, 1]))
            assert np.array_equal(futures[2].result(timeout=10), engine.predict_nodes([2]))

    def test_single_request_batch_failure_surfaces_directly(self, engine):
        with MicroBatcher(engine.predict_many, max_batch_size=1, max_wait_s=0.0) as batcher:
            with pytest.raises(ServingError):
                batcher.predict([10**6], timeout=10)
            assert np.array_equal(batcher.predict([0], timeout=10), engine.predict_nodes([0]))

    def test_miscounting_batch_fn_fails_the_request(self):
        with MicroBatcher(lambda payloads: [], max_batch_size=1, max_wait_s=0.0) as batcher:
            with pytest.raises(ReproError, match="results"):
                batcher.predict("x", timeout=10)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_full_queue_sheds_with_overloaded_and_accepted_work_completes(self):
        # Regression: the queue used to be unbounded — saturation grew
        # latency without limit instead of rejecting the excess.
        release = threading.Event()
        metrics = ServingMetrics()

        def blocking_batch_fn(payloads):
            release.wait(timeout=30)
            return [p * 2 for p in payloads]

        batcher = MicroBatcher(
            blocking_batch_fn, max_batch_size=1, max_wait_s=0.0,
            max_queue=2, metrics=metrics,
        )
        try:
            first = batcher.submit(0)  # the worker takes this and blocks
            pause = threading.Event()
            while batcher._queue.qsize() and not pause.wait(0.01):
                pass  # wait until the first request is truly in-flight
            accepted = [batcher.submit(i + 1) for i in range(2)]  # fills the queue
            shed = 0
            for i in range(5):
                with pytest.raises(Overloaded) as excinfo:
                    batcher.submit(i + 10)
                shed += 1
                assert excinfo.value.retry_after_s > 0
            release.set()
            # Shedding protected the accepted requests: all complete.
            assert first.result(timeout=10) == 0
            assert [f.result(timeout=10) for f in accepted] == [2, 4]
        finally:
            release.set()
            batcher.close()
        assert metrics.counter("shed_total") == shed
        assert metrics.counter("requests_total") == 3  # shed never counted

    def test_shed_requests_do_not_consume_sequence_numbers(self):
        # The fault-point key is the arrival sequence number; shedding
        # must not advance it or keyed fault plans would drift under load.
        release = threading.Event()
        batcher = MicroBatcher(
            lambda payloads: (release.wait(timeout=30), payloads)[1],
            max_batch_size=1, max_wait_s=0.0, max_queue=1,
        )
        try:
            batcher.submit("a")  # key 0, taken by the worker
            pause = threading.Event()
            while batcher._queue.qsize() and not pause.wait(0.01):
                pass
            batcher.submit("b")  # key 1, fills the queue
            with pytest.raises(Overloaded):
                batcher.submit("shed")
            release.set()
            assert batcher._sequence == 2
        finally:
            release.set()
            batcher.close()


# ----------------------------------------------------------------------
# Shutdown races (regression tests)
# ----------------------------------------------------------------------
class TestShutdownRaces:
    def test_close_fails_requests_still_queued_behind_the_sentinel(self):
        # Regression: close() used to join the workers and return, leaving
        # _Pending items queued behind the shutdown sentinel with their
        # futures forever unresolved — predict() with no timeout hung.
        release = threading.Event()

        def blocking_batch_fn(payloads):
            release.wait(timeout=30)
            return [p for p in payloads]

        batcher = MicroBatcher(blocking_batch_fn, max_batch_size=1, max_wait_s=0.0)
        first = batcher.submit("a")  # a worker takes this and blocks
        # Wait until the worker is actually inside batch_fn so the rest
        # of the stream stays queued.
        deadline = threading.Event()
        while batcher._queue.qsize() and not deadline.wait(0.01):
            pass
        queued = [batcher.submit(payload) for payload in ("b", "c", "d")]

        closer = threading.Thread(target=batcher.close, kwargs={"timeout": 0.2})
        closer.start()
        closer.join(timeout=10)
        assert not closer.is_alive()

        # Every queued future resolved — with BatcherClosed, not a hang.
        for future in queued:
            with pytest.raises(BatcherClosed):
                future.result(timeout=5)
        # The in-flight request still completes once the worker unblocks.
        release.set()
        assert first.result(timeout=10) == "a"

    def test_submit_close_race_never_leaves_a_hung_future(self):
        # Regression: submit() checked _closed, released the lock, then
        # enqueued — a request racing close() could land behind the
        # sentinel and hang.  Hammer the race: every future returned by
        # submit must resolve (result or BatcherClosed) within a timeout.
        for _ in range(20):
            batcher = MicroBatcher(
                lambda payloads: [p * 2 for p in payloads],
                max_batch_size=4,
                max_wait_s=0.0,
                workers=2,
            )
            futures, lock = [], threading.Lock()
            start = threading.Barrier(5)

            def client():
                try:
                    start.wait(timeout=5)
                except threading.BrokenBarrierError:
                    return
                while True:
                    try:
                        future = batcher.submit(1)
                    except BatcherClosed:
                        return
                    with lock:
                        futures.append(future)

            threads = [threading.Thread(target=client) for _ in range(4)]
            for thread in threads:
                thread.start()
            start.wait(timeout=5)
            batcher.close()
            for thread in threads:
                thread.join(timeout=10)
            assert not any(thread.is_alive() for thread in threads)
            for future in futures:
                try:
                    assert future.result(timeout=5) == 2
                except BatcherClosed:
                    pass  # failed cleanly at shutdown: acceptable, not a hang


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_closed_batcher_refuses_submissions(self, engine):
        batcher = MicroBatcher(engine.predict_many)
        batcher.close()
        with pytest.raises(BatcherClosed):
            batcher.submit([0])
        batcher.close()  # idempotent

    def test_close_drains_inflight_requests(self, engine):
        batcher = MicroBatcher(engine.predict_many, max_batch_size=4, max_wait_s=0.01)
        futures = [batcher.submit([node]) for node in range(6)]
        batcher.close()
        for node, future in enumerate(futures):
            assert np.array_equal(future.result(timeout=10), engine.predict_nodes([node]))

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_batch_size": 0}, {"max_wait_s": -1.0}, {"workers": 0}, {"max_queue": 0}],
        ids=["batch-size", "wait", "workers", "queue"],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ReproError):
            MicroBatcher(lambda payloads: payloads, **kwargs)
