"""TieredCache: promotion, demotion, eviction, counters, disabled modes.

The cache's contract is behavioral, not structural: scan bursts must not
displace the hot set, demoted entries must survive in the cold tier, and
``cold_size=0`` must disable the whole cache (the engine's stateless
switch).  Keys are opaque bytes throughout, matching the engine's query
digests.
"""

import pytest

from repro.errors import ReproError
from repro.serving.cache import TieredCache
from repro.serving.metrics import ServingMetrics


def key(i: int) -> bytes:
    return f"k{i}".encode()


class TestBasics:
    def test_miss_then_put_then_hit(self):
        cache = TieredCache(hot_size=2, cold_size=4, promote_after=2)
        assert cache.get(key(0)) is None
        cache.put(key(0), "v0")
        assert cache.get(key(0)) == "v0"
        assert key(0) in cache
        assert len(cache) == 1

    def test_put_refreshes_existing_value_in_either_tier(self):
        cache = TieredCache(hot_size=2, cold_size=4, promote_after=1)
        cache.put(key(0), "old")
        cache.put(key(0), "new")  # cold-tier refresh
        assert cache.get(key(0)) == "new"  # this hit promotes
        cache.put(key(0), "newer")  # hot-tier refresh
        assert cache.get(key(0)) == "newer"
        assert cache.stats()["hot_entries"] == 1

    @pytest.mark.parametrize(
        "kwargs",
        [{"hot_size": -1}, {"cold_size": -1}, {"promote_after": 0}],
        ids=["hot", "cold", "promote"],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ReproError):
            TieredCache(**kwargs)

    def test_clear_empties_both_tiers(self):
        cache = TieredCache(hot_size=2, cold_size=4, promote_after=1)
        cache.put(key(0), "a")
        cache.put(key(1), "b")
        cache.get(key(0))  # promote
        cache.clear()
        assert len(cache) == 0
        assert cache.get(key(0)) is None and cache.get(key(1)) is None


class TestPromotion:
    def test_entry_promotes_only_after_enough_cold_hits(self):
        cache = TieredCache(hot_size=2, cold_size=4, promote_after=2)
        cache.put(key(0), "v")
        cache.get(key(0))  # 1st cold hit: not yet
        assert cache.stats()["hot_entries"] == 0
        cache.get(key(0))  # 2nd cold hit: promoted
        assert cache.stats() == {
            "hot_entries": 1, "cold_entries": 0,
            "hot_size": 2, "cold_size": 4, "promote_after": 2,
        }

    def test_scan_burst_cannot_displace_the_hot_set(self):
        # The property the tier split exists for: cold one-off traffic
        # churns the cold LRU but a single touch never reaches the hot
        # tier, so the hot entry survives an arbitrarily long scan.
        cache = TieredCache(hot_size=1, cold_size=2, promote_after=2)
        cache.put(key(0), "hot")
        cache.get(key(0))
        cache.get(key(0))  # promoted
        for i in range(1, 50):  # scan burst of one-touch keys
            cache.put(key(i), f"cold{i}")
            cache.get(key(i))
        assert cache.get(key(0)) == "hot"

    def test_hot_eviction_demotes_to_cold_instead_of_dropping(self):
        cache = TieredCache(hot_size=1, cold_size=4, promote_after=1)
        cache.put(key(0), "first")
        cache.get(key(0))  # promote first
        cache.put(key(1), "second")
        cache.get(key(1))  # promote second -> first demoted to cold
        stats = cache.stats()
        assert stats["hot_entries"] == 1 and stats["cold_entries"] == 1
        assert cache.get(key(0)) == "first"  # still cached, cold tier

    def test_hot_size_zero_degenerates_to_plain_lru(self):
        cache = TieredCache(hot_size=0, cold_size=2, promote_after=1)
        cache.put(key(0), "a")
        for _ in range(5):
            assert cache.get(key(0)) == "a"  # hits never promote
        assert cache.stats()["hot_entries"] == 0


class TestEviction:
    def test_cold_lru_evicts_oldest_beyond_capacity(self):
        cache = TieredCache(hot_size=0, cold_size=2, promote_after=2)
        cache.put(key(0), "a")
        cache.put(key(1), "b")
        cache.put(key(2), "c")  # evicts key 0
        assert cache.get(key(0)) is None
        assert cache.get(key(1)) == "b" and cache.get(key(2)) == "c"

    def test_cold_hit_refreshes_lru_position(self):
        cache = TieredCache(hot_size=0, cold_size=2, promote_after=5)
        cache.put(key(0), "a")
        cache.put(key(1), "b")
        cache.get(key(0))  # key 0 is now the freshest
        cache.put(key(2), "c")  # evicts key 1, not key 0
        assert cache.get(key(0)) == "a"
        assert cache.get(key(1)) is None


class TestDisabled:
    def test_cold_size_zero_disables_the_cache(self):
        cache = TieredCache(hot_size=0, cold_size=0)
        assert not cache.enabled
        cache.put(key(0), "v")  # no-op
        assert cache.get(key(0)) is None
        assert len(cache) == 0


class TestMetrics:
    def test_counters_track_tier_behavior(self):
        metrics = ServingMetrics()
        cache = TieredCache(
            hot_size=1, cold_size=2, promote_after=2, metrics=metrics, prefix="ind"
        )
        cache.get(key(0))  # miss
        cache.put(key(0), "v")
        cache.get(key(0))  # cold hit
        cache.get(key(0))  # cold hit + promotion
        cache.get(key(0))  # hot hit
        cache.put(key(1), "a")
        cache.put(key(2), "b")
        cache.put(key(3), "c")  # cold tier full: eviction
        assert metrics.counter("ind_misses_total") == 1
        assert metrics.counter("ind_cold_hits_total") == 2
        assert metrics.counter("ind_promotions_total") == 1
        assert metrics.counter("ind_hot_hits_total") == 1
        assert metrics.counter("ind_evictions_total") == 1
