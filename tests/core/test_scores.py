"""Tests for the pluggable reliability uncertainty scores."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scores import RELIABILITY_SCORES, uncertainty_score
from repro.core import RDDConfig, node_reliability, train_rdd
from repro.errors import ConfigError


def confident(p, k=3):
    row = np.full(k, (1 - p) / (k - 1))
    row[0] = p
    return row


class TestUncertaintyScore:
    @pytest.mark.parametrize("score", RELIABILITY_SCORES)
    def test_confident_rows_score_lower(self, score):
        probs = np.stack([confident(0.95), confident(0.4)])
        values = uncertainty_score(probs, score)
        assert values[0] < values[1]

    def test_entropy_matches_functional(self):
        from repro.tensor.functional import entropy

        probs = np.random.default_rng(0).dirichlet(np.ones(4), size=10)
        np.testing.assert_allclose(uncertainty_score(probs, "entropy"), entropy(probs))

    def test_margin_values(self):
        probs = np.array([[0.7, 0.2, 0.1]])
        assert uncertainty_score(probs, "margin")[0] == pytest.approx(1.0 - 0.5)

    def test_confidence_values(self):
        probs = np.array([[0.7, 0.2, 0.1]])
        assert uncertainty_score(probs, "confidence")[0] == pytest.approx(0.3)

    def test_unknown_score_raises(self):
        with pytest.raises(ConfigError):
            uncertainty_score(np.ones((2, 2)) / 2, "variance")

    def test_margin_needs_two_classes(self):
        with pytest.raises(ConfigError):
            uncertainty_score(np.ones((2, 1)), "margin")

    def test_rejects_1d(self):
        with pytest.raises(ConfigError):
            uncertainty_score(np.ones(3), "entropy")

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_property_scores_nonnegative(self, seed):
        probs = np.random.default_rng(seed).dirichlet(np.ones(4), size=15)
        for score in RELIABILITY_SCORES:
            assert (uncertainty_score(probs, score) >= -1e-12).all()


class TestScoreIntegration:
    @pytest.mark.parametrize("score", RELIABILITY_SCORES)
    def test_node_reliability_accepts_score(self, score):
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(3), size=30)
        sets = node_reliability(
            probs, probs, np.zeros(30, dtype=np.int64), np.arange(5), p=40.0, score=score
        )
        assert np.all(sets.reliable_mask[sets.distill_mask])

    def test_rdd_config_validates_score(self):
        with pytest.raises(ConfigError):
            RDDConfig(reliability_score="variance")

    @pytest.mark.parametrize("score", RELIABILITY_SCORES)
    def test_rdd_trains_with_every_score(self, tiny_graph, score):
        config = RDDConfig(
            num_base_models=2, max_epochs=20, hidden=8, reliability_score=score
        )
        result = train_rdd(tiny_graph, config, seed=0)
        assert 0.0 <= result.ensemble_test_accuracy <= 1.0


class TestMarginPartitionParity:
    """The argpartition-based top-two margin must equal the full-sort
    formulation exactly (same floats, not just close)."""

    @staticmethod
    def sort_reference(probs):
        top_two = np.sort(probs, axis=1)[:, -2:]
        return 1.0 - (top_two[:, 1] - top_two[:, 0])

    def test_two_classes(self):
        probs = np.array([[0.9, 0.1], [0.5, 0.5], [0.2, 0.8]])
        np.testing.assert_array_equal(
            uncertainty_score(probs, "margin"), self.sort_reference(probs)
        )

    def test_tied_maxima(self):
        probs = np.array([[0.4, 0.4, 0.2], [1 / 3, 1 / 3, 1 / 3]])
        np.testing.assert_array_equal(
            uncertainty_score(probs, "margin"), self.sort_reference(probs)
        )

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(2, 12))
    def test_property_matches_full_sort(self, seed, k):
        rng = np.random.default_rng(seed)
        probs = rng.dirichlet(np.ones(k), size=int(rng.integers(1, 40)))
        np.testing.assert_array_equal(
            uncertainty_score(probs, "margin"), self.sort_reference(probs)
        )
