"""Tests for the graph-data-based ensemble (§4.3, Eq. 12–13)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EnsembleModel, ensemble_weight, uniform_softmax_ensemble
from repro.errors import ConfigError, ShapeError


def confident_probs(n=4, k=3, confidence=0.95, rng=None):
    rng = rng or np.random.default_rng(0)
    probs = np.full((n, k), (1 - confidence) / (k - 1))
    winners = rng.integers(0, k, n)
    probs[np.arange(n), winners] = confidence
    return probs


class TestEnsembleWeight:
    def test_confident_model_gets_higher_weight(self):
        pagerank = np.full(4, 0.25)
        confident = confident_probs(confidence=0.99)
        unsure = confident_probs(confidence=0.4)
        assert ensemble_weight(confident, pagerank) > ensemble_weight(unsure, pagerank)

    def test_pagerank_weights_node_importance(self):
        # Uncertainty on a high-PageRank node should cost more weight.
        probs = np.array([[0.5, 0.5], [0.99, 0.01]])
        pr_uncertain_hub = np.array([0.9, 0.1])  # node 0 (unsure) is the hub
        pr_confident_hub = np.array([0.1, 0.9])
        assert ensemble_weight(probs, pr_confident_hub) > ensemble_weight(probs, pr_uncertain_hub)

    def test_perfectly_confident_model_finite_weight(self):
        probs = np.eye(3)
        weight = ensemble_weight(probs, np.full(3, 1 / 3))
        assert np.isfinite(weight) and weight > 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            ensemble_weight(np.ones((3, 2)) / 2, np.ones(4))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_property_weight_positive(self, seed):
        rng = np.random.default_rng(seed)
        probs = rng.dirichlet(np.ones(3), size=10)
        pr = rng.dirichlet(np.ones(10))
        assert ensemble_weight(probs, pr) > 0


class TestEnsembleModel:
    def test_empty_ensemble_raises(self):
        with pytest.raises(ConfigError):
            EnsembleModel().probs()

    def test_weights_normalized(self):
        ens = EnsembleModel()
        probs = confident_probs()
        ens.add(probs, np.log(probs), 2.0)
        ens.add(probs, np.log(probs), 6.0)
        np.testing.assert_allclose(ens.weights, [0.25, 0.75])
        np.testing.assert_allclose(ens.raw_weights, [2.0, 6.0])

    def test_probs_are_weighted_average(self):
        ens = EnsembleModel()
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        ens.add(a, a, 3.0)
        ens.add(b, b, 1.0)
        np.testing.assert_allclose(ens.probs(), [[0.75, 0.25]])

    def test_probs_rows_sum_to_one(self):
        rng = np.random.default_rng(1)
        ens = EnsembleModel()
        for _ in range(3):
            probs = rng.dirichlet(np.ones(4), size=6)
            ens.add(probs, np.log(probs + 1e-9), float(rng.random() + 0.1))
        np.testing.assert_allclose(ens.probs().sum(axis=1), np.ones(6))

    def test_embeddings_weighted_average(self):
        ens = EnsembleModel()
        probs = confident_probs(n=2, k=2)
        ens.add(probs, np.ones((2, 2)), 1.0)
        ens.add(probs, np.full((2, 2), 3.0), 1.0)
        np.testing.assert_allclose(ens.embeddings(), np.full((2, 2), 2.0))

    def test_predict_argmax(self):
        ens = EnsembleModel()
        probs = np.array([[0.8, 0.2], [0.1, 0.9]])
        ens.add(probs, probs, 1.0)
        np.testing.assert_array_equal(ens.predict(), [0, 1])

    def test_base_predictions(self):
        ens = EnsembleModel()
        a = np.array([[0.9, 0.1]])
        b = np.array([[0.2, 0.8]])
        ens.add(a, a, 1.0)
        ens.add(b, b, 1.0)
        np.testing.assert_array_equal(ens.base_predictions(0), [0])
        np.testing.assert_array_equal(ens.base_predictions(1), [1])

    def test_len(self):
        ens = EnsembleModel()
        assert len(ens) == 0
        probs = confident_probs()
        ens.add(probs, probs, 1.0)
        assert len(ens) == 1

    def test_mismatched_probs_logits_raise(self):
        ens = EnsembleModel()
        with pytest.raises(ShapeError):
            ens.add(np.ones((2, 2)) / 2, np.ones((3, 2)), 1.0)

    def test_mismatched_base_shape_raises(self):
        ens = EnsembleModel()
        probs = confident_probs(n=4)
        ens.add(probs, probs, 1.0)
        other = confident_probs(n=5)
        with pytest.raises(ShapeError):
            ens.add(other, other, 1.0)

    def test_nonpositive_weight_raises(self):
        ens = EnsembleModel()
        probs = confident_probs()
        with pytest.raises(ConfigError):
            ens.add(probs, probs, 0.0)


class TestUniformEnsemble:
    def test_average(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        np.testing.assert_allclose(uniform_softmax_ensemble([a, b]), [[0.5, 0.5]])

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            uniform_softmax_ensemble([])
