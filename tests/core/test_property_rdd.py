"""Hypothesis property tests spanning the RDD core pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EnsembleModel,
    edge_reliability,
    ensemble_weight,
    node_reliability,
    uniform_softmax_ensemble,
)
from repro.core.losses import RDDLossState, rdd_student_loss
from repro.tensor import Tensor


def random_probs(rng, n, k):
    return rng.dirichlet(np.ones(k), size=n)


class TestEnsembleProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 200), models=st.integers(1, 5))
    def test_weighted_ensemble_rows_are_distributions(self, seed, models):
        rng = np.random.default_rng(seed)
        ensemble = EnsembleModel()
        pagerank = rng.dirichlet(np.ones(12))
        for _ in range(models):
            probs = random_probs(rng, 12, 4)
            ensemble.add(probs, np.log(probs + 1e-12), ensemble_weight(probs, pagerank))
        out = ensemble.probs()
        assert (out >= -1e-12).all()
        np.testing.assert_allclose(out.sum(axis=1), np.ones(12), atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_single_model_ensemble_is_identity(self, seed):
        rng = np.random.default_rng(seed)
        probs = random_probs(rng, 8, 3)
        ensemble = EnsembleModel()
        ensemble.add(probs, probs, 5.0)
        np.testing.assert_allclose(ensemble.probs(), probs)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 200), models=st.integers(2, 5))
    def test_uniform_ensemble_bounded_by_extremes(self, seed, models):
        rng = np.random.default_rng(seed)
        prob_list = [random_probs(rng, 6, 3) for _ in range(models)]
        mean = uniform_softmax_ensemble(prob_list)
        stacked = np.stack(prob_list)
        assert (mean <= stacked.max(axis=0) + 1e-12).all()
        assert (mean >= stacked.min(axis=0) - 1e-12).all()


class TestReliabilityPipelineProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 200), p=st.floats(0.0, 100.0))
    def test_full_pipeline_edge_set_consistent(self, seed, p):
        rng = np.random.default_rng(seed)
        n, k = 30, 3
        teacher = random_probs(rng, n, k)
        student = random_probs(rng, n, k)
        labels = rng.integers(0, k, n)
        train = rng.choice(n, size=6, replace=False)
        sets = node_reliability(teacher, student, labels, train, p=p)

        m = 50
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        r_src, r_dst = edge_reliability(src, dst, sets.reliable_mask, student.argmax(axis=1))
        # Every reliable edge touches only reliable nodes with agreeing
        # student predictions — the Alg. 2 contract, for any p and seed.
        assert np.all(sets.reliable_mask[r_src])
        assert np.all(sets.reliable_mask[r_dst])
        assert np.all(student.argmax(axis=1)[r_src] == student.argmax(axis=1)[r_dst])

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100), gamma=st.floats(0.0, 3.0), beta=st.floats(0.0, 3.0))
    def test_loss_finite_and_nonnegative_terms(self, seed, gamma, beta, tiny_graph):
        rng = np.random.default_rng(seed)
        n, k = tiny_graph.num_nodes, tiny_graph.num_classes
        teacher_probs = random_probs(rng, n, k)
        state = RDDLossState(
            teacher_embeddings=np.log(teacher_probs + 1e-12),
            teacher_probs=teacher_probs,
            distill_index=rng.choice(n, size=8, replace=False),
            edge_src=rng.integers(0, n, 10),
            edge_dst=rng.integers(0, n, 10),
            gamma=gamma,
            beta=beta,
        )
        logits = Tensor(rng.normal(size=(n, k)), requires_grad=True)
        loss = rdd_student_loss(tiny_graph, logits, state)
        assert np.isfinite(loss.item())
        assert loss.item() >= 0.0
        loss.backward()
        assert np.isfinite(logits.grad).all()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_loss_monotone_in_gamma(self, seed, tiny_graph):
        # With everything else fixed, a larger γ cannot reduce the loss
        # (the distillation term is nonnegative).
        rng = np.random.default_rng(seed)
        n, k = tiny_graph.num_nodes, tiny_graph.num_classes
        teacher_probs = random_probs(rng, n, k)
        logits_data = rng.normal(size=(n, k))

        def loss_at(gamma):
            state = RDDLossState(
                teacher_embeddings=np.log(teacher_probs + 1e-12),
                teacher_probs=teacher_probs,
                distill_index=np.arange(10),
                gamma=gamma,
                beta=0.0,
            )
            return rdd_student_loss(tiny_graph, Tensor(logits_data), state).item()

        assert loss_at(2.0) >= loss_at(0.5) - 1e-12
