"""White-box tests of the RDD trainer's per-epoch mechanics."""

import numpy as np
import pytest

from repro.core import RDDConfig, RDDTrainer
from repro.core.losses import RDDLossState
from repro.models import GCN
from repro.training import make_rng


class _Spy:
    """Wraps the RDD loss state access to observe per-epoch values."""

    def __init__(self):
        self.gammas = []
        self.distill_sizes = []
        self.edge_counts = []


def _run_with_spy(graph, config, seed=0):
    """Run RDD while intercepting every per-epoch loss-state snapshot."""
    spy = _Spy()
    trainer = RDDTrainer(config)

    import repro.core.rdd as rdd_module

    true_loss = rdd_module.rdd_student_loss

    def spying_loss(g, logits, state: RDDLossState):
        spy.gammas.append(state.gamma)
        spy.distill_sizes.append(len(state.distill_index))
        spy.edge_counts.append(len(state.edge_src))
        return true_loss(g, logits, state)

    rdd_module.rdd_student_loss = spying_loss
    try:
        result = trainer.fit(graph, seed=seed)
    finally:
        rdd_module.rdd_student_loss = true_loss
    return result, spy


class TestPerEpochMechanics:
    def test_gamma_follows_cosine_ramp(self, tiny_graph):
        config = RDDConfig(num_base_models=2, max_epochs=30, patience=30, hidden=8)
        _, spy = _run_with_spy(tiny_graph, config)
        gammas = spy.gammas
        assert len(gammas) > 5
        # Starts near zero and is non-decreasing over the student's epochs.
        assert gammas[0] == pytest.approx(0.0, abs=1e-9)
        assert all(b >= a - 1e-12 for a, b in zip(gammas, gammas[1:]))
        assert gammas[-1] > 0.0

    def test_reliability_sets_refresh_every_epoch(self, tiny_graph):
        config = RDDConfig(num_base_models=2, max_epochs=20, patience=20, hidden=8)
        _, spy = _run_with_spy(tiny_graph, config)
        # The distillation set is rank-based, so it is always ~p% of nodes;
        # what matters is that it exists and stays bounded.
        assert all(0 <= n <= tiny_graph.num_nodes for n in spy.distill_sizes)
        assert any(n > 0 for n in spy.distill_sizes)

    def test_no_edge_computation_when_lreg_disabled(self, tiny_graph):
        config = RDDConfig(num_base_models=2, max_epochs=10, patience=10, hidden=8, use_lreg=False)
        _, spy = _run_with_spy(tiny_graph, config)
        assert all(n == 0 for n in spy.edge_counts)

    def test_edges_present_when_lreg_enabled(self, tiny_graph):
        config = RDDConfig(num_base_models=2, max_epochs=15, patience=15, hidden=8)
        _, spy = _run_with_spy(tiny_graph, config)
        assert any(n > 0 for n in spy.edge_counts)


class TestTeacherEvolution:
    def test_teacher_probs_fixed_during_one_student(self, tiny_graph):
        # The teacher is the ensemble of *previous* students; it must not
        # change while the current student trains.
        config = RDDConfig(num_base_models=2, max_epochs=10, patience=10, hidden=8)
        trainer = RDDTrainer(config)

        import repro.core.rdd as rdd_module

        snapshots = []
        true_loss = rdd_module.rdd_student_loss

        def spying_loss(g, logits, state):
            snapshots.append(state.teacher_embeddings)
            return true_loss(g, logits, state)

        rdd_module.rdd_student_loss = spying_loss
        try:
            trainer.fit(tiny_graph, seed=0)
        finally:
            rdd_module.rdd_student_loss = true_loss
        # All snapshots within the single distilled student share one array.
        assert all(s is snapshots[0] for s in snapshots)

    def test_first_student_never_distills(self, tiny_graph):
        config = RDDConfig(num_base_models=1, max_epochs=10, hidden=8)
        result, spy = _run_with_spy(tiny_graph, config)
        # With a single base model there is no teacher, hence no RDD loss calls.
        assert spy.gammas == []
        assert len(result.base_test_accuracies) == 1
