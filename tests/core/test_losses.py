"""Tests for the composite RDD student loss (Eq. 10)."""

import numpy as np
import pytest

from repro.core.losses import DISTILL_MODES, RDDLossState, rdd_student_loss
from repro.tensor import Tensor, ops
from repro.tensor.functional import masked_cross_entropy


def make_state(graph, **overrides):
    n, k = graph.num_nodes, graph.num_classes
    rng = np.random.default_rng(0)
    teacher_probs = rng.dirichlet(np.ones(k), size=n)
    defaults = dict(
        teacher_embeddings=np.log(teacher_probs + 1e-9),
        teacher_probs=teacher_probs,
        distill_index=np.arange(5),
        edge_src=np.array([0, 1]),
        edge_dst=np.array([2, 3]),
        gamma=1.0,
        beta=1.0,
    )
    defaults.update(overrides)
    return RDDLossState(**defaults)


def logits_for(graph, seed=1):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=(graph.num_nodes, graph.num_classes)), requires_grad=True)


class TestComposition:
    def test_reduces_to_supervised_when_terms_off(self, tiny_graph):
        logits = logits_for(tiny_graph)
        state = make_state(tiny_graph, gamma=0.0, beta=0.0)
        loss = rdd_student_loss(tiny_graph, logits, state)
        expected = masked_cross_entropy(
            ops.log_softmax(Tensor(logits.data), axis=1), tiny_graph.labels, tiny_graph.train_index
        )
        assert loss.item() == pytest.approx(expected.item())

    def test_gamma_adds_distillation_term(self, tiny_graph):
        logits = logits_for(tiny_graph)
        base = rdd_student_loss(tiny_graph, logits, make_state(tiny_graph, gamma=0.0, beta=0.0))
        with_l2 = rdd_student_loss(tiny_graph, logits_for(tiny_graph), make_state(tiny_graph, beta=0.0))
        assert with_l2.item() > base.item()

    def test_beta_adds_edge_term(self, tiny_graph):
        base = rdd_student_loss(tiny_graph, logits_for(tiny_graph), make_state(tiny_graph, gamma=0.0, beta=0.0))
        with_reg = rdd_student_loss(tiny_graph, logits_for(tiny_graph), make_state(tiny_graph, gamma=0.0, beta=5.0))
        assert with_reg.item() > base.item()

    def test_empty_distill_index_skips_l2(self, tiny_graph):
        logits = logits_for(tiny_graph)
        state = make_state(tiny_graph, distill_index=np.empty(0, dtype=np.int64), beta=0.0)
        base = make_state(tiny_graph, gamma=0.0, beta=0.0)
        assert rdd_student_loss(tiny_graph, logits, state).item() == pytest.approx(
            rdd_student_loss(tiny_graph, logits_for(tiny_graph), base).item()
        )

    def test_empty_edges_skip_reg(self, tiny_graph):
        empty = np.empty(0, dtype=np.int64)
        state = make_state(tiny_graph, gamma=0.0, edge_src=empty, edge_dst=empty)
        base = make_state(tiny_graph, gamma=0.0, beta=0.0)
        assert rdd_student_loss(tiny_graph, logits_for(tiny_graph), state).item() == pytest.approx(
            rdd_student_loss(tiny_graph, logits_for(tiny_graph), base).item()
        )

    def test_loss_is_differentiable(self, tiny_graph):
        logits = logits_for(tiny_graph)
        loss = rdd_student_loss(tiny_graph, logits, make_state(tiny_graph))
        loss.backward()
        assert logits.grad is not None
        assert np.isfinite(logits.grad).all()


class TestDistillModes:
    @pytest.mark.parametrize("mode", DISTILL_MODES)
    def test_all_modes_produce_finite_positive_terms(self, tiny_graph, mode):
        logits = logits_for(tiny_graph)
        state = make_state(tiny_graph, distill_mode=mode, beta=0.0)
        loss = rdd_student_loss(tiny_graph, logits, state)
        assert np.isfinite(loss.item())

    @pytest.mark.parametrize("mode", DISTILL_MODES)
    def test_all_modes_backprop(self, tiny_graph, mode):
        logits = logits_for(tiny_graph)
        state = make_state(tiny_graph, distill_mode=mode)
        rdd_student_loss(tiny_graph, logits, state).backward()
        assert np.isfinite(logits.grad).all()

    def test_unknown_mode_raises(self, tiny_graph):
        state = make_state(tiny_graph, distill_mode="cosine")
        with pytest.raises(ValueError):
            rdd_student_loss(tiny_graph, logits_for(tiny_graph), state)

    def test_prob_mse_zero_when_student_matches_teacher(self, tiny_graph):
        n, k = tiny_graph.num_nodes, tiny_graph.num_classes
        teacher_probs = np.full((n, k), 1.0 / k)
        logits = Tensor(np.zeros((n, k)), requires_grad=True)  # softmax → uniform
        state = make_state(
            tiny_graph, teacher_probs=teacher_probs, beta=0.0, distill_mode="prob_mse"
        )
        base = make_state(tiny_graph, gamma=0.0, beta=0.0)
        assert rdd_student_loss(tiny_graph, logits, state).item() == pytest.approx(
            rdd_student_loss(tiny_graph, Tensor(np.zeros((n, k))), base).item()
        )
