"""End-to-end tests of the RDD trainer (Algorithm 3)."""

import numpy as np
import pytest

from repro.core import RDDConfig, RDDTrainer, train_rdd
from repro.errors import ConfigError
from repro.models import GAT
from repro.tensor.functional import accuracy


def small_config(**overrides):
    defaults = dict(num_base_models=3, max_epochs=40, patience=15, hidden=8)
    defaults.update(overrides)
    return RDDConfig(**defaults)


class TestConfigValidation:
    def test_defaults_valid(self):
        RDDConfig()

    def test_bad_num_models(self):
        with pytest.raises(ConfigError):
            RDDConfig(num_base_models=0)

    def test_bad_p(self):
        with pytest.raises(ConfigError):
            RDDConfig(p=150.0)

    def test_bad_gamma(self):
        with pytest.raises(ConfigError):
            RDDConfig(gamma_initial=-1.0)

    def test_bad_beta(self):
        with pytest.raises(ConfigError):
            RDDConfig(beta=-0.5)

    def test_bad_distill_mode(self):
        with pytest.raises(ConfigError):
            RDDConfig(distill_mode="nope")

    def test_ablation_helpers(self):
        config = RDDConfig(use_l2=False, use_lreg=False, gamma_initial=2.0, beta=3.0)
        assert config.effective_gamma_initial() == 0.0
        assert config.effective_beta() == 0.0


class TestTraining:
    def test_produces_expected_result_structure(self, tiny_graph):
        result = train_rdd(tiny_graph, small_config(), seed=0)
        assert len(result.base_test_accuracies) == 3
        assert len(result.base_results) == 3
        assert len(result.ensemble_curve) == 3
        assert 0.0 <= result.ensemble_test_accuracy <= 1.0
        assert result.wall_time_s > 0

    def test_learns_two_block_task(self, tiny_graph):
        result = train_rdd(tiny_graph, small_config(max_epochs=80), seed=0)
        assert result.ensemble_test_accuracy >= 0.85

    def test_reliability_history_recorded(self, tiny_graph):
        result = train_rdd(tiny_graph, small_config(), seed=0)
        # One entry per distilled student (all but the first).
        assert len(result.reliability_history) == 2
        for entry in result.reliability_history:
            assert entry["num_distill"] <= entry["num_reliable"]
            assert entry["num_reliable_edges"] >= 0

    def test_deterministic_given_seed(self, tiny_graph):
        a = train_rdd(tiny_graph, small_config(), seed=7)
        b = train_rdd(tiny_graph, small_config(), seed=7)
        assert a.ensemble_test_accuracy == b.ensemble_test_accuracy
        assert a.base_test_accuracies == b.base_test_accuracies

    def test_different_seeds_differ(self, tiny_graph):
        a = train_rdd(tiny_graph, small_config(), seed=1)
        b = train_rdd(tiny_graph, small_config(), seed=2)
        assert a.base_test_accuracies != b.base_test_accuracies

    def test_single_base_model_is_plain_gcn(self, tiny_graph):
        result = train_rdd(tiny_graph, small_config(num_base_models=1), seed=0)
        assert len(result.base_test_accuracies) == 1
        assert result.ensemble_test_accuracy == pytest.approx(result.base_test_accuracies[0])

    def test_custom_model_factory(self, tiny_graph):
        def factory(graph, rng):
            return GAT(graph.num_features, graph.num_classes, rng, hidden=4, num_heads=2)

        trainer = RDDTrainer(small_config(num_base_models=2), model_factory=factory)
        result = trainer.fit(tiny_graph, seed=0)
        assert len(result.base_test_accuracies) == 2

    def test_ensemble_curve_tracks_prefix_accuracy(self, tiny_graph):
        result = train_rdd(tiny_graph, small_config(), seed=0)
        assert result.ensemble_curve[-1] == pytest.approx(result.ensemble_test_accuracy)


class TestAblations:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"use_l2": False},
            {"use_lreg": False},
            {"use_node_reliability": False},
            {"use_edge_reliability": False},
            {"use_node_reliability": False, "use_edge_reliability": False},
            {"use_ensemble_weighting": False},
        ],
    )
    def test_every_ablation_variant_trains(self, tiny_graph, overrides):
        result = train_rdd(tiny_graph, small_config(**overrides), seed=0)
        assert 0.0 <= result.ensemble_test_accuracy <= 1.0

    def test_uniform_weighting_changes_nothing_but_weights(self, tiny_graph):
        weighted = train_rdd(tiny_graph, small_config(), seed=3)
        uniform = train_rdd(tiny_graph, small_config(use_ensemble_weighting=False), seed=3)
        # Same students (same seeds/config up to weighting inside training).
        assert weighted.base_test_accuracies[0] == uniform.base_test_accuracies[0]


class TestGeneralizationGain:
    def test_rdd_matches_or_beats_single_gcn_on_citation(self, small_citation):
        from repro.models import GCN
        from repro.training import Trainer, make_rng

        gcn = GCN(small_citation.num_features, small_citation.num_classes, make_rng(0), hidden=16)
        gcn_acc = Trainer(max_epochs=60, patience=20).fit(gcn, small_citation).test_accuracy
        rdd = train_rdd(
            small_citation,
            RDDConfig(num_base_models=3, max_epochs=60, patience=20),
            seed=0,
        )
        # At test scale (0.1, one seed, short budget) single-run noise is
        # several points; this only guards against catastrophic regressions.
        # The benchmark suite checks the strict inequality at proper scale
        # with seed averaging.
        assert rdd.ensemble_test_accuracy >= gcn_acc - 0.10
