"""Tests for node and edge reliability (Algorithms 1 and 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReliabilitySets, edge_reliability, entropy_threshold_mask, node_reliability
from repro.errors import ConfigError, ShapeError


def probs_from_confidence(confidences, predictions, k=3):
    """Rows with given argmax class and max-probability."""
    n = len(confidences)
    probs = np.full((n, k), 0.0)
    for i, (c, p) in enumerate(zip(predictions, confidences)):
        probs[i] = (1.0 - p) / (k - 1)
        probs[i, c] = p
    return probs


class TestEntropyThresholdMask:
    def test_lowest_selection(self):
        entropies = np.array([0.1, 0.9, 0.5, 0.3])
        mask = entropy_threshold_mask(entropies, 50.0, lowest=True)
        np.testing.assert_array_equal(mask, [True, False, False, True])

    def test_highest_selection(self):
        entropies = np.array([0.1, 0.9, 0.5, 0.3])
        mask = entropy_threshold_mask(entropies, 25.0, lowest=False)
        np.testing.assert_array_equal(mask, [False, True, False, False])

    def test_zero_percent_selects_nothing(self):
        mask = entropy_threshold_mask(np.ones(5), 0.0, lowest=True)
        assert not mask.any()

    def test_hundred_percent_selects_all(self):
        mask = entropy_threshold_mask(np.ones(5), 100.0, lowest=True)
        assert mask.all()

    def test_invalid_percent_raises(self):
        with pytest.raises(ConfigError):
            entropy_threshold_mask(np.ones(3), 150.0, lowest=True)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 100),
        n=st.integers(1, 50),
        percent=st.floats(0.0, 100.0),
    )
    def test_property_count_matches_percent(self, seed, n, percent):
        entropies = np.random.default_rng(seed).random(n)
        mask = entropy_threshold_mask(entropies, percent, lowest=True)
        assert mask.sum() == int(round(n * percent / 100.0))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100), p_small=st.floats(0, 50), p_extra=st.floats(0, 50))
    def test_property_monotone_in_percent(self, seed, p_small, p_extra):
        # The selected set must grow monotonically with the percentile.
        entropies = np.random.default_rng(seed).random(40)
        small = entropy_threshold_mask(entropies, p_small, lowest=True)
        large = entropy_threshold_mask(entropies, min(p_small + p_extra, 100.0), lowest=True)
        assert np.all(large[small])  # small ⊆ large


class TestNodeReliabilityLabeled:
    def test_correct_teacher_prediction_is_reliable(self):
        labels = np.array([0, 1, 2])
        teacher = probs_from_confidence([0.9, 0.9, 0.9], [0, 1, 0])  # node 2 wrong
        student = teacher.copy()
        sets = node_reliability(teacher, student, labels, np.arange(3), p=100.0)
        assert sets.reliable_mask[0]
        assert sets.reliable_mask[1]
        assert not sets.reliable_mask[2]

    def test_labeled_nodes_ignore_student_agreement(self):
        labels = np.array([0])
        teacher = probs_from_confidence([0.9], [0])
        student = probs_from_confidence([0.9], [1])  # disagrees
        sets = node_reliability(teacher, student, labels, np.array([0]), p=100.0)
        assert sets.reliable_mask[0]

    def test_labeled_check_variants_disagree_when_models_do(self):
        # §3.1 prose checks the teacher; Alg. 1 line 4 checks the student.
        labels = np.array([0])
        teacher = probs_from_confidence([0.9], [0])   # teacher correct
        student = probs_from_confidence([0.9], [1])   # student wrong
        by_teacher = node_reliability(
            teacher, student, labels, np.array([0]), p=100.0, labeled_check="teacher"
        )
        by_student = node_reliability(
            teacher, student, labels, np.array([0]), p=100.0, labeled_check="student"
        )
        assert by_teacher.reliable_mask[0]
        assert not by_student.reliable_mask[0]

    def test_invalid_labeled_check_rejected(self):
        from repro.errors import ConfigError

        labels = np.array([0])
        probs = probs_from_confidence([0.9], [0])
        with pytest.raises(ConfigError):
            node_reliability(probs, probs, labels, np.array([0]), labeled_check="oracle")


class TestNodeReliabilityUnlabeled:
    def test_low_entropy_and_agreement_required(self):
        labels = np.zeros(4, dtype=np.int64)
        train = np.array([], dtype=np.int64)
        # Nodes: 0 confident+agree, 1 confident+disagree, 2 unsure+agree, 3 unsure+disagree.
        teacher = probs_from_confidence([0.95, 0.95, 0.40, 0.40], [0, 0, 1, 1])
        student = probs_from_confidence([0.9, 0.9, 0.9, 0.9], [0, 2, 1, 2])
        sets = node_reliability(teacher, student, labels, train, p=50.0)
        assert sets.reliable_mask[0]
        assert not sets.reliable_mask[1]  # disagreement kills it
        assert not sets.reliable_mask[2]  # entropy too high (not in lowest 50%)
        assert not sets.reliable_mask[3]

    def test_p_controls_reliable_count(self):
        rng = np.random.default_rng(0)
        n = 100
        labels = np.zeros(n, dtype=np.int64)
        probs = rng.dirichlet(np.ones(3), size=n)
        sets_small = node_reliability(probs, probs, labels, np.array([], dtype=np.int64), p=20.0)
        sets_large = node_reliability(probs, probs, labels, np.array([], dtype=np.int64), p=80.0)
        assert sets_small.num_reliable < sets_large.num_reliable
        # Monotonicity: the reliable set grows with p.
        assert np.all(sets_large.reliable_mask[sets_small.reliable_mask])

    def test_distill_set_is_subset_of_reliable(self):
        rng = np.random.default_rng(1)
        n = 60
        labels = rng.integers(0, 3, n)
        teacher = rng.dirichlet(np.ones(3), size=n)
        student = rng.dirichlet(np.ones(3), size=n)
        sets = node_reliability(teacher, student, labels, np.arange(10), p=40.0)
        assert np.all(sets.reliable_mask[sets.distill_mask])

    def test_distill_set_targets_uncertain_students(self):
        labels = np.zeros(4, dtype=np.int64)
        train = np.array([], dtype=np.int64)
        # Teacher entropy strictly increasing: lowest-50% = nodes 0, 1.
        teacher = probs_from_confidence([0.99, 0.98, 0.97, 0.96], [0, 0, 0, 0])
        # Student agrees everywhere; unsure on nodes 1 and 3.
        student = probs_from_confidence([0.99, 0.40, 0.99, 0.40], [0, 0, 0, 0])
        sets = node_reliability(teacher, student, labels, train, p=50.0)
        np.testing.assert_array_equal(sets.reliable_mask, [True, True, False, False])
        # V_b = reliable ∩ (student-entropy top 50% = nodes 1, 3) = {1}.
        np.testing.assert_array_equal(sets.distill_mask, [False, True, False, False])

    def test_wnr_ablation_marks_everything_reliable(self):
        rng = np.random.default_rng(2)
        teacher = rng.dirichlet(np.ones(3), size=20)
        student = rng.dirichlet(np.ones(3), size=20)
        sets = node_reliability(teacher, student, np.zeros(20, dtype=np.int64),
                                np.array([], dtype=np.int64), p=40.0, use_reliability=False)
        assert sets.reliable_mask.all()
        # V_b still selects the student's most-uncertain 40%.
        assert sets.num_distill == 8

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            node_reliability(np.ones((3, 2)) / 2, np.ones((4, 2)) / 2,
                             np.zeros(3, dtype=np.int64), np.array([0]))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 200), p=st.floats(0, 100))
    def test_property_invariants(self, seed, p):
        rng = np.random.default_rng(seed)
        n, k = 40, 4
        teacher = rng.dirichlet(np.ones(k), size=n)
        student = rng.dirichlet(np.ones(k), size=n)
        labels = rng.integers(0, k, n)
        train = rng.choice(n, size=8, replace=False)
        sets = node_reliability(teacher, student, labels, train, p=p)
        # V_b ⊆ V_r always.
        assert np.all(sets.reliable_mask[sets.distill_mask])
        # Masks have the right shape and dtype.
        assert sets.reliable_mask.shape == (n,)
        assert sets.reliable_mask.dtype == bool
        assert sets.num_distill <= int(round(n * p / 100.0))


class TestEdgeReliability:
    def test_requires_both_endpoints_reliable(self):
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 3])
        reliable = np.array([True, True, False, True])
        pred = np.zeros(4, dtype=np.int64)
        r_src, r_dst = edge_reliability(src, dst, reliable, pred)
        np.testing.assert_array_equal(r_src, [0])
        np.testing.assert_array_equal(r_dst, [1])

    def test_requires_same_predicted_class(self):
        src = np.array([0, 1])
        dst = np.array([1, 2])
        reliable = np.ones(3, dtype=bool)
        pred = np.array([0, 0, 1])
        r_src, r_dst = edge_reliability(src, dst, reliable, pred)
        np.testing.assert_array_equal(r_src, [0])

    def test_wer_ablation_keeps_same_class_edges_only(self):
        src = np.array([0, 1])
        dst = np.array([1, 2])
        reliable = np.zeros(3, dtype=bool)  # nobody reliable
        pred = np.array([0, 0, 1])
        r_src, _ = edge_reliability(src, dst, reliable, pred, use_reliability=False)
        np.testing.assert_array_equal(r_src, [0])

    def test_empty_edges(self):
        empty = np.array([], dtype=np.int64)
        r_src, r_dst = edge_reliability(empty, empty, np.ones(3, dtype=bool), np.zeros(3, dtype=np.int64))
        assert len(r_src) == 0

    def test_mismatched_arrays_raise(self):
        with pytest.raises(ShapeError):
            edge_reliability(np.array([0]), np.array([1, 2]), np.ones(3, dtype=bool),
                             np.zeros(3, dtype=np.int64))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_property_reliable_edges_subset_of_input(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 20, 40
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        reliable = rng.random(n) < 0.5
        pred = rng.integers(0, 3, n)
        r_src, r_dst = edge_reliability(src, dst, reliable, pred)
        original = set(zip(src.tolist(), dst.tolist()))
        assert set(zip(r_src.tolist(), r_dst.tolist())) <= original
        # Every surviving edge satisfies both conditions.
        assert np.all(reliable[r_src] & reliable[r_dst])
        assert np.all(pred[r_src] == pred[r_dst])


class TestEntropyThresholdMaskPartitionParity:
    """The argpartition-based selection must pick the exact node set the
    old full stable argsort picked, tie behaviour included: boundary
    ties resolve to the smallest indices for lowest-p selection and the
    largest indices for highest-p selection."""

    @staticmethod
    def argsort_reference(entropies, percent, lowest):
        n = len(entropies)
        count = int(round(n * percent / 100.0))
        mask = np.zeros(n, dtype=bool)
        if count == 0:
            return mask
        order = np.argsort(entropies, kind="stable")
        chosen = order[:count] if lowest else order[-count:]
        mask[chosen] = True
        return mask

    def test_lowest_tie_takes_smallest_indices(self):
        entropies = np.array([0.5, 0.2, 0.5, 0.2, 0.5])
        mask = entropy_threshold_mask(entropies, 60.0, lowest=True)
        # Two 0.2s enter outright; the tie at 0.5 resolves to index 0.
        np.testing.assert_array_equal(mask, [True, True, False, True, False])

    def test_highest_tie_takes_largest_indices(self):
        entropies = np.array([0.5, 0.2, 0.5, 0.2, 0.5])
        mask = entropy_threshold_mask(entropies, 60.0, lowest=False)
        # All three 0.5s qualify for the top 3: indices 0, 2, 4.
        np.testing.assert_array_equal(mask, [True, False, True, False, True])
        mask = entropy_threshold_mask(entropies, 40.0, lowest=False)
        # Top 2 of three tied 0.5s: the stable argsort kept the largest
        # indices, 2 and 4.
        np.testing.assert_array_equal(mask, [False, False, True, False, True])

    def test_all_tied(self):
        entropies = np.full(6, 0.3)
        np.testing.assert_array_equal(
            entropy_threshold_mask(entropies, 50.0, lowest=True),
            [True, True, True, False, False, False],
        )
        np.testing.assert_array_equal(
            entropy_threshold_mask(entropies, 50.0, lowest=False),
            [False, False, False, True, True, True],
        )

    @settings(max_examples=200, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        percent=st.sampled_from([0.0, 7.0, 25.0, 40.0, 50.0, 93.0, 100.0]),
        lowest=st.booleans(),
    )
    def test_property_matches_stable_argsort(self, seed, percent, lowest):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        # Draw from a tiny value set so boundary ties are the common
        # case rather than the exception.
        entropies = rng.choice([0.1, 0.2, 0.2, 0.3, 0.3, 0.3], size=n)
        fast = entropy_threshold_mask(entropies, percent, lowest)
        reference = self.argsort_reference(entropies, percent, lowest)
        np.testing.assert_array_equal(fast, reference)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_matches_on_distinct_values(self, seed):
        rng = np.random.default_rng(seed)
        entropies = rng.permutation(np.linspace(0.0, 1.0, 37))
        for percent in (13.0, 40.0, 87.0):
            for lowest in (True, False):
                np.testing.assert_array_equal(
                    entropy_threshold_mask(entropies, percent, lowest),
                    self.argsort_reference(entropies, percent, lowest),
                )


class TestDegenerateInputs:
    """The hardening contract: degenerate inputs stay well-defined."""

    def test_empty_entropies_yield_empty_mask(self):
        for lowest in (True, False):
            mask = entropy_threshold_mask(np.array([]), 50.0, lowest=lowest)
            assert mask.shape == (0,) and mask.dtype == bool

    def test_single_node_rounds_to_none_or_all(self):
        one = np.array([0.5])
        assert not entropy_threshold_mask(one, 40.0, lowest=True).any()
        assert entropy_threshold_mask(one, 60.0, lowest=True).all()

    def test_non_1d_entropies_rejected(self):
        with pytest.raises(ShapeError):
            entropy_threshold_mask(np.ones((3, 2)), 50.0, lowest=True)

    def test_nan_entropies_rejected_when_ranking(self):
        entropies = np.array([0.1, np.nan, 0.3, 0.4])
        with pytest.raises(ShapeError):
            entropy_threshold_mask(entropies, 50.0, lowest=True)
        # The 0%/100% short-circuits never rank, so they stay defined.
        assert not entropy_threshold_mask(entropies, 0.0, lowest=True).any()
        assert entropy_threshold_mask(entropies, 100.0, lowest=True).all()

    def test_nan_percent_rejected(self):
        with pytest.raises(ConfigError):
            entropy_threshold_mask(np.ones(3), float("nan"), lowest=True)

    def test_edge_reliability_empty_edge_set(self):
        src, dst = edge_reliability(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.ones(4, dtype=bool),
            np.zeros(4, dtype=np.int64),
        )
        assert src.size == 0 and dst.size == 0
        assert src.dtype == np.int64 and dst.dtype == np.int64

    def test_edge_reliability_out_of_range_endpoints_rejected(self):
        mask, pred = np.ones(4, dtype=bool), np.zeros(4, dtype=np.int64)
        with pytest.raises(ShapeError, match="endpoints"):
            edge_reliability([0, 3], [1, 4], mask, pred)
        with pytest.raises(ShapeError, match="endpoints"):
            edge_reliability([-1], [1], mask, pred)

    def test_edge_reliability_mask_length_mismatch_rejected(self):
        with pytest.raises(ShapeError, match="mask"):
            edge_reliability([0], [1], np.ones(3, dtype=bool), np.zeros(4, dtype=np.int64))

    def test_edge_reliability_2d_predictions_rejected(self):
        with pytest.raises(ShapeError, match="1-D"):
            edge_reliability([0], [1], np.ones(4, dtype=bool), np.zeros((4, 2)))
