"""Hypothesis property tests for :class:`EnsembleModel` invariants.

The algebraic facts the teacher's correctness rests on: normalized
α-weights form a distribution, the weighted average is permutation
invariant (model order is an implementation detail of the boosting
loop), ``add`` grows the ensemble monotonically, and the checkpoint
round trip is the identity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EnsembleModel, ensemble_weight
from repro.errors import ConfigError, ShapeError

N_NODES, N_CLASSES = 10, 4


def build_ensemble(seed, models):
    """A seeded ensemble with Eq.-12 weights over random base outputs."""
    rng = np.random.default_rng(seed)
    pagerank = rng.dirichlet(np.ones(N_NODES))
    ensemble = EnsembleModel()
    members = []
    for _ in range(models):
        probs = rng.dirichlet(np.ones(N_CLASSES), size=N_NODES)
        logits = np.log(probs + 1e-12)
        members.append((probs, logits, ensemble_weight(probs, pagerank)))
        ensemble.add(*members[-1])
    return ensemble, members


class TestWeightDistribution:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500), models=st.integers(1, 6))
    def test_normalized_weights_are_a_distribution(self, seed, models):
        ensemble, _ = build_ensemble(seed, models)
        weights = ensemble.weights
        assert (weights > 0).all()  # α_t > 0 by construction (Eq. 12 clamp)
        assert weights.shape == (models,)
        np.testing.assert_allclose(weights.sum(), 1.0, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500), models=st.integers(1, 6))
    def test_raw_weights_are_positive_and_order_preserved(self, seed, models):
        ensemble, members = build_ensemble(seed, models)
        raw = ensemble.raw_weights
        assert (raw > 0).all()
        np.testing.assert_array_equal(raw, [w for _, _, w in members])
        # Normalization must not change relative weightings.
        np.testing.assert_allclose(
            ensemble.weights, raw / raw.sum(), atol=0, rtol=0
        )

    def test_nonpositive_weight_rejected(self):
        ensemble = EnsembleModel()
        probs = np.full((N_NODES, N_CLASSES), 1.0 / N_CLASSES)
        for bad in (0.0, -1.0):
            with pytest.raises(ConfigError):
                ensemble.add(probs, probs, bad)


class TestPermutationInvariance:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500), models=st.integers(2, 6))
    def test_predict_invariant_under_base_model_permutation(self, seed, models):
        _, members = build_ensemble(seed, models)
        rng = np.random.default_rng(seed + 1)
        order = rng.permutation(models)

        original, permuted = EnsembleModel(), EnsembleModel()
        for member in members:
            original.add(*member)
        for index in order:
            permuted.add(*members[index])

        np.testing.assert_array_equal(original.predict(), permuted.predict())
        # The underlying weighted averages agree up to summation order.
        np.testing.assert_allclose(original.probs(), permuted.probs(), atol=1e-12)
        np.testing.assert_allclose(
            original.embeddings(), permuted.embeddings(), atol=1e-10
        )


class TestAddMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500), models=st.integers(1, 8))
    def test_len_counts_every_add(self, seed, models):
        rng = np.random.default_rng(seed)
        ensemble = EnsembleModel()
        assert len(ensemble) == 0
        for t in range(models):
            probs = rng.dirichlet(np.ones(N_CLASSES), size=N_NODES)
            before = len(ensemble)
            ensemble.add(probs, probs, float(rng.uniform(0.1, 10.0)))
            assert len(ensemble) == before + 1
        assert len(ensemble) == models

    def test_failed_add_does_not_grow_the_ensemble(self):
        ensemble, _ = build_ensemble(0, 2)
        wrong_shape = np.full((N_NODES + 1, N_CLASSES), 1.0 / N_CLASSES)
        with pytest.raises(ShapeError):
            ensemble.add(wrong_shape, wrong_shape, 1.0)
        assert len(ensemble) == 2


class TestStateRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500), models=st.integers(1, 5))
    def test_checkpoint_round_trip_is_identity(self, seed, models):
        ensemble, _ = build_ensemble(seed, models)
        restored = EnsembleModel.from_state(ensemble.state())
        assert len(restored) == len(ensemble)
        np.testing.assert_array_equal(restored.raw_weights, ensemble.raw_weights)
        np.testing.assert_array_equal(restored.probs(), ensemble.probs())
        np.testing.assert_array_equal(restored.embeddings(), ensemble.embeddings())

    def test_inconsistent_state_rejected(self):
        ensemble, _ = build_ensemble(0, 2)
        state = ensemble.state()
        state["weights"] = state["weights"][:1]
        with pytest.raises(ShapeError):
            EnsembleModel.from_state(state)
