"""Documentation integrity: the docs must reference real code and files."""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


class TestDocsExist:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "docs/paper_mapping.md", "docs/api_overview.md"]
    )
    def test_doc_present_and_nonempty(self, name):
        path = REPO / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text()) > 500


class TestReadmeReferences:
    def test_examples_listed_in_readme_exist(self):
        readme = (REPO / "README.md").read_text()
        for match in re.findall(r"`(\w+\.py)`", readme):
            if (REPO / "examples" / match).exists():
                continue
            # Allow non-example file mentions (e.g. module names).
            assert match in ("cli.py", "io.py"), f"README references missing example {match}"

    def test_quickstart_snippet_imports_work(self):
        # The README's quickstart imports must exist on the package.
        import repro

        for symbol in ("cora_like", "RDDConfig", "train_rdd"):
            assert hasattr(repro, symbol)


class TestDesignReferences:
    def test_bench_files_mentioned_in_design_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        for match in re.findall(r"bench_\w+\.py", design):
            assert (REPO / "benchmarks" / match).exists(), f"DESIGN references missing {match}"

    def test_experiment_index_covers_all_paper_artifacts(self):
        design = (REPO / "DESIGN.md").read_text()
        for artifact in ("Figure 1", "Table 3", "Table 4", "Table 5", "Table 6",
                         "Figure 6", "Table 7", "Table 8", "Table 9"):
            assert artifact in design, f"DESIGN.md experiment index missing {artifact}"


class TestPaperMappingReferences:
    def test_mapped_modules_importable(self):
        mapping = (REPO / "docs" / "paper_mapping.md").read_text()
        modules = set(re.findall(r"`(repro\.[a-z_.]+)`", mapping))
        import importlib

        for dotted in sorted(modules):
            parts = dotted.split(".")
            # Try progressively shorter prefixes: entries may be attributes.
            for cut in range(len(parts), 1, -1):
                try:
                    module = importlib.import_module(".".join(parts[:cut]))
                    break
                except ModuleNotFoundError:
                    continue
            else:
                pytest.fail(f"paper_mapping references unimportable {dotted}")
            for attr in parts[cut:]:
                assert hasattr(module, attr), f"{dotted} attribute chain broken at {attr}"
                module = getattr(module, attr)
