"""Golden regression test: a frozen seeded RDD trajectory must not drift.

``tests/fixtures/golden_rdd_sbm.json`` (written by
``scripts/make_golden_fixtures.py``) records the full observable
trajectory of a small seeded RDD run on the tiny DC-SBM citation
stand-in: per-epoch losses and validation accuracies for every student,
base/ensemble accuracies, α-weights, and reliable-set sizes.

Replaying the identical configuration must reproduce that trajectory to
float round-trip precision.  If this test fails you either changed
numerics intentionally — rerun the fixture script and review the diff —
or introduced silent drift somewhere in the trainer/loss/reliability/
ensemble stack, which is exactly what this test exists to catch.
"""

import json
import pathlib
import sys

import numpy as np
import pytest

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "golden_rdd_sbm.json"

# JSON stores float64 exactly (repr round-trip), so the tolerance covers
# genuine numerical change only, not serialization noise.
RTOL = 1e-7


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def replay():
    # The generator script is the single source of truth for the run
    # configuration: import it so test and fixture can never disagree.
    sys.path.insert(0, str(pathlib.Path(__file__).parents[1] / "scripts"))
    try:
        import make_golden_fixtures
    finally:
        sys.path.pop(0)
    graph, result = make_golden_fixtures.run_golden()
    return make_golden_fixtures.snapshot(graph, result)


class TestDatasetIdentity:
    def test_graph_shape_is_frozen(self, golden, replay):
        assert replay["dataset"] == golden["dataset"]


class TestAccuracyTrajectory:
    def test_ensemble_accuracies(self, golden, replay):
        np.testing.assert_allclose(
            replay["ensemble_test_accuracy"], golden["ensemble_test_accuracy"], rtol=RTOL
        )
        np.testing.assert_allclose(
            replay["ensemble_val_accuracy"], golden["ensemble_val_accuracy"], rtol=RTOL
        )

    def test_base_accuracies_and_curve(self, golden, replay):
        np.testing.assert_allclose(
            replay["base_test_accuracies"], golden["base_test_accuracies"], rtol=RTOL
        )
        np.testing.assert_allclose(replay["ensemble_curve"], golden["ensemble_curve"], rtol=RTOL)

    def test_ensemble_weights(self, golden, replay):
        np.testing.assert_allclose(
            replay["ensemble_weights"], golden["ensemble_weights"], rtol=RTOL
        )


class TestPerEpochTrajectory:
    def test_student_count(self, golden, replay):
        assert len(replay["students"]) == len(golden["students"]) == 3

    def test_epoch_counts_exact(self, golden, replay):
        for mine, theirs in zip(replay["students"], golden["students"]):
            assert mine["epochs_run"] == theirs["epochs_run"]
            assert mine["best_epoch"] == theirs["best_epoch"]

    def test_loss_trajectories(self, golden, replay):
        for student, (mine, theirs) in enumerate(zip(replay["students"], golden["students"])):
            assert len(mine["history"]) == len(theirs["history"]), f"student {student}"
            for epoch, (a, b) in enumerate(zip(mine["history"], theirs["history"])):
                assert a["epoch"] == b["epoch"]
                np.testing.assert_allclose(
                    a["loss"], b["loss"], rtol=RTOL,
                    err_msg=f"loss drift: student {student}, epoch {epoch}",
                )
                np.testing.assert_allclose(
                    a["val_accuracy"], b["val_accuracy"], rtol=RTOL,
                    err_msg=f"val drift: student {student}, epoch {epoch}",
                )

    def test_student_accuracies(self, golden, replay):
        for mine, theirs in zip(replay["students"], golden["students"]):
            for key in ("train_accuracy", "val_accuracy", "test_accuracy"):
                np.testing.assert_allclose(mine[key], theirs[key], rtol=RTOL)


class TestReliabilityTrajectory:
    def test_reliable_set_sizes_exact(self, golden, replay):
        # Set sizes are integers: any drift here means the reliability
        # thresholds (Algorithms 1-2) changed behavior, not just bits.
        assert replay["reliability_history"] == golden["reliability_history"]
