"""Tests for the neural layers: Linear, GraphConvolution, GraphAttention, Dropout."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph.normalize import gcn_normalize
from repro.nn import Dropout, GraphAttention, GraphConvolution, Linear
from repro.nn.layers import _segment_softmax
from repro.tensor import Tensor, check_gradients, ops


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng)
        assert layer(np.ones((5, 4))).shape == (5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        out = layer(np.zeros((2, 4)))
        np.testing.assert_allclose(out.data, 0.0)

    def test_accepts_sparse_features(self, rng):
        layer = Linear(6, 2, rng)
        features = sp.random(4, 6, density=0.5, random_state=0, format="csr")
        dense_out = layer(features.toarray()).data
        sparse_out = layer(features).data
        np.testing.assert_allclose(dense_out, sparse_out)

    def test_gradcheck(self, rng):
        layer = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)))
        check_gradients(lambda: ops.sum(ops.mul(layer(x), layer(x))), layer.parameters())


class TestGraphConvolution:
    def test_identity_adjacency_reduces_to_linear(self, rng):
        layer = GraphConvolution(3, 2, rng)
        adj = sp.identity(4, format="csr")
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(adj, x).data, expected)

    def test_propagates_neighbor_information(self, rng):
        # Node 0's output must depend on node 1's features via the edge.
        adj = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        norm = gcn_normalize(adj)
        layer = GraphConvolution(2, 2, rng)
        x1 = np.array([[1.0, 0.0], [0.0, 0.0]])
        x2 = np.array([[1.0, 0.0], [5.0, 5.0]])
        out1 = layer(norm, x1).data
        out2 = layer(norm, x2).data
        assert not np.allclose(out1[0], out2[0])

    def test_gradcheck_through_propagation(self, rng):
        adj = gcn_normalize(sp.csr_matrix(np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)))
        layer = GraphConvolution(2, 2, rng)
        x = Tensor(rng.normal(size=(3, 2)))
        check_gradients(lambda: ops.sum(ops.mul(layer(adj, x), layer(adj, x))), layer.parameters())


class TestGraphAttention:
    def _ring(self, n=5):
        src = np.arange(n)
        dst = (src + 1) % n
        edge_src = np.concatenate([src, dst, np.arange(n)])
        edge_dst = np.concatenate([dst, src, np.arange(n)])
        return edge_src, edge_dst

    def test_output_shape(self, rng):
        layer = GraphAttention(4, 3, rng)
        edge_src, edge_dst = self._ring()
        out = layer(edge_src, edge_dst, rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_attention_weights_normalize_per_destination(self, rng):
        edge_src, edge_dst = self._ring()
        logits = Tensor(rng.normal(size=(len(edge_src), 1)), requires_grad=True)
        weights = _segment_softmax(logits, edge_dst, 5)
        sums = np.zeros(5)
        np.add.at(sums, edge_dst, weights.data.ravel())
        np.testing.assert_allclose(sums, np.ones(5))

    def test_segment_softmax_handles_extreme_logits(self, rng):
        seg = np.array([0, 0, 1])
        logits = Tensor(np.array([[1000.0], [1000.0], [-1000.0]]))
        weights = _segment_softmax(logits, seg, 2)
        np.testing.assert_allclose(weights.data.ravel(), [0.5, 0.5, 1.0])

    def test_gradcheck(self, rng):
        layer = GraphAttention(2, 2, rng)
        edge_src, edge_dst = self._ring(4)
        x = Tensor(rng.normal(size=(4, 2)))
        check_gradients(
            lambda: ops.sum(ops.mul(layer(edge_src, edge_dst, x), 2.0)),
            layer.parameters(),
            atol=1e-4,
        )


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng)
        layer.eval()
        x = Tensor(np.ones((3, 3)))
        assert layer(x) is x

    def test_train_mode_zeroes_and_rescales(self):
        layer = Dropout(0.4, np.random.default_rng(0))
        out = layer(Tensor(np.ones((300, 300))))
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 1.0 / 0.6)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_sparse_passthrough_in_eval(self, rng):
        layer = Dropout(0.5, rng)
        layer.eval()
        features = sp.identity(4, format="csr")
        assert layer(features) is features

    def test_sparse_dropout_preserves_expectation(self):
        layer = Dropout(0.5, np.random.default_rng(1))
        features = sp.csr_matrix(np.ones((100, 100)))
        out = layer(features)
        assert sp.issparse(out)
        assert out.sum() / (100 * 100) == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate_raises(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)
