"""Tests for Module/Parameter registration, modes, and state dicts."""

import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleList, Parameter
from repro.tensor import ops


class Toy(Module):
    def __init__(self, rng):
        super().__init__()
        self.layer = Linear(3, 2, rng)
        self.scale = Parameter(np.ones(1), name="scale")

    def forward(self, x):
        return ops.mul(self.layer(x), self.scale)


class TestRegistration:
    def test_parameters_discovered_recursively(self, rng):
        model = Toy(rng)
        names = dict(model.named_parameters())
        assert set(names) == {"layer.weight", "layer.bias", "scale"}

    def test_num_parameters(self, rng):
        model = Toy(rng)
        assert model.num_parameters() == 3 * 2 + 2 + 1

    def test_module_list_registers_children(self, rng):
        container = ModuleList([Linear(2, 2, rng), Linear(2, 2, rng)])
        assert len(container) == 2
        assert len(container.parameters()) == 4
        assert container[0] is list(iter(container))[0]

    def test_module_list_append(self, rng):
        container = ModuleList()
        container.append(Linear(2, 3, rng))
        assert len(container.parameters()) == 2

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestModes:
    def test_train_eval_propagate(self, rng):
        model = Toy(rng)
        model.eval()
        assert not model.training
        assert not model.layer.training
        model.train()
        assert model.layer.training

    def test_zero_grad_clears_all(self, rng):
        model = Toy(rng)
        out = ops.sum(model(np.ones((2, 3))))
        out.backward()
        assert model.layer.weight.grad is not None
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        model = Toy(rng)
        state = model.state_dict()
        original = model.layer.weight.data.copy()
        model.layer.weight.data += 5.0
        model.load_state_dict(state)
        np.testing.assert_allclose(model.layer.weight.data, original)

    def test_state_dict_is_a_copy(self, rng):
        model = Toy(rng)
        state = model.state_dict()
        state["scale"][0] = 99.0
        assert model.scale.data[0] == 1.0

    def test_missing_key_raises(self, rng):
        model = Toy(rng)
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self, rng):
        model = Toy(rng)
        state = model.state_dict()
        state["ghost"] = np.ones(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_wrong_shape_raises(self, rng):
        model = Toy(rng)
        state = model.state_dict()
        state["scale"] = np.ones(5)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_transfer_between_twin_models(self, rng):
        a = Toy(np.random.default_rng(0))
        b = Toy(np.random.default_rng(1))
        b.load_state_dict(a.state_dict())
        x = np.ones((2, 3))
        np.testing.assert_allclose(a(x).data, b(x).data)
