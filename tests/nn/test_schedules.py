"""Tests for the cosine γ schedule (Eq. 14) and early stopping."""

import math

import pytest

from repro.nn import EarlyStopping, cosine_annealing_gamma


class TestCosineAnnealingGamma:
    def test_starts_at_zero(self):
        assert cosine_annealing_gamma(1.0, 0, 100) == pytest.approx(0.0)

    def test_midpoint_equals_initial(self):
        assert cosine_annealing_gamma(2.0, 50, 100) == pytest.approx(2.0)

    def test_ends_at_twice_initial(self):
        assert cosine_annealing_gamma(1.5, 100, 100) == pytest.approx(3.0)

    def test_monotone_nondecreasing(self):
        values = [cosine_annealing_gamma(1.0, e, 50) for e in range(51)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_scales_linearly_with_initial(self):
        a = cosine_annealing_gamma(1.0, 30, 100)
        b = cosine_annealing_gamma(3.0, 30, 100)
        assert b == pytest.approx(3.0 * a)

    def test_epoch_clipping(self):
        assert cosine_annealing_gamma(1.0, -5, 100) == pytest.approx(0.0)
        assert cosine_annealing_gamma(1.0, 500, 100) == pytest.approx(2.0)

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            cosine_annealing_gamma(1.0, 1, 0)


class TestEarlyStopping:
    def test_no_stop_while_improving(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(0.1, 0)
        assert not stopper.update(0.2, 1)
        assert not stopper.update(0.3, 2)
        assert stopper.best_epoch == 2

    def test_stops_after_patience_bad_steps(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5, 0)
        assert not stopper.update(0.4, 1)
        assert stopper.update(0.4, 2)

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5, 0)
        stopper.update(0.4, 1)
        stopper.update(0.6, 2)  # reset
        assert not stopper.update(0.5, 3)
        assert stopper.update(0.5, 4)

    def test_equal_metric_counts_as_no_improvement(self):
        stopper = EarlyStopping(patience=1)
        stopper.update(0.5, 0)
        assert stopper.update(0.5, 1)

    def test_improved_flag(self):
        stopper = EarlyStopping(patience=3)
        stopper.update(0.5, 0)
        assert stopper.improved
        stopper.update(0.4, 1)
        assert not stopper.improved

    def test_best_metric_tracked(self):
        stopper = EarlyStopping(patience=5)
        for epoch, metric in enumerate([0.3, 0.8, 0.5]):
            stopper.update(metric, epoch)
        assert stopper.best_metric == pytest.approx(0.8)
        assert stopper.best_epoch == 1

    def test_rejects_bad_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestInitializers:
    def test_glorot_uniform_bounds(self, rng):
        from repro.nn import glorot_uniform

        w = glorot_uniform(rng, 30, 20)
        limit = math.sqrt(6.0 / 50)
        assert w.shape == (30, 20)
        assert w.min() >= -limit and w.max() <= limit

    def test_glorot_normal_std(self, rng):
        from repro.nn import glorot_normal

        w = glorot_normal(rng, 500, 500)
        assert w.std() == pytest.approx(math.sqrt(2.0 / 1000), rel=0.1)

    def test_he_uniform_bounds(self, rng):
        from repro.nn import he_uniform

        w = he_uniform(rng, 24, 10)
        limit = math.sqrt(6.0 / 24)
        assert abs(w).max() <= limit

    def test_zeros(self):
        from repro.nn import zeros

        assert not zeros((3, 3)).any()
