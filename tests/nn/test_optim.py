"""Tests for SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.nn import Adam, Parameter, SGD
from repro.tensor import ops


def quadratic_step(param, optimizer):
    """One optimization step of f(w) = ||w - 3||^2."""
    target = np.full_like(param.data, 3.0)
    diff = ops.sub(param, target)
    loss = ops.sum(ops.mul(diff, diff))
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    return loss.item()


class TestSGD:
    def test_single_step_direction(self):
        w = Parameter(np.zeros(2))
        opt = SGD([w], lr=0.1)
        quadratic_step(w, opt)
        assert np.all(w.data > 0)  # moved toward 3

    def test_converges_on_quadratic(self):
        w = Parameter(np.zeros(3))
        opt = SGD([w], lr=0.1)
        for _ in range(200):
            quadratic_step(w, opt)
        np.testing.assert_allclose(w.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        w_plain = Parameter(np.zeros(1))
        w_mom = Parameter(np.zeros(1))
        plain = SGD([w_plain], lr=0.01)
        mom = SGD([w_mom], lr=0.01, momentum=0.9)
        for _ in range(20):
            quadratic_step(w_plain, plain)
            quadratic_step(w_mom, mom)
        assert abs(w_mom.data[0] - 3.0) < abs(w_plain.data[0] - 3.0)

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.full(2, 10.0))
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        # Zero-gradient loss: only decay acts.
        loss = ops.sum(ops.mul(w, 0.0))
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert np.all(w.data < 10.0)

    def test_skips_parameters_without_grad(self):
        w = Parameter(np.ones(2))
        opt = SGD([w], lr=0.5)
        opt.step()  # no backward happened
        np.testing.assert_allclose(w.data, 1.0)

    def test_rejects_empty_parameter_list(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = Parameter(np.zeros(3))
        opt = Adam([w], lr=0.1)
        for _ in range(300):
            quadratic_step(w, opt)
        np.testing.assert_allclose(w.data, 3.0, atol=1e-2)

    def test_first_step_magnitude_close_to_lr(self):
        # Adam's bias correction makes the first step ≈ lr * sign(grad).
        w = Parameter(np.zeros(1))
        opt = Adam([w], lr=0.05)
        quadratic_step(w, opt)
        assert w.data[0] == pytest.approx(0.05, rel=1e-3)

    def test_weight_decay_applied(self):
        w_plain = Parameter(np.full(1, 5.0))
        w_decay = Parameter(np.full(1, 5.0))
        plain = Adam([w_plain], lr=0.01)
        decay = Adam([w_decay], lr=0.01, weight_decay=0.5)
        for _ in range(50):
            quadratic_step(w_plain, plain)
            quadratic_step(w_decay, decay)
        # Decay pulls the optimum below 3.
        assert w_decay.data[0] < w_plain.data[0]

    def test_invariant_to_gradient_scale(self):
        # Adam normalizes by the second moment: scaling the loss by 100
        # leaves the step size nearly unchanged.
        w_a = Parameter(np.zeros(1))
        w_b = Parameter(np.zeros(1))
        opt_a, opt_b = Adam([w_a], lr=0.1), Adam([w_b], lr=0.1)

        for w, opt, scale in ((w_a, opt_a, 1.0), (w_b, opt_b, 100.0)):
            diff = ops.sub(w, np.full(1, 3.0))
            loss = ops.mul(ops.sum(ops.mul(diff, diff)), scale)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert w_a.data[0] == pytest.approx(w_b.data[0], rel=1e-6)

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=-0.1)
