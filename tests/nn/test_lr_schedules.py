"""Tests for optimizer learning-rate schedules."""

import pytest

from repro.nn import cosine_decay_lr, step_decay_lr


class TestStepDecay:
    def test_initial_value(self):
        assert step_decay_lr(0.1, 0, step_size=10) == pytest.approx(0.1)

    def test_halves_each_step(self):
        assert step_decay_lr(0.1, 10, step_size=10) == pytest.approx(0.05)
        assert step_decay_lr(0.1, 25, step_size=10) == pytest.approx(0.025)

    def test_custom_factor(self):
        assert step_decay_lr(1.0, 3, step_size=1, factor=0.1) == pytest.approx(1e-3)

    def test_negative_epoch_clamped(self):
        assert step_decay_lr(0.1, -5, step_size=10) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            step_decay_lr(0.1, 0, step_size=0)
        with pytest.raises(ValueError):
            step_decay_lr(0.1, 0, step_size=5, factor=0.0)


class TestCosineDecay:
    def test_endpoints(self):
        assert cosine_decay_lr(0.1, 0, 100) == pytest.approx(0.1)
        assert cosine_decay_lr(0.1, 100, 100) == pytest.approx(0.0, abs=1e-15)

    def test_floor(self):
        assert cosine_decay_lr(0.1, 100, 100, floor=0.01) == pytest.approx(0.01)

    def test_monotone_decreasing(self):
        values = [cosine_decay_lr(0.1, e, 50) for e in range(51)]
        assert all(b <= a + 1e-15 for a, b in zip(values, values[1:]))

    def test_midpoint(self):
        assert cosine_decay_lr(0.2, 50, 100) == pytest.approx(0.1)

    def test_epoch_clamped(self):
        assert cosine_decay_lr(0.1, 1000, 100) == pytest.approx(0.0, abs=1e-15)

    def test_validation(self):
        with pytest.raises(ValueError):
            cosine_decay_lr(0.1, 0, 0)
