"""Tests for ResGCN, DenseGCN, JKNet, GAT, APPNP, and MLP."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import APPNP, GAT, GCN, JKNet, MLP, DenseGCN, ResGCN, shrinking_widths
from repro.training import Trainer, make_rng

ALL_MODELS = [
    ("resgcn", lambda g, rng: ResGCN(g.num_features, g.num_classes, rng, hidden=8, num_layers=3)),
    ("densegcn", lambda g, rng: DenseGCN(g.num_features, g.num_classes, rng, num_layers=3)),
    ("jknet", lambda g, rng: JKNet(g.num_features, g.num_classes, rng, num_layers=3)),
    ("gat", lambda g, rng: GAT(g.num_features, g.num_classes, rng, hidden=4, num_heads=2)),
    ("appnp", lambda g, rng: APPNP(g.num_features, g.num_classes, rng, hidden=8, k_steps=5)),
    ("mlp", lambda g, rng: MLP(g.num_features, g.num_classes, rng, hidden=8)),
]


class TestForwardShapes:
    @pytest.mark.parametrize("name,factory", ALL_MODELS)
    def test_logit_shape(self, tiny_graph, rng, name, factory):
        model = factory(tiny_graph, rng)
        logits = model(tiny_graph)
        assert logits.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    @pytest.mark.parametrize("name,factory", ALL_MODELS)
    def test_eval_deterministic(self, tiny_graph, rng, name, factory):
        model = factory(tiny_graph, rng)
        a = model.predict_logits(tiny_graph)
        b = model.predict_logits(tiny_graph)
        np.testing.assert_allclose(a, b)


class TestLearning:
    @pytest.mark.parametrize(
        "name,factory",
        [m for m in ALL_MODELS if m[0] != "mlp"],  # MLP tested separately
    )
    def test_beats_chance_on_two_block_task(self, tiny_graph, name, factory):
        model = factory(tiny_graph, make_rng(3))
        result = Trainer(max_epochs=120, patience=40).fit(model, tiny_graph)
        assert result.test_accuracy > 0.6, f"{name} failed to learn"

    def test_mlp_learns_from_features_alone(self, tiny_graph):
        # tiny_graph features are Gaussian class clusters — easy for an MLP.
        model = MLP(tiny_graph.num_features, tiny_graph.num_classes, make_rng(4), hidden=8)
        result = Trainer(max_epochs=120, patience=40).fit(model, tiny_graph)
        assert result.test_accuracy > 0.7


class TestConfigValidation:
    def test_resgcn_needs_two_layers(self, rng):
        with pytest.raises(ConfigError):
            ResGCN(4, 2, rng, num_layers=1)

    def test_densegcn_width_count(self, rng):
        with pytest.raises(ConfigError):
            DenseGCN(4, 2, rng, hidden=[8, 8], num_layers=2)

    def test_jknet_aggregation_validation(self, rng):
        with pytest.raises(ConfigError):
            JKNet(4, 2, rng, aggregation="median")

    def test_jknet_max_requires_uniform_widths(self, rng):
        with pytest.raises(ConfigError):
            JKNet(4, 2, rng, hidden=[8, 4], num_layers=3, aggregation="max")

    def test_gat_needs_positive_heads(self, rng):
        with pytest.raises(ConfigError):
            GAT(4, 2, rng, num_heads=0)

    def test_appnp_alpha_validation(self, rng):
        with pytest.raises(ConfigError):
            APPNP(4, 2, rng, alpha=0.0)

    def test_appnp_steps_validation(self, rng):
        with pytest.raises(ConfigError):
            APPNP(4, 2, rng, k_steps=0)

    def test_mlp_layers_validation(self, rng):
        with pytest.raises(ConfigError):
            MLP(4, 2, rng, num_layers=0)


class TestArchitectureSpecifics:
    def test_shrinking_widths_paper_example(self):
        # 6 layers → {90, 70, 50, 30, 10} hidden widths, as in §5.1.
        assert shrinking_widths(6) == [90, 70, 50, 30, 10]

    def test_shrinking_widths_floor(self):
        assert min(shrinking_widths(12)) >= 4

    def test_jknet_max_aggregation_runs(self, tiny_graph, rng):
        model = JKNet(
            tiny_graph.num_features, tiny_graph.num_classes, rng,
            hidden=8, num_layers=3, aggregation="max",
        )
        assert model(tiny_graph).shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_appnp_propagation_smooths_neighbors(self, tiny_graph, rng):
        # More propagation steps → predictions of adjacent nodes more alike.
        few = APPNP(tiny_graph.num_features, tiny_graph.num_classes, make_rng(5), k_steps=1)
        many = APPNP(tiny_graph.num_features, tiny_graph.num_classes, make_rng(5), k_steps=20)
        src, dst = tiny_graph.edge_list()

        def neighbor_gap(model):
            logits = model.predict_logits(tiny_graph)
            return np.linalg.norm(logits[src] - logits[dst], axis=1).mean()

        assert neighbor_gap(many) < neighbor_gap(few)

    def test_gat_multi_head_concatenation(self, tiny_graph, rng):
        model = GAT(tiny_graph.num_features, tiny_graph.num_classes, rng, hidden=3, num_heads=4)
        # Output layer consumes hidden * heads features.
        assert model.output.in_features == 12
