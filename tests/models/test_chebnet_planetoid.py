"""Tests for ChebNet and the Planetoid baseline."""

import numpy as np
import pytest

from repro.baselines import Planetoid
from repro.errors import ConfigError
from repro.models import ChebConvolution, ChebNet, rescaled_laplacian
from repro.training import Trainer, make_rng


class TestRescaledLaplacian:
    def test_shape_and_symmetry(self, tiny_graph):
        lap = rescaled_laplacian(tiny_graph.adjacency).toarray()
        assert lap.shape == (tiny_graph.num_nodes, tiny_graph.num_nodes)
        np.testing.assert_allclose(lap, lap.T, atol=1e-12)

    def test_eigenvalues_in_minus_one_one(self, tiny_graph):
        lap = rescaled_laplacian(tiny_graph.adjacency).toarray()
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() >= -1.0 - 1e-9
        assert eigenvalues.max() <= 1.0 + 1e-9


class TestChebConvolution:
    def test_order_one_is_linear_map(self, rng):
        import scipy.sparse as sp

        layer = ChebConvolution(3, 2, order=1, rng=rng)
        lap = sp.identity(4, format="csr")
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight_0.data + layer.bias.data
        np.testing.assert_allclose(layer(lap, x).data, expected)

    def test_parameter_count_scales_with_order(self, rng):
        small = ChebConvolution(3, 2, order=1, rng=rng)
        large = ChebConvolution(3, 2, order=3, rng=rng)
        assert large.num_parameters() == small.num_parameters() + 2 * 6

    def test_invalid_order(self, rng):
        with pytest.raises(ConfigError):
            ChebConvolution(3, 2, order=0, rng=rng)


class TestChebNet:
    def test_forward_shape(self, tiny_graph, rng):
        model = ChebNet(tiny_graph.num_features, tiny_graph.num_classes, rng, hidden=8)
        assert model(tiny_graph).shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_learns_two_block_task(self, tiny_graph):
        model = ChebNet(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        result = Trainer(max_epochs=100, patience=40).fit(model, tiny_graph)
        assert result.test_accuracy > 0.6

    def test_laplacian_cached_per_graph(self, tiny_graph, rng):
        model = ChebNet(tiny_graph.num_features, tiny_graph.num_classes, rng, hidden=8)
        model(tiny_graph)
        lap = model._laplacian
        model(tiny_graph)
        assert model._laplacian is lap


class TestPlanetoid:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Planetoid(supervised_ratio=2.0)
        with pytest.raises(ConfigError):
            Planetoid(window=0)
        with pytest.raises(ConfigError):
            Planetoid(walk_length=1)

    def test_context_pairs_are_valid_nodes(self, tiny_graph, rng):
        method = Planetoid(epochs=1)
        src, ctx = method._context_pairs(tiny_graph, rng)
        assert len(src) == len(ctx)
        assert src.max() < tiny_graph.num_nodes
        assert ctx.max() < tiny_graph.num_nodes

    def test_supervised_pairs_share_labels(self, tiny_graph, rng):
        # With ratio 1.0 relative to zero walk pairs we can't isolate them,
        # so check statistically: a large share of pairs connect
        # same-labeled nodes on a homophilous graph.
        method = Planetoid(epochs=1, supervised_ratio=1.0)
        src, ctx = method._context_pairs(tiny_graph, rng)
        same = (tiny_graph.labels[src] == tiny_graph.labels[ctx]).mean()
        assert same > 0.6

    def test_learns_two_block_task(self, tiny_graph):
        result = Planetoid(epochs=30, embed_dim=8, hidden=8).fit(tiny_graph, seed=0)
        assert result.test_accuracy > 0.6
        assert result.wall_time_s > 0

    def test_deterministic_per_seed(self, tiny_graph):
        a = Planetoid(epochs=5, embed_dim=8, hidden=8).fit(tiny_graph, seed=3)
        b = Planetoid(epochs=5, embed_dim=8, hidden=8).fit(tiny_graph, seed=3)
        assert a.test_accuracy == b.test_accuracy
