"""Tests for the extended model zoo: SGC, GraphSAGE, NGCN, DGCN."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import DGCN, NGCN, SGC, GraphSAGE, ppmi_matrix
from repro.training import Trainer, make_rng

EXTENDED = [
    ("sgc", lambda g, rng: SGC(g.num_features, g.num_classes, rng, k_hops=2)),
    ("graphsage", lambda g, rng: GraphSAGE(g.num_features, g.num_classes, rng, hidden=8)),
    ("ngcn", lambda g, rng: NGCN(g.num_features, g.num_classes, rng, hidden=8, num_scales=2)),
    ("dgcn", lambda g, rng: DGCN(g.num_features, g.num_classes, rng, hidden=8)),
]


class TestForward:
    @pytest.mark.parametrize("name,factory", EXTENDED)
    def test_logit_shape(self, tiny_graph, rng, name, factory):
        model = factory(tiny_graph, rng)
        assert model(tiny_graph).shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    @pytest.mark.parametrize("name,factory", EXTENDED)
    def test_learns_two_block_task(self, tiny_graph, name, factory):
        model = factory(tiny_graph, make_rng(0))
        result = Trainer(max_epochs=100, patience=40).fit(model, tiny_graph)
        assert result.test_accuracy > 0.6, f"{name} failed to learn"


class TestSGC:
    def test_propagated_features_cached_per_graph(self, tiny_graph, rng):
        model = SGC(tiny_graph.num_features, tiny_graph.num_classes, rng)
        first = model._propagated_features(tiny_graph)
        second = model._propagated_features(tiny_graph)
        assert first is second

    def test_more_hops_smooth_more(self, tiny_graph, rng):
        shallow = SGC(tiny_graph.num_features, tiny_graph.num_classes, rng, k_hops=1)
        deep = SGC(tiny_graph.num_features, tiny_graph.num_classes, rng, k_hops=8)
        var_shallow = shallow._propagated_features(tiny_graph).var(axis=0).mean()
        var_deep = deep._propagated_features(tiny_graph).var(axis=0).mean()
        assert var_deep < var_shallow

    def test_invalid_hops(self, rng):
        with pytest.raises(ConfigError):
            SGC(4, 2, rng, k_hops=0)


class TestGraphSAGE:
    def test_invalid_layers(self, rng):
        with pytest.raises(ConfigError):
            GraphSAGE(4, 2, rng, num_layers=0)

    def test_layer_consumes_concatenated_input(self, tiny_graph, rng):
        model = GraphSAGE(tiny_graph.num_features, tiny_graph.num_classes, rng, hidden=8)
        assert model.layers[0].in_features == 2 * tiny_graph.num_features


class TestNGCN:
    def test_invalid_scales(self, rng):
        with pytest.raises(ConfigError):
            NGCN(4, 2, rng, num_scales=0)

    def test_single_scale_runs(self, tiny_graph, rng):
        model = NGCN(tiny_graph.num_features, tiny_graph.num_classes, rng, num_scales=1)
        assert model(tiny_graph).shape[1] == tiny_graph.num_classes


class TestDGCN:
    def test_ppmi_properties(self, tiny_graph):
        ppmi = ppmi_matrix(tiny_graph.adjacency, walk_length=3)
        dense = ppmi.toarray()
        assert dense.shape == (tiny_graph.num_nodes, tiny_graph.num_nodes)
        assert (dense >= 0).all()
        # PPMI of a homophilous graph keeps most mass within communities.
        labels = tiny_graph.labels
        same = dense[np.ix_(labels == 0, labels == 0)].sum() + dense[np.ix_(labels == 1, labels == 1)].sum()
        cross = dense[np.ix_(labels == 0, labels == 1)].sum() * 2
        assert same > cross

    def test_ppmi_cached_per_graph(self, tiny_graph, rng):
        model = DGCN(tiny_graph.num_features, tiny_graph.num_classes, rng)
        model(tiny_graph)
        first = model._ppmi
        model(tiny_graph)
        assert model._ppmi is first

    def test_invalid_blend(self, rng):
        with pytest.raises(ConfigError):
            DGCN(4, 2, rng, blend=1.5)

    def test_invalid_walk_length(self, tiny_graph):
        with pytest.raises(ConfigError):
            ppmi_matrix(tiny_graph.adjacency, walk_length=0)

    def test_blend_extremes_differ(self, tiny_graph):
        local = DGCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), blend=1.0)
        dual = DGCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), blend=0.0)
        a = local.predict_logits(tiny_graph)
        b = dual.predict_logits(tiny_graph)
        assert not np.allclose(a, b)
