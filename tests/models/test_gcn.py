"""Tests for the GCN base model and GraphModel interface."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import GCN
from repro.models.base import softmax_rows
from repro.training import Trainer, make_rng


class TestShapes:
    def test_logits_shape(self, tiny_graph, rng):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, rng)
        logits = model(tiny_graph)
        assert logits.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_deeper_configurations(self, tiny_graph, rng):
        for layers in (1, 2, 3, 4):
            model = GCN(tiny_graph.num_features, tiny_graph.num_classes, rng, num_layers=layers)
            assert model(tiny_graph).shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_explicit_hidden_widths(self, tiny_graph, rng):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, rng, hidden=[32, 8], num_layers=3)
        assert model(tiny_graph).shape[1] == tiny_graph.num_classes

    def test_wrong_width_count_raises(self, rng):
        with pytest.raises(ConfigError):
            GCN(4, 2, rng, hidden=[8], num_layers=3)

    def test_zero_layers_raises(self, rng):
        with pytest.raises(ConfigError):
            GCN(4, 2, rng, num_layers=0)


class TestPredictionAPI:
    def test_predict_logits_is_deterministic_in_eval(self, tiny_graph, rng):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, rng, dropout=0.5)
        a = model.predict_logits(tiny_graph)
        b = model.predict_logits(tiny_graph)
        np.testing.assert_allclose(a, b)

    def test_predict_logits_restores_training_mode(self, tiny_graph, rng):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, rng)
        model.train()
        model.predict_logits(tiny_graph)
        assert model.training

    def test_predict_proba_rows_sum_to_one(self, tiny_graph, rng):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, rng)
        probs = model.predict_proba(tiny_graph)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(tiny_graph.num_nodes))

    def test_predict_returns_classes(self, tiny_graph, rng):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, rng)
        preds = model.predict(tiny_graph)
        assert preds.shape == (tiny_graph.num_nodes,)
        assert set(np.unique(preds)) <= set(range(tiny_graph.num_classes))

    def test_softmax_rows_helper(self):
        probs = softmax_rows(np.array([[0.0, 0.0], [10.0, -10.0]]))
        np.testing.assert_allclose(probs.sum(axis=1), [1.0, 1.0])
        assert probs[1, 0] > 0.99


class TestLearning:
    def test_learns_two_block_task(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        result = Trainer(max_epochs=120, patience=30).fit(model, tiny_graph)
        assert result.test_accuracy >= 0.85

    def test_training_reduces_loss(self, tiny_graph):
        from repro.tensor import ops
        from repro.tensor.functional import masked_cross_entropy

        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(1), dropout=0.0)

        def loss_value():
            logits = model(tiny_graph)
            return masked_cross_entropy(
                ops.log_softmax(logits, axis=1), tiny_graph.labels, tiny_graph.train_index
            ).item()

        before = loss_value()
        Trainer(max_epochs=50, patience=50).fit(model, tiny_graph)
        model.eval()
        assert loss_value() < before

    def test_propagation_uses_graph_structure(self, tiny_graph, rng):
        # Shuffling the adjacency (random graph, same features) should hurt:
        # accuracy with the true structure exceeds chance clearly.
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(2), hidden=8)
        result = Trainer(max_epochs=100, patience=30).fit(model, tiny_graph)
        assert result.test_accuracy > 0.6
