"""Correctness of the sampled minibatch forward pass.

With full fanout (≥ max degree) and dropout disabled, the sampled
forward must reproduce the exact full-batch GraphSAGE computation for
the batch nodes — a strong equivalence check on the block machinery.
"""

import numpy as np
import pytest

from repro.graph.sampling import build_blocks
from repro.models import GraphSAGE
from repro.models.minibatch_sage import MiniBatchSAGETrainer
from repro.training import make_rng


class TestSampledForwardEquivalence:
    def test_full_fanout_matches_full_batch(self, tiny_graph):
        max_degree = int(tiny_graph.degrees().max())
        model = GraphSAGE(
            tiny_graph.num_features, tiny_graph.num_classes, make_rng(0),
            hidden=8, num_layers=2, dropout=0.0,
        )
        model.eval()
        full_logits = model(tiny_graph).data

        trainer = MiniBatchSAGETrainer(fanouts=(max_degree, max_degree))
        batch = tiny_graph.train_index[:5]
        blocks = build_blocks(
            tiny_graph.adjacency, batch, (max_degree, max_degree), make_rng(1)
        )
        sampled_logits = trainer._forward_blocks(model, tiny_graph, blocks).data

        np.testing.assert_allclose(
            sampled_logits, full_logits[blocks[-1].output_nodes], atol=1e-10
        )

    def test_partial_fanout_approximates_full_batch(self, tiny_graph):
        model = GraphSAGE(
            tiny_graph.num_features, tiny_graph.num_classes, make_rng(0),
            hidden=8, num_layers=2, dropout=0.0,
        )
        model.eval()
        full_logits = model(tiny_graph).data

        trainer = MiniBatchSAGETrainer(fanouts=(3, 3))
        batch = tiny_graph.train_index[:5]
        blocks = build_blocks(tiny_graph.adjacency, batch, (3, 3), make_rng(2))
        sampled = trainer._forward_blocks(model, tiny_graph, blocks).data
        reference = full_logits[blocks[-1].output_nodes]
        # Sampling noise is bounded: predictions correlate with the exact ones.
        correlation = np.corrcoef(sampled.ravel(), reference.ravel())[0, 1]
        assert correlation > 0.6
