"""Tests for the LGCN and GPNN baselines."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import GPNN, LGCN, k_largest_neighbor_features, partition_graph, split_propagation_matrices
from repro.training import Trainer, make_rng


class TestKLargestSelection:
    def test_values_come_from_neighbors(self, tiny_graph):
        values = np.random.default_rng(0).normal(size=(tiny_graph.num_nodes, 3))
        out = k_largest_neighbor_features(tiny_graph.adjacency, values, k=2)
        assert out.shape == (tiny_graph.num_nodes, 2, 3)
        csr = tiny_graph.adjacency.tocsr()
        node = int(tiny_graph.train_index[0])
        neighbors = csr.indices[csr.indptr[node] : csr.indptr[node + 1]]
        for dim in range(3):
            column = out[node, :, dim]
            pool = set(np.round(values[neighbors, dim], 10)) | {0.0}
            assert all(np.round(v, 10) in pool for v in column)

    def test_descending_order(self):
        from repro.graph import build_adjacency

        adj = build_adjacency(4, np.array([[0, 1], [0, 2], [0, 3]]))
        values = np.array([[0.0], [3.0], [1.0], [2.0]])
        out = k_largest_neighbor_features(adj, values, k=3)
        np.testing.assert_allclose(out[0, :, 0], [3.0, 2.0, 1.0])

    def test_zero_padding_for_low_degree(self):
        from repro.graph import build_adjacency

        adj = build_adjacency(3, np.array([[0, 1]]))
        values = np.ones((3, 2))
        out = k_largest_neighbor_features(adj, values, k=4)
        np.testing.assert_allclose(out[0, 0], [1.0, 1.0])
        np.testing.assert_allclose(out[0, 1:], 0.0)

    def test_invalid_k(self, tiny_graph):
        with pytest.raises(ConfigError):
            k_largest_neighbor_features(tiny_graph.adjacency, np.ones((tiny_graph.num_nodes, 2)), k=0)


class TestKLargestSelectModule:
    def test_forward_matches_numpy_reference(self, tiny_graph, rng):
        from repro.models.lgcn import _KLargestSelect
        from repro.tensor import Tensor

        values = rng.normal(size=(tiny_graph.num_nodes, 5))
        select = _KLargestSelect(k=3)
        out = select(tiny_graph.adjacency, Tensor(values)).data
        reference = k_largest_neighbor_features(tiny_graph.adjacency, values, k=3)
        # Same multiset of selected values per (node, dim); low-degree
        # padding is 0.0 in both.
        np.testing.assert_allclose(np.sort(out, axis=1), np.sort(reference, axis=1), atol=1e-12)

    def test_gradient_reaches_selected_rows_only(self, rng):
        from repro.graph import build_adjacency
        from repro.models.lgcn import _KLargestSelect
        from repro.tensor import Tensor, ops

        # Star: node 0 sees nodes 1..4; with k=2 only the top-2 get grads.
        adj = build_adjacency(5, np.array([[0, i] for i in range(1, 5)]))
        values = Tensor(np.array([[0.0], [4.0], [3.0], [2.0], [1.0]]), requires_grad=True)
        select = _KLargestSelect(k=2)
        out = select(adj, values)
        # Only node 0's selection matters for this check.
        ops.sum(ops.gather(out, np.array([0]))).backward()
        grads = values.grad.ravel()
        assert grads[1] > 0 and grads[2] > 0   # top-2 neighbors of node 0
        assert grads[3] == 0 and grads[4] == 0

    def test_table_cached_per_adjacency(self, tiny_graph, rng):
        from repro.models.lgcn import _KLargestSelect
        from repro.tensor import Tensor

        select = _KLargestSelect(k=2)
        values = Tensor(rng.normal(size=(tiny_graph.num_nodes, 3)))
        select(tiny_graph.adjacency, values)
        table = select._neighbor_table
        select(tiny_graph.adjacency, values)
        assert select._neighbor_table is table


class TestLGCN:
    def test_forward_shape(self, tiny_graph, rng):
        model = LGCN(tiny_graph.num_features, tiny_graph.num_classes, rng, hidden=8, k=3)
        assert model(tiny_graph).shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_learns_two_block_task(self, tiny_graph):
        model = LGCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8, k=3)
        result = Trainer(max_epochs=100, patience=40).fit(model, tiny_graph)
        assert result.test_accuracy > 0.6

    def test_invalid_k(self, rng):
        with pytest.raises(ConfigError):
            LGCN(4, 2, rng, k=0)

    def test_gradients_flow_to_all_parameters(self, tiny_graph, rng):
        model = LGCN(tiny_graph.num_features, tiny_graph.num_classes, rng, hidden=8, k=3)
        from repro.tensor import ops

        loss = ops.mean(ops.mul(model(tiny_graph), model(tiny_graph)))
        loss.backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert all(grads)


class TestPartitioning:
    def test_partition_count_respected(self, tiny_graph):
        assignment = partition_graph(tiny_graph.adjacency, num_partitions=3)
        assert len(assignment) == tiny_graph.num_nodes
        assert len(np.unique(assignment)) <= 3

    def test_partitions_align_with_communities(self, tiny_graph):
        # On a two-block graph, 2 partitions should largely match labels.
        assignment = partition_graph(tiny_graph.adjacency, num_partitions=2)
        labels = tiny_graph.labels
        agreement = max(
            (assignment == labels).mean(), (assignment == 1 - labels).mean()
        )
        assert agreement > 0.8

    def test_invalid_partitions(self, tiny_graph):
        with pytest.raises(ConfigError):
            partition_graph(tiny_graph.adjacency, num_partitions=0)

    def test_split_matrices_cover_all_edges(self, tiny_graph):
        assignment = partition_graph(tiny_graph.adjacency, num_partitions=2)
        intra, inter = split_propagation_matrices(tiny_graph.adjacency, assignment)
        # Both normalized with self loops → rows well defined.
        assert intra.shape == inter.shape == tiny_graph.adjacency.shape
        # Off-diagonal structure is disjoint between the halves.
        intra_nd = intra.copy()
        intra_nd.setdiag(0)
        inter_nd = inter.copy()
        inter_nd.setdiag(0)
        overlap = intra_nd.multiply(inter_nd)
        assert overlap.nnz == 0


class TestGPNN:
    def test_forward_shape(self, tiny_graph, rng):
        model = GPNN(tiny_graph.num_features, tiny_graph.num_classes, rng, hidden=8, num_partitions=2)
        assert model(tiny_graph).shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_learns_two_block_task(self, tiny_graph):
        model = GPNN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0),
                     hidden=8, num_partitions=2)
        result = Trainer(max_epochs=100, patience=40).fit(model, tiny_graph)
        assert result.test_accuracy > 0.6

    def test_partition_matrices_cached(self, tiny_graph, rng):
        model = GPNN(tiny_graph.num_features, tiny_graph.num_classes, rng, hidden=8)
        model(tiny_graph)
        intra = model._intra
        model(tiny_graph)
        assert model._intra is intra
