"""Vectorized CSR neighbor sampling: semantics, validation, determinism."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import build_adjacency
from repro.sampling import NeighborSampler, check_node_ids, layerwise_neighborhood, sample_adjacent


def star_graph(leaves=8):
    edges = np.array([[0, i] for i in range(1, leaves + 1)])
    return build_adjacency(leaves + 1, edges)


def csr_arrays(adjacency):
    csr = adjacency.tocsr()
    return csr.indptr.astype(np.int64), csr.indices.astype(np.int64)


class TestCheckNodeIds:
    @pytest.mark.parametrize("dtype", [np.int8, np.int16, np.int32, np.int64, np.uint8, np.uint32])
    def test_accepts_any_integer_dtype(self, dtype):
        out = check_node_ids(np.array([0, 3, 7], dtype=dtype), 10)
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [0, 3, 7])

    def test_accepts_python_int_lists(self):
        out = check_node_ids([1, 2], 5)
        assert out.dtype == np.int64

    def test_rejects_fractional_floats(self):
        with pytest.raises(GraphError, match="must be integers"):
            check_node_ids(np.array([0.5, 1.0]), 10)

    def test_rejects_strings(self):
        with pytest.raises(GraphError, match="must be integers"):
            check_node_ids(np.array(["a"]), 10)

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError, match=r"in \[0, 10\)"):
            check_node_ids(np.array([0, 10]), 10)

    def test_rejects_negative(self):
        with pytest.raises(GraphError, match=r"in \[0, 10\)"):
            check_node_ids(np.array([-1]), 10)

    def test_empty_is_fine(self):
        assert check_node_ids(np.array([], dtype=np.int64), 10).size == 0


class TestSampleAdjacent:
    def test_fanout_caps_and_distinct(self, rng):
        indptr, indices = csr_arrays(star_graph(10))
        src, dst, counts = sample_adjacent(indptr, indices, np.array([0]), 4, rng)
        assert len(src) == 4 and len(set(src.tolist())) == 4
        np.testing.assert_array_equal(dst, [0, 0, 0, 0])
        np.testing.assert_array_equal(counts, [4])
        assert set(src.tolist()) <= set(range(1, 11))

    def test_under_fanout_keeps_all_neighbors_and_no_rng(self):
        indptr, indices = csr_arrays(star_graph(3))
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        src, _, counts = sample_adjacent(indptr, indices, np.array([0]), 10, rng)
        assert sorted(src.tolist()) == [1, 2, 3]
        np.testing.assert_array_equal(counts, [3])
        # Full-fanout rows must consume no randomness: determinism of
        # full-fanout builds depends on it.
        assert rng.bit_generator.state == before

    def test_grouped_by_seed_order(self, rng):
        adj = build_adjacency(5, np.array([[0, 1], [0, 2], [3, 4]]))
        indptr, indices = csr_arrays(adj)
        src, dst, counts = sample_adjacent(indptr, indices, np.array([3, 0]), 10, rng)
        np.testing.assert_array_equal(counts, [1, 2])
        np.testing.assert_array_equal(dst, [3, 0, 0])
        assert src[0] == 4 and sorted(src[1:].tolist()) == [1, 2]

    def test_isolated_self_edges_flag(self, rng):
        adj = build_adjacency(3, np.array([[0, 1]]))
        indptr, indices = csr_arrays(adj)
        src, dst, counts = sample_adjacent(
            indptr, indices, np.array([2]), 4, rng, isolated_self_edges=True
        )
        np.testing.assert_array_equal(src, [2])
        np.testing.assert_array_equal(dst, [2])
        # counts report *sampled* neighbors: the self edge is not one.
        np.testing.assert_array_equal(counts, [0])

    def test_isolated_without_flag_contributes_nothing(self, rng):
        adj = build_adjacency(3, np.array([[0, 1]]))
        indptr, indices = csr_arrays(adj)
        src, dst, counts = sample_adjacent(indptr, indices, np.array([2]), 4, rng)
        assert src.size == 0 and dst.size == 0
        np.testing.assert_array_equal(counts, [0])

    def test_invalid_fanout(self, rng):
        indptr, indices = csr_arrays(star_graph())
        with pytest.raises(GraphError, match="fanout"):
            sample_adjacent(indptr, indices, np.array([0]), 0, rng)

    def test_weighted_sampling_prefers_heavy_neighbors(self):
        adj = star_graph(20)
        indptr, indices = csr_arrays(adj)
        weights = np.ones(21)
        weights[1] = 200.0  # leaf 1 is ~200x more likely per draw
        rng = np.random.default_rng(7)
        hits = 0
        trials = 200
        for _ in range(trials):
            src, _, _ = sample_adjacent(indptr, indices, np.array([0]), 2, rng, weights=weights)
            hits += int(1 in src)
        # Uniform sampling keeps leaf 1 with p = 2/20; the heavy weight
        # pushes that to ~1.  150/200 is > 6 sigma from uniform.
        assert hits > 150

    def test_weighted_sampling_stays_without_replacement(self):
        indptr, indices = csr_arrays(star_graph(10))
        weights = np.ones(11)
        weights[5] = 1000.0
        rng = np.random.default_rng(3)
        for _ in range(20):
            src, _, _ = sample_adjacent(indptr, indices, np.array([0]), 4, rng, weights=weights)
            assert len(set(src.tolist())) == 4


class TestNeighborSampler:
    def test_deterministic_given_seed(self):
        adj = star_graph(30)
        a = NeighborSampler(adj, seed=11).sample(np.array([0]), 5)
        b = NeighborSampler(adj, seed=11).sample(np.array([0]), 5)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_different_seeds_differ(self):
        adj = star_graph(30)
        a = NeighborSampler(adj, seed=0).sample(np.array([0]), 5)[0]
        b = NeighborSampler(adj, seed=1).sample(np.array([0]), 5)[0]
        assert sorted(a.tolist()) != sorted(b.tolist())

    def test_validates_node_ids(self):
        sampler = NeighborSampler(star_graph(4))
        with pytest.raises(GraphError):
            sampler.sample(np.array([99]), 2)

    def test_set_weights_validation(self):
        sampler = NeighborSampler(star_graph(4))
        with pytest.raises(GraphError, match="shape"):
            sampler.set_weights(np.ones(3))
        with pytest.raises(GraphError, match="positive"):
            sampler.set_weights(np.zeros(5))
        sampler.set_weights(np.ones(5))
        sampler.set_weights(None)  # clearing is allowed

    def test_accepts_int32_ids(self):
        sampler = NeighborSampler(star_graph(6))
        src, _, _ = sampler.sample(np.array([0], dtype=np.int32), 3)
        assert len(src) == 3


class TestLayerwiseNeighborhood:
    def test_contains_seeds_and_is_sorted(self, tiny_graph):
        rng = np.random.default_rng(0)
        seeds = tiny_graph.train_index[:3]
        context = layerwise_neighborhood(tiny_graph.adjacency, seeds, 3, 2, rng)
        assert np.all(np.isin(seeds, context))
        np.testing.assert_array_equal(context, np.sort(context))
        assert len(np.unique(context)) == len(context)

    def test_full_fanout_reaches_exact_k_hop_ball(self):
        # Path graph 0-1-2-3-4: 2 hops from node 0 reach {0, 1, 2}.
        adj = build_adjacency(5, np.array([[i, i + 1] for i in range(4)]))
        context = layerwise_neighborhood(adj, np.array([0]), 10, 2, np.random.default_rng(0))
        np.testing.assert_array_equal(context, [0, 1, 2])

    def test_deterministic_for_equal_rng(self, tiny_graph):
        seeds = tiny_graph.train_index[:4]
        a = layerwise_neighborhood(tiny_graph.adjacency, seeds, 2, 2, np.random.default_rng(5))
        b = layerwise_neighborhood(tiny_graph.adjacency, seeds, 2, 2, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_zero_hops_returns_seeds(self, tiny_graph):
        seeds = np.array([4, 2, 2])
        context = layerwise_neighborhood(tiny_graph.adjacency, seeds, 3, 0, np.random.default_rng(0))
        np.testing.assert_array_equal(context, [2, 4])
