"""Block construction: chaining invariants, full-fanout Â parity, batching.

The load-bearing property here is *full-fanout parity*: when the fanout
covers every neighbor, each block row must be **bitwise** equal to the
corresponding row of the global ``gcn_normalize`` output under local
renumbering.  The differential tests (sampled training == full-batch
training) in ``tests/training/test_sampled.py`` rest on this identity.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import build_adjacency
from repro.graph.normalize import gcn_normalize
from repro.sampling import BlockBuilder, ItemSampler


def random_graph(num_nodes, edge_prob, seed):
    """Random symmetric adjacency with no isolated nodes (ring + noise)."""
    rng = np.random.default_rng(seed)
    ring = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    upper = [(i, j) for i in range(num_nodes) for j in range(i + 1, num_nodes)
             if rng.random() < edge_prob]
    return build_adjacency(num_nodes, np.asarray(ring + upper))


class TestBlockStructure:
    def test_blocks_chain(self, tiny_graph):
        builder = BlockBuilder(tiny_graph.adjacency, (3, 3), seed=0)
        batch = builder.build(tiny_graph.train_index[:6])
        assert len(batch.blocks) == 2
        np.testing.assert_array_equal(
            batch.blocks[0].output_nodes, batch.blocks[1].input_nodes
        )
        np.testing.assert_array_equal(batch.blocks[-1].output_nodes, batch.seeds)
        np.testing.assert_array_equal(batch.input_nodes, batch.blocks[0].input_nodes)

    def test_outputs_are_input_prefix(self, tiny_graph):
        builder = BlockBuilder(tiny_graph.adjacency, (3, 3), seed=0)
        batch = builder.build(tiny_graph.train_index[:6])
        for block in batch.blocks:
            n_out = len(block.output_nodes)
            np.testing.assert_array_equal(block.input_nodes[:n_out], block.output_nodes)
            assert block.adjacency.shape == (n_out, len(block.input_nodes))

    def test_seeds_are_sorted_unique(self, tiny_graph):
        builder = BlockBuilder(tiny_graph.adjacency, (2,), seed=0)
        batch = builder.build(np.array([5, 3, 5, 1]))
        np.testing.assert_array_equal(batch.seeds, [1, 3, 5])

    def test_rows_sum_to_at_most_global_row_sum(self, tiny_graph):
        # Sampled rows are unbiased estimates: self loop + rescaled
        # neighbor slice; every entry positive, rows canonical CSR.
        builder = BlockBuilder(tiny_graph.adjacency, (2, 2), seed=0)
        batch = builder.build(tiny_graph.train_index[:6])
        for block in batch.blocks:
            assert (block.adjacency.data > 0).all()
            assert block.adjacency.has_sorted_indices

    def test_fanout_validation(self, tiny_graph):
        with pytest.raises(GraphError):
            BlockBuilder(tiny_graph.adjacency, ())
        with pytest.raises(GraphError):
            BlockBuilder(tiny_graph.adjacency, (3, 0))

    def test_deterministic_given_seed(self, tiny_graph):
        seeds = tiny_graph.train_index[:5]
        a = BlockBuilder(tiny_graph.adjacency, (2, 2), seed=9).build(seeds)
        b = BlockBuilder(tiny_graph.adjacency, (2, 2), seed=9).build(seeds)
        for x, y in zip(a.blocks, b.blocks):
            np.testing.assert_array_equal(x.input_nodes, y.input_nodes)
            np.testing.assert_array_equal(x.adjacency.toarray(), y.adjacency.toarray())

    def test_buffers_are_reused_across_builds(self, tiny_graph):
        # The lease contract: a block is valid only until the next build.
        builder = BlockBuilder(tiny_graph.adjacency, (3,), seed=0)
        first = builder.build(tiny_graph.train_index[:6])
        data_before = first.blocks[0].adjacency.data
        builder.build(tiny_graph.train_index[6:12])
        # Same (grown-once) backing buffer — the pool leased it again.
        assert data_before.base is not None
        second_data = builder.build(tiny_graph.train_index[:6]).blocks[0].adjacency.data
        assert second_data.base is data_before.base


def assert_full_fanout_rows_match_global(adjacency, seeds, num_layers=2):
    """Every block row equals the global Â row, bitwise, under renumbering."""
    max_deg = int(np.diff(adjacency.tocsr().indptr).max())
    a_hat = gcn_normalize(adjacency).toarray()
    builder = BlockBuilder(adjacency, (max_deg,) * num_layers, seed=0)
    batch = builder.build(seeds)
    for block in batch.blocks:
        dense = block.adjacency.toarray()
        for local_row, node in enumerate(block.output_nodes):
            global_row = np.zeros(adjacency.shape[1])
            global_row[block.input_nodes] = dense[local_row]
            # Bitwise: full fanout implies rescale == 1.0 exactly and the
            # same float expression as gcn_normalize per entry.
            np.testing.assert_array_equal(global_row, a_hat[node])


class TestFullFanoutParity:
    def test_two_block_graph(self, tiny_graph):
        assert_full_fanout_rows_match_global(tiny_graph.adjacency, tiny_graph.train_index[:8])

    def test_single_seed(self, tiny_graph):
        assert_full_fanout_rows_match_global(tiny_graph.adjacency, np.array([0]))

    @settings(max_examples=25, deadline=None)
    @given(
        num_nodes=st.integers(4, 24),
        edge_prob=st.floats(0.0, 0.5),
        graph_seed=st.integers(0, 1000),
        seed_seed=st.integers(0, 1000),
    )
    def test_property_block_rows_equal_global_rows(
        self, num_nodes, edge_prob, graph_seed, seed_seed
    ):
        adjacency = random_graph(num_nodes, edge_prob, graph_seed)
        rng = np.random.default_rng(seed_seed)
        num_seeds = int(rng.integers(1, num_nodes + 1))
        seeds = rng.choice(num_nodes, size=num_seeds, replace=False)
        assert_full_fanout_rows_match_global(adjacency, seeds)

    def test_under_fanout_rescales_by_degree_over_sampled(self):
        # Star with 8 leaves, fanout 2: the hub row keeps 2 neighbors,
        # each scaled by deg/s = 8/2 = 4 on top of the Â entry.
        adj = build_adjacency(9, np.array([[0, i] for i in range(1, 9)]))
        a_hat = gcn_normalize(adj).toarray()
        builder = BlockBuilder(adj, (2,), seed=0)
        batch = builder.build(np.array([0]))
        block = batch.blocks[0]
        dense = block.adjacency.toarray().ravel()
        np.testing.assert_allclose(dense[0], a_hat[0, 0])  # self loop unscaled
        kept = block.input_nodes[1:]
        np.testing.assert_allclose(dense[1:], a_hat[0, kept] * (8.0 / 2.0))


class TestItemSampler:
    def test_partitions_index_exactly(self):
        index = np.arange(10, 33)
        sampler = ItemSampler(index, batch_size=7, seed=0)
        batches = sampler.epoch()
        assert len(batches) == len(sampler) == 4
        assert [len(b) for b in batches] == [7, 7, 7, 2]
        np.testing.assert_array_equal(np.sort(np.concatenate(batches)), index)

    def test_weighted_epoch_still_visits_every_seed_once(self):
        index = np.arange(20)
        weights = np.ones(20)
        weights[:5] = 100.0
        batches = ItemSampler(index, batch_size=6, seed=0).epoch(weights=weights)
        np.testing.assert_array_equal(np.sort(np.concatenate(batches)), index)

    def test_weighted_shuffle_front_loads_heavy_seeds(self):
        index = np.arange(100)
        weights = np.ones(100)
        weights[:10] = 1000.0
        first = ItemSampler(index, batch_size=10, seed=4).epoch(weights=weights)[0]
        assert np.count_nonzero(first < 10) >= 8

    def test_deterministic_stream(self):
        a = ItemSampler(np.arange(17), 5, seed=3).epoch()
        b = ItemSampler(np.arange(17), 5, seed=3).epoch()
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_validation(self):
        with pytest.raises(GraphError):
            ItemSampler(np.arange(4), 0)
        with pytest.raises(GraphError):
            ItemSampler(np.empty(0, dtype=np.int64), 2)
        sampler = ItemSampler(np.arange(4), 2)
        with pytest.raises(GraphError, match="align"):
            sampler.epoch(weights=np.ones(3))
        with pytest.raises(GraphError, match="positive"):
            sampler.epoch(weights=np.zeros(4))
