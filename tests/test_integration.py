"""Cross-module integration and failure-injection tests."""

import py_compile
from pathlib import Path

import numpy as np
import pytest

from repro.core import RDDConfig, RDDTrainer, node_reliability, train_rdd
from repro.datasets import cora_like
from repro.models import SGC, GAT, GCN
from repro.models.base import softmax_rows
from repro.training import Trainer, make_rng

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestRDDWithAlternativeBases:
    """RDD 'is not limited to the architecture of the base model' (§5.3)."""

    def test_rdd_over_sgc_students(self, tiny_graph):
        trainer = RDDTrainer(
            RDDConfig(num_base_models=2, max_epochs=30, hidden=8),
            model_factory=lambda g, rng: SGC(g.num_features, g.num_classes, rng),
        )
        result = trainer.fit(tiny_graph, seed=0)
        assert result.ensemble_test_accuracy > 0.5

    def test_rdd_over_gat_students(self, tiny_graph):
        trainer = RDDTrainer(
            RDDConfig(num_base_models=2, max_epochs=30),
            model_factory=lambda g, rng: GAT(g.num_features, g.num_classes, rng, hidden=4, num_heads=2),
        )
        result = trainer.fit(tiny_graph, seed=0)
        assert 0.0 <= result.ensemble_test_accuracy <= 1.0


class TestFailureInjection:
    """The reliability machinery under corrupted inputs."""

    def test_feature_noise_shrinks_reliable_set(self):
        def reliable_fraction(noise):
            graph = cora_like(seed=0, scale=0.1, feature_noise=noise)
            model = GCN(graph.num_features, graph.num_classes, make_rng(0), hidden=8)
            Trainer(max_epochs=60).fit(model, graph)
            probs = softmax_rows(model.predict_logits(graph))
            other = GCN(graph.num_features, graph.num_classes, make_rng(1), hidden=8)
            Trainer(max_epochs=60).fit(other, graph)
            other_probs = softmax_rows(other.predict_logits(graph))
            sets = node_reliability(probs, other_probs, graph.labels, graph.train_index, p=40.0)
            return sets.num_reliable / graph.num_nodes

        clean = reliable_fraction(0.0)
        noisy = reliable_fraction(0.6)
        # Heavy feature noise → more teacher/student disagreement → fewer
        # reliable nodes.  Allow equality slack for small graphs.
        assert noisy <= clean + 0.05

    def test_rdd_survives_extreme_noise_without_crashing(self):
        graph = cora_like(seed=1, scale=0.1, feature_noise=0.9)
        result = train_rdd(graph, RDDConfig(num_base_models=2, max_epochs=25, hidden=8), seed=0)
        assert np.isfinite(result.ensemble_test_accuracy)

    def test_rdd_handles_all_reliability_disabled_and_zero_losses(self, tiny_graph):
        config = RDDConfig(
            num_base_models=2, max_epochs=20, hidden=8,
            use_l2=False, use_lreg=False,
            use_node_reliability=False, use_edge_reliability=False,
            use_ensemble_weighting=False,
        )
        result = train_rdd(tiny_graph, config, seed=0)  # degenerates to Bagging
        assert 0.0 <= result.ensemble_test_accuracy <= 1.0

    def test_reliability_with_extreme_percentiles(self, tiny_graph):
        for p in (0.0, 100.0):
            result = train_rdd(
                tiny_graph, RDDConfig(num_base_models=2, max_epochs=20, hidden=8, p=p), seed=0
            )
            assert np.isfinite(result.ensemble_test_accuracy)


class TestExamplesCompile:
    """Every example script must at least be valid Python."""

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "citation_topic_classification.py",
            "reliability_analysis.py",
            "ensemble_anatomy.py",
            "custom_dataset.py",
        ],
    )
    def test_example_compiles(self, name, tmp_path):
        path = REPO_ROOT / "examples" / name
        assert path.exists(), f"missing example {name}"
        py_compile.compile(str(path), cfile=str(tmp_path / (name + "c")), doraise=True)

    def test_custom_dataset_example_runs(self):
        # The cheapest full example: import and execute its main path.
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "custom_dataset_example", REPO_ROOT / "examples" / "custom_dataset.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        graph = module.build_collaboration_network(seed=1)
        assert graph.num_nodes == 300
        assert graph.num_classes == 3


class TestEndToEndPipelines:
    def test_cli_style_flow_table6(self, capsys):
        from repro.cli import main

        code = main([
            "run", "table6",
            "--scale", "0.1", "--seeds", "0", "--base-models", "2",
            "--max-epochs", "15", "--hidden", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Bagging" in out and "RDD(Ensemble)" in out

    def test_checkpointed_model_reproduces_rdd_teacher_inputs(self, tiny_graph, tmp_path):
        from repro.io import load_checkpoint, save_checkpoint

        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        Trainer(max_epochs=30).fit(model, tiny_graph)
        save_checkpoint(model, tmp_path / "teacher.npz")

        restored = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(9), hidden=8)
        load_checkpoint(restored, tmp_path / "teacher.npz")
        np.testing.assert_allclose(
            softmax_rows(model.predict_logits(tiny_graph)),
            softmax_rows(restored.predict_logits(tiny_graph)),
        )
