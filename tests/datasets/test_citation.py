"""Tests for the calibrated citation-network stand-ins."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import (
    CITESEER,
    CORA,
    NELL,
    PUBMED,
    available_datasets,
    citeseer_like,
    cora_like,
    load_dataset,
    nell_like,
    register_dataset,
)
from repro.errors import DatasetError
from repro.graph.stats import edge_homophily, summarize


class TestSpecs:
    def test_published_statistics(self):
        assert (CORA.num_nodes, CORA.num_features, CORA.num_classes) == (2708, 1433, 7)
        assert (CITESEER.num_nodes, CITESEER.num_classes) == (3327, 6)
        assert (PUBMED.num_nodes, PUBMED.num_classes) == (19717, 3)
        assert (NELL.num_nodes, NELL.num_classes) == (65755, 210)

    def test_scaled_shrinks_everything(self):
        small = CORA.scaled(0.2)
        assert small.num_nodes < CORA.num_nodes
        assert small.num_edges < CORA.num_edges
        assert small.num_val < CORA.num_val
        assert small.train_per_class < CORA.train_per_class
        assert small.num_classes == CORA.num_classes

    def test_scale_one_is_identity(self):
        assert CORA.scaled(1.0) is CORA

    def test_invalid_scale_raises(self):
        with pytest.raises(DatasetError):
            CORA.scaled(0.0)
        with pytest.raises(DatasetError):
            CORA.scaled(1.5)

    def test_scaled_split_fits(self):
        small = CITESEER.scaled(0.1)
        needed = small.train_per_class * small.num_classes + small.num_val + small.num_test
        assert needed < small.num_nodes


class TestGeneratedGraphs:
    def test_cora_like_structure(self):
        g = cora_like(seed=0, scale=0.15)
        assert g.num_classes == 7
        assert g.name == "cora"
        stats = summarize(g)
        assert stats.edge_homophily == pytest.approx(CORA.homophily, abs=0.12)

    def test_deterministic_per_seed(self):
        a = cora_like(seed=5, scale=0.1)
        b = cora_like(seed=5, scale=0.1)
        assert (a.adjacency != b.adjacency).nnz == 0
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.train_index, b.train_index)

    def test_different_seeds_differ(self):
        a = cora_like(seed=1, scale=0.1)
        b = cora_like(seed=2, scale=0.1)
        assert (a.adjacency != b.adjacency).nnz > 0

    def test_features_row_normalized(self):
        g = citeseer_like(seed=0, scale=0.1)
        sums = np.asarray(g.features.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, np.ones_like(sums))

    def test_feature_noise_parameter(self):
        clean = cora_like(seed=0, scale=0.1, feature_noise=0.0)
        noisy = cora_like(seed=0, scale=0.1, feature_noise=0.5)
        # Same structure, different features.
        assert (clean.adjacency != noisy.adjacency).nnz == 0
        assert (clean.features != noisy.features).nnz > 0

    def test_nell_identity_features(self):
        g = nell_like(seed=0, scale=0.05)
        assert sp.issparse(g.features)
        assert g.features.shape[1] == g.num_nodes  # one-hot per node
        assert g.num_classes == 210


class TestRegistry:
    def test_available(self):
        assert set(available_datasets()) == {"cora", "citeseer", "pubmed", "nell"}

    def test_load_by_name_case_insensitive(self):
        g = load_dataset("CORA", seed=0, scale=0.1)
        assert g.name == "cora"

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("imagenet")

    def test_register_custom(self, tiny_graph):
        register_dataset("custom-test", lambda **kw: tiny_graph)
        assert load_dataset("custom-test") is tiny_graph
