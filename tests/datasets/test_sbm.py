"""Tests for the DC-SBM generator, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.sbm import generate_dcsbm_graph, sample_block_sizes, sample_dcsbm_edges
from repro.errors import DatasetError
from repro.graph.stats import edge_homophily


class TestBlockSizes:
    def test_exact_total(self, rng):
        sizes = sample_block_sizes(100, 7, rng)
        assert sizes.sum() == 100

    def test_equal_when_no_skew(self, rng):
        sizes = sample_block_sizes(100, 4, rng, skew=0.0)
        np.testing.assert_array_equal(sizes, [25, 25, 25, 25])

    def test_min_size_respected(self, rng):
        sizes = sample_block_sizes(100, 5, rng, skew=2.0, min_size=10)
        assert sizes.min() >= 10
        assert sizes.sum() == 100

    def test_too_few_nodes_raises(self, rng):
        with pytest.raises(DatasetError):
            sample_block_sizes(10, 5, rng, min_size=5)

    def test_single_class_raises(self, rng):
        with pytest.raises(DatasetError):
            sample_block_sizes(10, 1, rng)

    @settings(max_examples=25, deadline=None)
    @given(
        num_nodes=st.integers(30, 300),
        num_classes=st.integers(2, 8),
        skew=st.floats(0.0, 2.0),
        seed=st.integers(0, 100),
    )
    def test_property_total_and_positivity(self, num_nodes, num_classes, skew, seed):
        rng = np.random.default_rng(seed)
        sizes = sample_block_sizes(num_nodes, num_classes, rng, skew=skew, min_size=2)
        assert sizes.sum() == num_nodes
        assert sizes.min() >= 2
        assert len(sizes) == num_classes


class TestEdgeSampling:
    def test_homophily_controls_within_class_rate(self, rng):
        labels = np.repeat([0, 1, 2], 100)
        high = sample_dcsbm_edges(labels, 2000, homophily=0.9, rng=np.random.default_rng(0))
        low = sample_dcsbm_edges(labels, 2000, homophily=0.2, rng=np.random.default_rng(0))
        rate_high = (labels[high[:, 0]] == labels[high[:, 1]]).mean()
        rate_low = (labels[low[:, 0]] == labels[low[:, 1]]).mean()
        assert rate_high > 0.8
        assert rate_low < 0.4

    def test_invalid_homophily_raises(self, rng):
        with pytest.raises(DatasetError):
            sample_dcsbm_edges(np.array([0, 1]), 10, homophily=1.5, rng=rng)

    def test_invalid_target_raises(self, rng):
        with pytest.raises(DatasetError):
            sample_dcsbm_edges(np.array([0, 1]), 0, homophily=0.5, rng=rng)

    def test_empty_class_raises(self, rng):
        labels = np.array([0, 0, 2, 2])  # class 1 empty
        with pytest.raises(DatasetError):
            sample_dcsbm_edges(labels, 10, homophily=0.5, rng=rng)


class TestGenerateGraph:
    def test_no_isolated_nodes(self):
        rng = np.random.default_rng(3)
        adjacency, labels = generate_dcsbm_graph(120, 4, 200, 0.8, rng)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        assert degrees.min() >= 1

    def test_adjacency_is_symmetric_no_loops(self):
        rng = np.random.default_rng(4)
        adjacency, _ = generate_dcsbm_graph(80, 3, 150, 0.7, rng)
        assert (abs(adjacency - adjacency.T) > 0).nnz == 0
        assert adjacency.diagonal().sum() == 0

    def test_homophily_close_to_target(self):
        rng = np.random.default_rng(5)
        adjacency, labels = generate_dcsbm_graph(400, 4, 1500, 0.8, rng)
        measured = edge_homophily(adjacency, labels)
        assert measured == pytest.approx(0.8, abs=0.08)

    def test_edge_count_near_target(self):
        rng = np.random.default_rng(6)
        adjacency, _ = generate_dcsbm_graph(300, 3, 800, 0.75, rng)
        assert adjacency.nnz // 2 == pytest.approx(800, rel=0.25)

    def test_heavy_tailed_degrees(self):
        rng = np.random.default_rng(7)
        adjacency, _ = generate_dcsbm_graph(500, 3, 2000, 0.8, rng)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        # Degree-corrected sampling produces hubs: max degree far above mean.
        assert degrees.max() > 3 * degrees.mean()

    def test_min_class_size(self):
        rng = np.random.default_rng(8)
        _, labels = generate_dcsbm_graph(200, 5, 400, 0.8, rng, min_class_size=15)
        assert np.bincount(labels).min() >= 15

    def test_deterministic_given_rng_seed(self):
        a1, l1 = generate_dcsbm_graph(100, 3, 200, 0.8, np.random.default_rng(9))
        a2, l2 = generate_dcsbm_graph(100, 3, 200, 0.8, np.random.default_rng(9))
        assert (a1 != a2).nnz == 0
        np.testing.assert_array_equal(l1, l2)
