"""Tests for Planetoid-style splits and label sweeps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.splits import max_train_per_class, planetoid_split, resample_train_index
from repro.errors import DatasetError


def labels_for(classes=4, per_class=50):
    return np.repeat(np.arange(classes), per_class)


class TestPlanetoidSplit:
    def test_class_balanced_training(self, rng):
        labels = labels_for()
        train, _, _ = planetoid_split(labels, rng, train_per_class=5, num_val=20, num_test=40)
        counts = np.bincount(labels[train])
        np.testing.assert_array_equal(counts, [5, 5, 5, 5])

    def test_disjoint_sets(self, rng):
        labels = labels_for()
        train, val, test = planetoid_split(labels, rng, train_per_class=5, num_val=20, num_test=40)
        assert len(np.intersect1d(train, val)) == 0
        assert len(np.intersect1d(train, test)) == 0
        assert len(np.intersect1d(val, test)) == 0

    def test_sizes(self, rng):
        labels = labels_for()
        train, val, test = planetoid_split(labels, rng, train_per_class=5, num_val=20, num_test=40)
        assert (len(train), len(val), len(test)) == (20, 20, 40)

    def test_sorted_outputs(self, rng):
        labels = labels_for()
        train, val, test = planetoid_split(labels, rng, train_per_class=5, num_val=10, num_test=10)
        for idx in (train, val, test):
            assert np.all(np.diff(idx) > 0)

    def test_class_too_small_raises(self, rng):
        labels = np.array([0] * 3 + [1] * 50)
        with pytest.raises(DatasetError):
            planetoid_split(labels, rng, train_per_class=5, num_val=5, num_test=5)

    def test_not_enough_for_val_test_raises(self, rng):
        labels = labels_for(classes=2, per_class=10)
        with pytest.raises(DatasetError):
            planetoid_split(labels, rng, train_per_class=5, num_val=50, num_test=50)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100), per=st.integers(1, 8))
    def test_property_balance_and_disjointness(self, seed, per):
        labels = labels_for(classes=3, per_class=40)
        rng = np.random.default_rng(seed)
        train, val, test = planetoid_split(labels, rng, train_per_class=per, num_val=15, num_test=30)
        assert np.bincount(labels[train]).tolist() == [per, per, per]
        union = np.concatenate([train, val, test])
        assert len(np.unique(union)) == len(union)


class TestResampleTrainIndex:
    def test_avoids_forbidden(self, rng):
        labels = labels_for()
        forbidden = np.arange(0, 25)  # half of class 0
        train = resample_train_index(labels, rng, 5, forbidden)
        assert len(np.intersect1d(train, forbidden)) == 0

    def test_balanced(self, rng):
        labels = labels_for()
        train = resample_train_index(labels, rng, 7, np.array([], dtype=np.int64))
        np.testing.assert_array_equal(np.bincount(labels[train]), [7, 7, 7, 7])

    def test_exhausted_class_raises(self, rng):
        labels = labels_for(classes=2, per_class=10)
        forbidden = np.flatnonzero(labels == 0)[:8]
        with pytest.raises(DatasetError):
            resample_train_index(labels, rng, 5, forbidden)


class TestMaxTrainPerClass:
    def test_without_forbidden(self):
        labels = np.array([0] * 10 + [1] * 4)
        assert max_train_per_class(labels, np.array([], dtype=np.int64)) == 4

    def test_with_forbidden(self):
        labels = np.array([0] * 10 + [1] * 4)
        forbidden = np.flatnonzero(labels == 1)[:2]
        assert max_train_per_class(labels, forbidden) == 2
