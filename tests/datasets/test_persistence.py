"""Tests for dataset save/load."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import cora_like, load_graph, save_graph
from repro.errors import DatasetError


class TestGraphPersistence:
    def test_roundtrip_dense_features(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_graph(tiny_graph, path)
        loaded = load_graph(path)
        assert loaded.name == tiny_graph.name
        assert (loaded.adjacency != tiny_graph.adjacency).nnz == 0
        np.testing.assert_allclose(np.asarray(loaded.features), np.asarray(tiny_graph.features))
        np.testing.assert_array_equal(loaded.labels, tiny_graph.labels)
        np.testing.assert_array_equal(loaded.train_index, tiny_graph.train_index)
        np.testing.assert_array_equal(loaded.val_index, tiny_graph.val_index)
        np.testing.assert_array_equal(loaded.test_index, tiny_graph.test_index)

    def test_roundtrip_sparse_features(self, tmp_path):
        graph = cora_like(seed=0, scale=0.1)
        assert sp.issparse(graph.features)
        path = tmp_path / "cora.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        assert sp.issparse(loaded.features)
        assert (loaded.features != graph.features).nnz == 0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_graph(tmp_path / "nope.npz")

    def test_loaded_graph_trains_identically(self, tmp_path):
        from repro.models import GCN
        from repro.training import Trainer, make_rng

        graph = cora_like(seed=1, scale=0.1)
        path = tmp_path / "pin.npz"
        save_graph(graph, path)
        loaded = load_graph(path)

        a = Trainer(max_epochs=20).fit(
            GCN(graph.num_features, graph.num_classes, make_rng(0), hidden=8), graph
        )
        b = Trainer(max_epochs=20).fit(
            GCN(loaded.num_features, loaded.num_classes, make_rng(0), hidden=8), loaded
        )
        assert a.test_accuracy == b.test_accuracy

    def test_creates_parent_directories(self, tiny_graph, tmp_path):
        path = tmp_path / "nested" / "dir" / "g.npz"
        save_graph(tiny_graph, path)
        assert path.exists()
