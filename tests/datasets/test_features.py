"""Tests for the class-topic feature generator."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.features import (
    corrupt_features,
    generate_topic_features,
    one_hot_identity_features,
)
from repro.errors import DatasetError


class TestTopicFeatures:
    def test_shape_and_sparsity(self, rng):
        labels = np.repeat([0, 1, 2], 40)
        features = generate_topic_features(labels, 200, rng)
        assert features.shape == (120, 200)
        assert sp.issparse(features)
        assert features.nnz < 120 * 200 * 0.5

    def test_binary_values(self, rng):
        labels = np.repeat([0, 1], 30)
        features = generate_topic_features(labels, 100, rng)
        assert set(np.unique(features.data)) == {1.0}

    def test_every_row_nonempty(self, rng):
        labels = np.repeat([0, 1, 2, 3], 25)
        features = generate_topic_features(labels, 150, rng, words_per_doc=3.0)
        row_sums = np.asarray(features.sum(axis=1)).ravel()
        assert row_sums.min() >= 1

    def test_words_per_doc_controls_density(self):
        labels = np.repeat([0, 1], 200)
        sparse_feats = generate_topic_features(labels, 300, np.random.default_rng(0), words_per_doc=5.0)
        dense_feats = generate_topic_features(labels, 300, np.random.default_rng(0), words_per_doc=30.0)
        assert dense_feats.nnz > 2 * sparse_feats.nnz

    def test_signal_terms_are_class_discriminative(self):
        rng = np.random.default_rng(1)
        labels = np.repeat([0, 1], 150)
        features = generate_topic_features(labels, 200, rng, signal_strength=12.0).toarray()
        # Class 0's signal block must fire more for class-0 docs.
        signal_width = max(1, int(200 * 0.25 / 2))
        class0_rate = features[labels == 0, :signal_width].mean()
        class1_rate = features[labels == 1, :signal_width].mean()
        assert class0_rate > 3 * class1_rate

    def test_noise_reduces_discriminability(self):
        labels = np.repeat([0, 1], 150)
        clean = generate_topic_features(labels, 200, np.random.default_rng(2), noise=0.0).toarray()
        noisy = generate_topic_features(labels, 200, np.random.default_rng(2), noise=0.8).toarray()
        width = max(1, int(200 * 0.25 / 2))

        def contrast(feats):
            return feats[labels == 0, :width].mean() - feats[labels == 1, :width].mean()

        assert contrast(noisy) < contrast(clean)

    def test_invalid_noise_raises(self, rng):
        with pytest.raises(DatasetError):
            generate_topic_features(np.array([0, 1]), 50, rng, noise=1.5)

    def test_vocab_too_small_raises(self, rng):
        with pytest.raises(DatasetError):
            generate_topic_features(np.arange(10), 5, rng, signal_fraction=10.0)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 50), classes=st.integers(2, 5))
    def test_property_shape_and_rows(self, seed, classes):
        rng = np.random.default_rng(seed)
        labels = np.repeat(np.arange(classes), 20)
        features = generate_topic_features(labels, 120, rng)
        assert features.shape == (20 * classes, 120)
        assert np.asarray(features.sum(axis=1)).ravel().min() >= 1


class TestIdentityFeatures:
    def test_identity_block(self):
        features = one_hot_identity_features(5)
        np.testing.assert_allclose(features.toarray(), np.eye(5))

    def test_padding(self):
        features = one_hot_identity_features(4, num_extra=3)
        assert features.shape == (4, 7)
        assert features[:, 4:].nnz == 0


class TestCorruptFeatures:
    def test_zero_fraction_is_identity(self, rng):
        features = np.arange(12, dtype=float).reshape(4, 3)
        out = corrupt_features(features, 0.0, rng)
        np.testing.assert_allclose(out, features)

    def test_corrupted_rows_copied_from_donors(self, rng):
        features = np.arange(40, dtype=float).reshape(10, 4)
        out = corrupt_features(features, 0.5, rng)
        original_rows = {tuple(row) for row in features}
        for row in out:
            assert tuple(row) in original_rows

    def test_sparse_type_preserved(self, rng):
        features = sp.csr_matrix(np.eye(6))
        out = corrupt_features(features, 0.5, rng)
        assert sp.issparse(out)

    def test_invalid_fraction_raises(self, rng):
        with pytest.raises(DatasetError):
            corrupt_features(np.eye(3), 2.0, rng)
