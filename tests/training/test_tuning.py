"""Tests for validation-based grid search."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import GCN
from repro.training import Trainer, grid_cells, grid_search


class TestGridCells:
    def test_cartesian_product(self):
        cells = grid_cells({"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(cells) == 6
        assert {"a": 1, "b": "x"} in cells
        assert {"a": 2, "b": "z"} in cells

    def test_single_parameter(self):
        assert grid_cells({"depth": [2, 3]}) == [{"depth": 2}, {"depth": 3}]

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigError):
            grid_cells({})

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigError):
            grid_cells({"a": []})


class TestGridSearch:
    def _factory(self, graph, rng, hidden=8, num_layers=2):
        return GCN(graph.num_features, graph.num_classes, rng,
                   hidden=hidden, num_layers=num_layers)

    def test_runs_all_cells(self, tiny_graph):
        result = grid_search(
            self._factory,
            {"hidden": [4, 8], "num_layers": [2]},
            tiny_graph,
            trainer=Trainer(max_epochs=15, min_epochs=1),
        )
        assert result.num_trials == 2
        assert {"val_accuracy", "test_accuracy", "hidden", "num_layers"} <= set(result.trials[0])

    def test_best_params_maximize_validation(self, tiny_graph):
        result = grid_search(
            self._factory,
            {"hidden": [2, 8, 16]},
            tiny_graph,
            trainer=Trainer(max_epochs=25, min_epochs=1),
        )
        best_val = max(t["val_accuracy"] for t in result.trials)
        assert result.best_result.val_accuracy == pytest.approx(best_val)
        winning = [t for t in result.trials if t["val_accuracy"] == best_val]
        assert any(t["hidden"] == result.best_params["hidden"] for t in winning)

    def test_depth_grid_prefers_shallow_on_tiny_graph(self, tiny_graph):
        # 2 layers should beat 6 on a 60-node graph (over-smoothing).
        result = grid_search(
            self._factory,
            {"num_layers": [2, 6]},
            tiny_graph,
            trainer=Trainer(max_epochs=40, min_epochs=1),
        )
        assert result.best_params["num_layers"] == 2

    def test_deterministic_given_seed(self, tiny_graph):
        kwargs = dict(
            grid={"hidden": [4, 8]},
            graph=tiny_graph,
            trainer=Trainer(max_epochs=10, min_epochs=1),
            seed=5,
        )
        a = grid_search(self._factory, **kwargs)
        b = grid_search(self._factory, **kwargs)
        assert a.best_params == b.best_params
        assert a.trials == b.trials
