"""Tests for the process-pool executor and its determinism contract.

The one hard requirement: ``workers=N`` must produce results equal to
``workers=1`` (which itself is the pre-parallel serial loop).  The box
running the suite may expose a single core — the pool clamps itself to
the available cores and degrades to the serial loop — so the tests that
need a real pool monkeypatch :func:`available_cores`.

The fault-tolerance tests crash real worker processes (``os._exit``)
with filesystem sentinels making each crash happen exactly once, so a
rebuilt pool observes the task succeeding on its second attempt.
"""

import multiprocessing
import os
import time
import warnings as warnings_module

import numpy as np
import pytest

from repro.baselines.bagging import BaggingEnsemble
from repro.datasets.citation import cora_like
from repro.evaluation.common import HarnessConfig, load_graphs, run_over_seeds, run_single_gcn
from repro.training import parallel
from repro.training.parallel import (
    TaskTimeout,
    available_cores,
    get_shared,
    parallel_map,
    reset_fallback_warnings,
    spawn_seeds,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _square(x):
    return x * x


def _shared_lookup(index):
    return get_shared()[index] * 10


def _once(sentinel):
    """True exactly once per sentinel path (atomic create-or-fail)."""
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _crash_once(args):
    x, sentinel = args
    if x == 2 and _once(sentinel):
        os._exit(1)  # hard-kill the worker: the pool breaks
    return x * x


def _flaky(args):
    x, sentinel = args
    if x == 1 and _once(sentinel):
        raise ValueError("transient failure")
    return x * x


def _slow_once(args):
    x, sentinel = args
    if x == 1 and _once(sentinel):
        time.sleep(3.0)
    return x * x


def _sleepy(x):
    if x == 1:
        time.sleep(3.0)
    return x


@pytest.fixture
def two_cores(monkeypatch):
    """Force the pool clamp to allow two workers even on a 1-core box."""
    monkeypatch.setattr(parallel, "available_cores", lambda: 2)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(0, 4) == spawn_seeds(0, 4)

    def test_distinct(self):
        seeds = spawn_seeds(7, 8)
        assert len(set(seeds)) == 8

    def test_differs_by_root(self):
        assert spawn_seeds(0, 4) != spawn_seeds(1, 4)


class TestParallelMap:
    def test_serial_basics(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_empty(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_order_preserved_with_pool(self, two_cores):
        items = list(range(12))
        assert parallel_map(_square, items, workers=2) == [x * x for x in items]

    def test_unpicklable_falls_back_serially(self, two_cores):
        offset = 5
        with pytest.warns(UserWarning, match="not picklable"):
            result = parallel_map(lambda x: x + offset, [1, 2], workers=2)
        assert result == [6, 7]

    def test_single_worker_pool_runs_serial(self, monkeypatch):
        # workers > 1 but one usable core: the pool would serialize
        # anyway, so the executor must not be constructed at all.
        monkeypatch.setattr(parallel, "available_cores", lambda: 1)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool constructed despite single core")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", boom)
        assert parallel_map(_square, [1, 2, 3], workers=4) == [1, 4, 9]

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_shared_payload_reaches_workers(self, two_cores):
        payload = [3, 5, 7]
        result = parallel_map(
            _shared_lookup, [0, 1, 2], workers=2, shared=payload
        )
        assert result == [30, 50, 70]

    def test_shared_payload_serial(self):
        assert parallel_map(_shared_lookup, [1], workers=1, shared=[4, 8]) == [80]

    def test_shared_cleared_after_call(self):
        parallel_map(_shared_lookup, [0], workers=1, shared=[1])
        assert get_shared() is None


class TestWorkerDeterminism:
    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_run_over_seeds_matches_serial(self, two_cores):
        budget = dict(
            scale=0.05, seeds=(0, 1), max_epochs=4, patience=4, hidden=8
        )
        serial_cfg = HarnessConfig(workers=1, **budget)
        pooled_cfg = HarnessConfig(workers=2, **budget)
        graphs = load_graphs(serial_cfg, "cora")
        serial = run_over_seeds(run_single_gcn, graphs, serial_cfg)
        pooled = run_over_seeds(run_single_gcn, graphs, pooled_cfg)
        assert len(serial) == len(pooled) == 2
        for a, b in zip(serial, pooled):
            assert a.test_accuracy == b.test_accuracy
            assert a.val_accuracy == b.val_accuracy
            assert a.epochs_run == b.epochs_run

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_bagging_matches_serial(self, two_cores):
        graph = cora_like(seed=0, scale=0.05)
        kwargs = dict(num_base_models=2, hidden=8, max_epochs=4, patience=4)
        serial = BaggingEnsemble(workers=1, **kwargs).fit(graph, seed=0)
        pooled = BaggingEnsemble(workers=2, **kwargs).fit(graph, seed=0)
        assert serial.ensemble_test_accuracy == pooled.ensemble_test_accuracy


class TestFallbackWarnings:
    @pytest.fixture(autouse=True)
    def fresh_warning_sites(self):
        reset_fallback_warnings()
        yield
        reset_fallback_warnings()

    def test_warns_once_per_call_site_with_reason(self, two_cores):
        offset = 1
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            for _ in range(3):  # same call site three times -> one warning
                assert parallel_map(lambda x: x + offset, [1, 2], workers=2) == [2, 3]
        fallback = [w for w in caught if "not picklable" in str(w.message)]
        assert len(fallback) == 1
        # The reason (what failed to pickle, and why) must be included.
        assert "task function" in str(fallback[0].message)

    def test_distinct_call_sites_each_warn(self, two_cores):
        offset = 1
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            parallel_map(lambda x: x + offset, [1, 2], workers=2)
            parallel_map(lambda x: x + offset, [1, 2], workers=2)  # different line
        assert len([w for w in caught if "not picklable" in str(w.message)]) == 2

    def test_reset_rearms_the_warning(self, two_cores):
        offset = 1
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            for _ in range(2):
                parallel_map(lambda x: x + offset, [1, 2], workers=2)
                reset_fallback_warnings()
        assert len([w for w in caught if "not picklable" in str(w.message)]) == 2


class TestSerialRetries:
    def test_transient_failure_retried(self, tmp_path):
        sentinel = str(tmp_path / "flaky")
        tasks = [(x, sentinel) for x in range(3)]
        with pytest.warns(UserWarning, match="retrying"):
            result = parallel_map(_flaky, tasks, workers=1, retries=1)
        assert result == [0, 1, 4]

    def test_retries_exhausted_propagates(self):
        def always_fails(x):
            raise ValueError("permanent failure")

        with pytest.raises(ValueError, match="permanent failure"):
            with pytest.warns(UserWarning, match="retrying"):
                parallel_map(always_fails, [1], workers=1, retries=2)

    def test_no_retries_fails_fast(self):
        calls = []

        def fails(x):
            calls.append(x)
            raise ValueError("boom")

        with pytest.raises(ValueError):
            parallel_map(fails, [1], workers=1)
        assert calls == [1]


class TestResumeHooks:
    def test_on_result_reports_each_new_result_in_order(self):
        seen = []
        parallel_map(_square, [1, 2, 3], workers=1, on_result=lambda i, r: seen.append((i, r)))
        assert seen == [(0, 1), (1, 4), (2, 9)]

    def test_completed_tasks_are_skipped(self):
        def must_not_run_zero(x):
            if x == 0:
                raise AssertionError("completed task re-ran")
            return x * x

        result = parallel_map(must_not_run_zero, [0, 1, 2], workers=1, completed={0: 111})
        assert result == [111, 1, 4]

    def test_completed_tasks_not_rereported(self):
        seen = []
        parallel_map(
            _square, [1, 2, 3], workers=1,
            on_result=lambda i, r: seen.append(i), completed={1: 999},
        )
        assert seen == [0, 2]

    def test_completed_accepts_string_keys(self):
        # Checkpoint payloads that round-trip through JSON stringify keys.
        assert parallel_map(_square, [5, 6], workers=1, completed={"1": 42}) == [25, 42]

    def test_out_of_range_completed_ignored(self):
        assert parallel_map(_square, [2], workers=1, completed={7: 1}) == [4]

    def test_all_completed_runs_nothing(self):
        def boom(x):
            raise AssertionError("nothing should run")

        assert parallel_map(boom, [1, 2], workers=1, completed={0: "a", 1: "b"}) == ["a", "b"]


@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
class TestPoolFaultTolerance:
    def test_broken_pool_recovers_and_reruns_only_lost_tasks(self, two_cores, tmp_path):
        sentinel = str(tmp_path / "crash")
        tasks = [(x, sentinel) for x in range(4)]
        with pytest.warns(UserWarning, match="process pool broke"):
            result = parallel_map(_crash_once, tasks, workers=2)
        assert result == [0, 1, 4, 9]

    def test_pooled_transient_failure_retried(self, two_cores, tmp_path):
        sentinel = str(tmp_path / "flaky")
        tasks = [(x, sentinel) for x in range(4)]
        with pytest.warns(UserWarning, match="retrying"):
            result = parallel_map(_flaky, tasks, workers=2, retries=1)
        assert result == [0, 1, 4, 9]

    def test_task_timeout_raises_after_retries(self, two_cores):
        with pytest.raises(TaskTimeout, match="exceeded"):
            parallel_map(_sleepy, [0, 1], workers=2, task_timeout=0.25)

    def test_task_timeout_recovers_when_retry_is_fast(self, two_cores, tmp_path):
        sentinel = str(tmp_path / "slow")
        tasks = [(x, sentinel) for x in range(2)]
        with pytest.warns(UserWarning, match="restarting the pool"):
            result = parallel_map(_slow_once, tasks, workers=2, task_timeout=0.5, retries=1)
        assert result == [0, 1]

    def test_finished_work_survives_a_task_failure(self, two_cores, tmp_path):
        # Task 1 fails with no retries; results already computed by the
        # pool must still reach on_result before the error propagates.
        seen = {}
        sentinel = str(tmp_path / "never-created-so-always-raises")

        def record(index, value):
            seen[index] = value

        with pytest.raises(ValueError, match="transient failure"):
            with warnings_module.catch_warnings():
                warnings_module.simplefilter("ignore")
                parallel_map(
                    _always_flaky, [(x, sentinel) for x in range(4)],
                    workers=2, on_result=record,
                )
        assert all(seen[i] == i * i for i in seen)


def _always_flaky(args):
    x, _ = args
    if x == 1:
        time.sleep(0.2)  # let some siblings finish first
        raise ValueError("transient failure")
    return x * x
