"""Tests for the process-pool executor and its determinism contract.

The one hard requirement: ``workers=N`` must produce results equal to
``workers=1`` (which itself is the pre-parallel serial loop).  The box
running the suite may expose a single core — the pool clamps itself to
the available cores and degrades to the serial loop — so the tests that
need a real pool monkeypatch :func:`available_cores`.
"""

import multiprocessing

import numpy as np
import pytest

from repro.baselines.bagging import BaggingEnsemble
from repro.datasets.citation import cora_like
from repro.evaluation.common import HarnessConfig, load_graphs, run_over_seeds, run_single_gcn
from repro.training import parallel
from repro.training.parallel import (
    available_cores,
    get_shared,
    parallel_map,
    spawn_seeds,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _square(x):
    return x * x


def _shared_lookup(index):
    return get_shared()[index] * 10


@pytest.fixture
def two_cores(monkeypatch):
    """Force the pool clamp to allow two workers even on a 1-core box."""
    monkeypatch.setattr(parallel, "available_cores", lambda: 2)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(0, 4) == spawn_seeds(0, 4)

    def test_distinct(self):
        seeds = spawn_seeds(7, 8)
        assert len(set(seeds)) == 8

    def test_differs_by_root(self):
        assert spawn_seeds(0, 4) != spawn_seeds(1, 4)


class TestParallelMap:
    def test_serial_basics(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_empty(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_order_preserved_with_pool(self, two_cores):
        items = list(range(12))
        assert parallel_map(_square, items, workers=2) == [x * x for x in items]

    def test_unpicklable_falls_back_serially(self, two_cores):
        offset = 5
        with pytest.warns(UserWarning, match="not picklable"):
            result = parallel_map(lambda x: x + offset, [1, 2], workers=2)
        assert result == [6, 7]

    def test_single_worker_pool_runs_serial(self, monkeypatch):
        # workers > 1 but one usable core: the pool would serialize
        # anyway, so the executor must not be constructed at all.
        monkeypatch.setattr(parallel, "available_cores", lambda: 1)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool constructed despite single core")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", boom)
        assert parallel_map(_square, [1, 2, 3], workers=4) == [1, 4, 9]

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_shared_payload_reaches_workers(self, two_cores):
        payload = [3, 5, 7]
        result = parallel_map(
            _shared_lookup, [0, 1, 2], workers=2, shared=payload
        )
        assert result == [30, 50, 70]

    def test_shared_payload_serial(self):
        assert parallel_map(_shared_lookup, [1], workers=1, shared=[4, 8]) == [80]

    def test_shared_cleared_after_call(self):
        parallel_map(_shared_lookup, [0], workers=1, shared=[1])
        assert get_shared() is None


class TestWorkerDeterminism:
    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_run_over_seeds_matches_serial(self, two_cores):
        budget = dict(
            scale=0.05, seeds=(0, 1), max_epochs=4, patience=4, hidden=8
        )
        serial_cfg = HarnessConfig(workers=1, **budget)
        pooled_cfg = HarnessConfig(workers=2, **budget)
        graphs = load_graphs(serial_cfg, "cora")
        serial = run_over_seeds(run_single_gcn, graphs, serial_cfg)
        pooled = run_over_seeds(run_single_gcn, graphs, pooled_cfg)
        assert len(serial) == len(pooled) == 2
        for a, b in zip(serial, pooled):
            assert a.test_accuracy == b.test_accuracy
            assert a.val_accuracy == b.val_accuracy
            assert a.epochs_run == b.epochs_run

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_bagging_matches_serial(self, two_cores):
        graph = cora_like(seed=0, scale=0.05)
        kwargs = dict(num_base_models=2, hidden=8, max_epochs=4, patience=4)
        serial = BaggingEnsemble(workers=1, **kwargs).fit(graph, seed=0)
        pooled = BaggingEnsemble(workers=2, **kwargs).fit(graph, seed=0)
        assert serial.ensemble_test_accuracy == pooled.ensemble_test_accuracy
