"""Tests for the atomic, versioned, checksummed checkpoint store.

The durability contract under test: a reader never observes a partially
written checkpoint under its final name, a damaged newest generation
falls back to the previous valid one, and stale checkpoints from a
different config/seed never leak into a resume.
"""

import os
import pickle

import numpy as np
import pytest

from repro.testing.faults import flip_byte, truncate_file
from repro.training.checkpoint import (
    MAGIC,
    CheckpointError,
    CheckpointStore,
    read_checkpoint,
    write_checkpoint,
)


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path)


def payload(seed=0):
    rng = np.random.default_rng(seed)
    return {"matrix": rng.normal(size=(7, 3)), "curve": [0.1, 0.5], "step": seed}


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "one.ckpt"
        original = payload(3)
        write_checkpoint(path, original)
        restored = read_checkpoint(path)
        np.testing.assert_array_equal(restored["matrix"], original["matrix"])
        assert restored["matrix"].dtype == original["matrix"].dtype
        assert restored["curve"] == original["curve"]

    def test_rejects_truncated_payload(self, tmp_path):
        path = tmp_path / "one.ckpt"
        write_checkpoint(path, payload())
        truncate_file(path, keep_fraction=0.5)
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)

    def test_rejects_truncated_header(self, tmp_path):
        path = tmp_path / "one.ckpt"
        write_checkpoint(path, payload())
        truncate_file(path, keep_fraction=0.0)
        path.write_bytes(MAGIC[:4])
        with pytest.raises(CheckpointError, match="no complete header"):
            read_checkpoint(path)

    def test_rejects_bit_rot(self, tmp_path):
        path = tmp_path / "one.ckpt"
        write_checkpoint(path, payload())
        flip_byte(path, offset=-1)
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "one.ckpt"
        path.write_bytes(b"not a checkpoint at all, but long enough to have a header")
        with pytest.raises(CheckpointError, match="magic"):
            read_checkpoint(path)

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(tmp_path / "never-written.ckpt")

    def test_no_temp_residue_after_save(self, tmp_path):
        write_checkpoint(tmp_path / "one.ckpt", payload())
        assert [p.name for p in tmp_path.iterdir()] == ["one.ckpt"]

    def test_failed_replace_leaves_previous_file_intact(self, tmp_path, monkeypatch):
        # Crash between temp-write and rename: the old generation must
        # survive untouched and no temp file may linger.
        path = tmp_path / "one.ckpt"
        write_checkpoint(path, {"step": 1})

        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            write_checkpoint(path, {"step": 2})
        monkeypatch.undo()
        assert read_checkpoint(path) == {"step": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["one.ckpt"]


class TestStoreGenerations:
    def test_load_empty_store(self, store):
        assert store.load("never") is None

    def test_save_load_round_trip(self, store):
        data = payload(5)
        store.save("run", data)
        restored = store.load("run")
        np.testing.assert_array_equal(restored["matrix"], data["matrix"])

    def test_generations_rotate(self, store, tmp_path):
        for step in range(4):
            store.save("run", {"step": step})
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["run-000003.ckpt", "run-000004.ckpt"]
        assert store.load("run") == {"step": 3}

    def test_truncated_newest_falls_back_to_previous(self, store):
        # Acceptance criterion: a half-written checkpoint is rejected
        # and the loader falls back to the previous valid generation.
        store.save("run", {"step": 1})
        newest = store.save("run", {"step": 2})
        truncate_file(newest, keep_fraction=0.5)
        with pytest.warns(UserWarning, match="skipping invalid generation"):
            assert store.load("run") == {"step": 1}

    def test_all_generations_corrupt_gives_none(self, store):
        for step in range(2):
            store.save("run", {"step": step})
        for path in store.generations("run"):
            truncate_file(path, keep_fraction=0.3)
        with pytest.warns(UserWarning, match="skipping invalid generation"):
            assert store.load("run") is None

    def test_names_are_isolated(self, store):
        store.save("alpha", {"who": "a"})
        store.save("beta", {"who": "b"})
        assert store.load("alpha") == {"who": "a"}
        assert store.load("beta") == {"who": "b"}

    def test_name_sanitization(self, store):
        path = store.save("grid search/p=40 γ=1", {"ok": True})
        assert "/" not in path.name.replace(".ckpt", "")
        assert store.load("grid search/p=40 γ=1") == {"ok": True}

    def test_clear_removes_all_generations(self, store, tmp_path):
        for step in range(3):
            store.save("run", {"step": step})
        store.clear("run")
        assert store.load("run") is None
        assert list(tmp_path.iterdir()) == []

    def test_keep_validation(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path, keep=0)


class TestFingerprint:
    def test_matching_fingerprint_loads(self, store):
        fp = {"seed": 0, "config": {"p": 40.0}}
        store.save("run", {"step": 1}, fingerprint=fp)
        assert store.load("run", fingerprint={"seed": 0, "config": {"p": 40.0}}) == {"step": 1}

    def test_mismatched_fingerprint_is_ignored(self, store):
        store.save("run", {"step": 1}, fingerprint={"seed": 0})
        with pytest.warns(UserWarning, match="different config/seed fingerprint"):
            assert store.load("run", fingerprint={"seed": 1}) is None

    def test_fingerprint_survives_pickle_round_trip(self, store):
        # Fingerprints built from tuples/dicts must compare equal after
        # the pickle round trip, or every resume would silently restart.
        fp = {"seeds": (0, 1, 2), "graph": ("cora", 135, 288, 64, 7)}
        store.save("run", {"step": 1}, fingerprint=fp)
        assert store.load("run", fingerprint=pickle.loads(pickle.dumps(fp))) == {"step": 1}
