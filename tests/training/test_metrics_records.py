"""Tests for metrics, records, and seeding utilities."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.training import (
    EnsembleResult,
    TrainResult,
    confusion_matrix,
    macro_f1,
    make_rng,
    spawn_rngs,
    split_accuracies,
)


class TestMetrics:
    def test_confusion_matrix_values(self):
        preds = np.array([0, 1, 1, 0])
        labels = np.array([0, 1, 0, 0])
        matrix = confusion_matrix(preds, labels)
        np.testing.assert_array_equal(matrix, [[2, 1], [0, 1]])

    def test_confusion_matrix_from_probabilities(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        matrix = confusion_matrix(probs, np.array([0, 1]))
        np.testing.assert_array_equal(matrix, [[1, 0], [0, 1]])

    def test_confusion_matrix_shape_mismatch(self):
        with pytest.raises(ShapeError):
            confusion_matrix(np.array([0]), np.array([0, 1]))

    def test_macro_f1_perfect(self):
        preds = np.array([0, 1, 2])
        assert macro_f1(preds, preds) == 1.0

    def test_macro_f1_worst(self):
        preds = np.array([1, 2, 0])
        labels = np.array([0, 1, 2])
        assert macro_f1(preds, labels) == 0.0

    def test_macro_f1_unweighted_across_classes(self):
        # Class 1 rare but fully correct; class 0 common and half wrong.
        preds = np.array([0, 0, 1, 1, 1])
        labels = np.array([0, 1, 1, 0, 0])
        value = macro_f1(preds, labels)
        assert 0.0 < value < 1.0

    def test_split_accuracies(self, tiny_graph):
        preds = tiny_graph.labels.copy()
        accs = split_accuracies(preds, tiny_graph)
        assert accs == {"train": 1.0, "val": 1.0, "test": 1.0}


class TestRecords:
    def _result(self, **kw):
        defaults = dict(train_accuracy=1.0, val_accuracy=0.8, test_accuracy=0.7,
                        epochs_run=10, best_epoch=5, wall_time_s=1.0)
        defaults.update(kw)
        return TrainResult(**defaults)

    def test_ensemble_result_properties(self):
        result = EnsembleResult(
            ensemble_test_accuracy=0.9,
            ensemble_val_accuracy=0.85,
            base_test_accuracies=[0.7, 0.8],
            base_results=[self._result(wall_time_s=2.0), self._result(wall_time_s=4.0)],
            ensemble_curve=[0.75, 0.9],
        )
        assert result.average_base_accuracy == pytest.approx(0.75)
        assert result.ensemble_gain == pytest.approx(0.15)
        assert result.last_base_test_accuracy == 0.8
        assert result.average_model_time_s == pytest.approx(3.0)
        assert result.models_to_reach(0.8) == 2
        assert result.models_to_reach(0.7) == 1
        assert result.models_to_reach(0.95) is None
        assert "ensemble=" in result.summary()

    def test_average_model_time_empty(self):
        result = EnsembleResult(0.5, 0.5, [0.5])
        assert result.average_model_time_s == 0.0


class TestSeeding:
    def test_make_rng_deterministic(self):
        assert make_rng(3).random() == make_rng(3).random()

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, 3)
        values = [rng.random() for rng in rngs]
        assert len(set(values)) == 3

    def test_spawn_rngs_reproducible(self):
        a = [rng.random() for rng in spawn_rngs(42, 4)]
        b = [rng.random() for rng in spawn_rngs(42, 4)]
        assert a == b
