"""Tests for the Trainer loop."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.models import GCN
from repro.tensor import Tensor, ops
from repro.training import Trainer, make_rng


class TestTrainerBasics:
    def test_returns_result_with_history(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        result = Trainer(max_epochs=20, record_history=True).fit(model, tiny_graph)
        assert len(result.history) == result.epochs_run
        assert {"epoch", "loss", "val_accuracy"} <= set(result.history[0])

    def test_no_history_by_default(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        result = Trainer(max_epochs=10).fit(model, tiny_graph)
        assert result.history == []

    def test_restores_best_checkpoint(self, tiny_graph):
        from repro.tensor.functional import accuracy

        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        result = Trainer(max_epochs=60, patience=10).fit(model, tiny_graph)
        val_now = accuracy(model.predict_logits(tiny_graph), tiny_graph.labels, tiny_graph.val_index)
        assert val_now == pytest.approx(result.val_accuracy)

    def test_early_stopping_respects_min_epochs(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        trainer = Trainer(max_epochs=100, patience=1, min_epochs=30)
        result = trainer.fit(model, tiny_graph)
        assert result.epochs_run >= 30

    def test_early_stopping_caps_epochs(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        result = Trainer(max_epochs=200, patience=5, min_epochs=1).fit(model, tiny_graph)
        assert result.epochs_run <= 200

    def test_invalid_max_epochs(self):
        with pytest.raises(TrainingError):
            Trainer(max_epochs=0)

    def test_summary_string(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        result = Trainer(max_epochs=10).fit(model, tiny_graph)
        assert "val=" in result.summary() and "test=" in result.summary()


class TestCustomization:
    def test_custom_loss_fn_used(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        calls = []

        def loss_fn(m, logits, epoch):
            calls.append(epoch)
            return ops.mean(ops.mul(logits, logits))

        Trainer(max_epochs=5, min_epochs=1).fit(model, tiny_graph, loss_fn=loss_fn)
        assert calls == [0, 1, 2, 3, 4]

    def test_epoch_callback_invoked_before_each_epoch(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        seen = []
        Trainer(max_epochs=4, min_epochs=1).fit(
            model, tiny_graph, epoch_callback=lambda e, m: seen.append((e, m is model))
        )
        assert seen == [(0, True), (1, True), (2, True), (3, True)]

    def test_weight_decay_shrinks_weights(self, tiny_graph):
        def norm_after(weight_decay):
            model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0),
                        hidden=8, dropout=0.0)
            Trainer(max_epochs=40, patience=40, weight_decay=weight_decay).fit(model, tiny_graph)
            return sum(np.abs(p.data).sum() for p in model.parameters())

        assert norm_after(0.05) < norm_after(0.0)
