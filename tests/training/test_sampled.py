"""SampledTrainer: contract, determinism, and the differential battery.

The differential tests pin the design invariant that makes mini-batch
training trustworthy here: with every fanout covering the full neighbor
list, one batch spanning the whole seed pool, and dropout disabled, the
sampled path must reproduce full-batch training — blocks are bitwise
rows of the global Â (see ``tests/sampling/test_blocks.py``), so the
only drift is sub-ulp summation-order noise inside spmm.
"""

import numpy as np
import pytest

from repro.core.config import RDDConfig
from repro.core.rdd import RDDTrainer
from repro.errors import TrainingError
from repro.models.gcn import GCN
from repro.training.sampled import SampledTrainer, SamplingPlan, sampled_supervised_loss
from repro.training.trainer import Trainer


def make_gcn(graph, seed=3, dropout=0.0):
    return GCN(
        graph.num_features,
        graph.num_classes,
        np.random.default_rng(seed),
        hidden=16,
        dropout=dropout,
    )


def full_fanouts(graph):
    max_deg = int(np.diff(graph.adjacency.indptr).max())
    return (max_deg, max_deg)


class TestConstruction:
    def test_int_fanout_replicates_across_layers(self, tiny_graph):
        trainer = SampledTrainer(fanouts=4, batch_size=8, max_epochs=1)
        model = make_gcn(tiny_graph)
        assert trainer._model_fanouts(model) == (4, 4)

    def test_fanout_arity_must_match_layers(self, tiny_graph):
        trainer = SampledTrainer(fanouts=(3, 3, 3), batch_size=8, max_epochs=1)
        with pytest.raises(TrainingError, match="fanouts"):
            trainer._model_fanouts(make_gcn(tiny_graph))

    def test_validation(self):
        with pytest.raises(TrainingError):
            SampledTrainer(fanouts=())
        with pytest.raises(TrainingError):
            SampledTrainer(fanouts=(3, 0))
        with pytest.raises(TrainingError):
            SampledTrainer(batch_size=0)
        with pytest.raises(TrainingError):
            SampledTrainer(eval_every=0)

    def test_needs_layered_model(self, tiny_graph):
        class Opaque:
            pass

        with pytest.raises(TrainingError, match="layers"):
            SampledTrainer(max_epochs=1)._model_fanouts(Opaque())


class TestTrainingLoop:
    def test_fit_trains_and_reports(self, tiny_graph):
        model = make_gcn(tiny_graph, dropout=0.5)
        result = SampledTrainer(
            fanouts=(3, 3), batch_size=5, sample_seed=0, max_epochs=12, patience=50
        ).fit(model, tiny_graph)
        assert result.epochs_run == 12
        assert result.test_accuracy > 0.6  # two-block graph is easy

    def test_deterministic_across_runs(self, tiny_graph):
        results = []
        for _ in range(2):
            model = make_gcn(tiny_graph, dropout=0.5)
            results.append(
                SampledTrainer(
                    fanouts=(3, 3), batch_size=5, sample_seed=7, max_epochs=6, patience=50
                ).fit(model, tiny_graph)
            )
        np.testing.assert_array_equal(results[0].predictions, results[1].predictions)
        assert results[0].test_accuracy == results[1].test_accuracy

    def test_sample_seed_changes_trajectory(self, tiny_graph):
        preds = []
        for sample_seed in (0, 1):
            model = make_gcn(tiny_graph, dropout=0.5)
            preds.append(
                SampledTrainer(
                    fanouts=(2, 2), batch_size=4, sample_seed=sample_seed,
                    max_epochs=6, patience=50,
                ).fit(model, tiny_graph).predictions
            )
        assert not np.array_equal(preds[0], preds[1])

    def test_eval_every_amortizes_validation(self, tiny_graph):
        model = make_gcn(tiny_graph)
        calls = {"n": 0}
        original = GCN.predict_logits

        def counting(self, graph):
            calls["n"] += 1
            return original(self, graph)

        GCN.predict_logits = counting
        try:
            SampledTrainer(
                fanouts=(3, 3), batch_size=8, max_epochs=8, patience=50, eval_every=4
            ).fit(model, tiny_graph)
        finally:
            GCN.predict_logits = original
        # Evals at epochs 4 and 8 plus the final best-state forward.
        assert calls["n"] == 3

    def test_none_loss_skips_batch(self, tiny_graph):
        model = make_gcn(tiny_graph)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        result = SampledTrainer(
            fanouts=(3, 3), batch_size=8, max_epochs=2, patience=50
        ).fit(model, tiny_graph, loss_fn=lambda m, logits, seeds, epoch: None)
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])
        assert result.epochs_run == 2

    def test_plan_fn_controls_seed_pool(self, tiny_graph):
        seen = []

        def loss_fn(model, logits, seeds, epoch):
            seen.append(np.asarray(seeds))
            return sampled_supervised_loss(tiny_graph)(model, logits, seeds, epoch)

        pool = tiny_graph.train_index[:4]
        SampledTrainer(fanouts=(3, 3), batch_size=2, max_epochs=2, patience=50).fit(
            make_gcn(tiny_graph), tiny_graph,
            loss_fn=loss_fn,
            plan_fn=lambda epoch: SamplingPlan(seeds=pool),
        )
        visited = np.unique(np.concatenate(seen))
        np.testing.assert_array_equal(visited, np.sort(pool))

    def test_record_history(self, tiny_graph):
        result = SampledTrainer(
            fanouts=(3, 3), batch_size=8, max_epochs=3, patience=50, record_history=True
        ).fit(make_gcn(tiny_graph), tiny_graph)
        assert len(result.history) == 3
        assert {"epoch", "loss", "val_accuracy"} <= set(result.history[0])


class TestDifferentialGCN:
    """Full fanout + one batch + dropout 0 == full-batch training."""

    def test_matches_full_batch_trainer(self, small_citation):
        g = small_citation
        sampled = SampledTrainer(
            fanouts=full_fanouts(g), batch_size=g.num_nodes, sample_seed=0,
            max_epochs=12, patience=50,
        ).fit(make_gcn(g), g, loss_fn=sampled_supervised_loss(g))
        full = Trainer(max_epochs=12, patience=50).fit(make_gcn(g), g)
        np.testing.assert_allclose(
            sampled.predictions, full.predictions, rtol=0, atol=1e-12
        )
        assert sampled.test_accuracy == full.test_accuracy
        assert sampled.val_accuracy == full.val_accuracy
        assert sampled.best_epoch == full.best_epoch

    def test_matches_on_two_block_graph(self, tiny_graph):
        sampled = SampledTrainer(
            fanouts=full_fanouts(tiny_graph), batch_size=tiny_graph.num_nodes,
            sample_seed=0, max_epochs=8, patience=50,
        ).fit(make_gcn(tiny_graph), tiny_graph)
        full = Trainer(max_epochs=8, patience=50).fit(make_gcn(tiny_graph), tiny_graph)
        np.testing.assert_allclose(
            sampled.predictions, full.predictions, rtol=0, atol=1e-12
        )
        assert sampled.test_accuracy == full.test_accuracy


class TestDifferentialRDD:
    """Sampled RDD students reduce to full-batch RDD at full coverage."""

    def test_matches_full_batch_rdd(self, small_citation):
        g = small_citation
        base = dict(num_base_models=2, max_epochs=8, patience=50, hidden=16, dropout=0.0)
        full = RDDTrainer(RDDConfig(**base)).fit(g, seed=0)
        sampled = RDDTrainer(
            RDDConfig(
                sampler="neighbor", fanouts=full_fanouts(g), batch_size=g.num_nodes, **base
            )
        ).fit(g, seed=0)
        assert sampled.base_test_accuracies == full.base_test_accuracies
        assert sampled.ensemble_test_accuracy == full.ensemble_test_accuracy
        assert sampled.ensemble_val_accuracy == full.ensemble_val_accuracy


class TestSampledRDD:
    def test_real_fanouts_train_and_are_deterministic(self, tiny_graph):
        config = RDDConfig(
            num_base_models=2, max_epochs=8, patience=50, hidden=16,
            sampler="neighbor", fanouts=(3, 3), batch_size=10,
        )
        first = RDDTrainer(config).fit(tiny_graph, seed=0)
        second = RDDTrainer(config).fit(tiny_graph, seed=0)
        assert first.ensemble_test_accuracy == second.ensemble_test_accuracy
        assert first.base_test_accuracies == second.base_test_accuracies
        assert 0.0 <= first.ensemble_test_accuracy <= 1.0

    def test_reliability_sampling_toggle_changes_trajectory(self, tiny_graph):
        base = dict(
            num_base_models=2, max_epochs=8, patience=50, hidden=16,
            sampler="neighbor", fanouts=(2, 2), batch_size=6,
        )
        on = RDDTrainer(RDDConfig(reliability_sampling=True, **base)).fit(tiny_graph, seed=0)
        off = RDDTrainer(RDDConfig(reliability_sampling=False, **base)).fit(tiny_graph, seed=0)
        on_preds = on.base_results[1].predictions
        off_preds = off.base_results[1].predictions
        assert not np.array_equal(on_preds, off_preds)

    def test_eval_every_runs(self, tiny_graph):
        config = RDDConfig(
            num_base_models=2, max_epochs=6, patience=50, hidden=16,
            sampler="neighbor", fanouts=(3, 3), batch_size=10, eval_every=3,
        )
        report = RDDTrainer(config).fit(tiny_graph, seed=0)
        assert all(r.epochs_run == 6 for r in report.base_results)
