"""End-to-end CLI smoke test: every registered experiment runs to completion.

Each experiment executes at an extra-small budget (tiny graphs, few
epochs); this guards the full harness surface — argument plumbing,
report construction, formatting, figure rendering — not the accuracies.
"""

import pytest

from repro.cli import EXPERIMENTS, main

TINY_ARGS = [
    "--scale", "0.1",
    "--seeds", "0",
    "--base-models", "2",
    "--max-epochs", "8",
    "--patience", "8",
    "--hidden", "8",
]

# The heaviest harnesses get singled out so a slow run is attributable.
LIGHT = sorted(set(EXPERIMENTS) - {"table4", "table7", "fig6"})


@pytest.mark.parametrize("experiment", LIGHT)
def test_cli_runs_experiment(experiment, capsys):
    code = main(["run", experiment, *TINY_ARGS])
    assert code == 0
    out = capsys.readouterr().out
    assert "==" in out  # a formatted report was printed


def test_cli_runs_fig6(capsys):
    code = main(["run", "fig6", *TINY_ARGS])
    assert code == 0
    out = capsys.readouterr().out
    assert "labels_per_class" in out


@pytest.mark.parametrize("experiment", ["table7"])
def test_cli_runs_grid_experiments(experiment, capsys):
    code = main(["run", experiment, *TINY_ARGS])
    assert code == 0


def test_cli_runs_table4(capsys):
    code = main(["run", "table4", *TINY_ARGS])
    assert code == 0
    out = capsys.readouterr().out
    assert "RDD(Single)" in out
