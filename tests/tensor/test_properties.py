"""Hypothesis property tests for the autodiff engine.

These complement the finite-difference gradchecks with algebraic
invariants that must hold for arbitrary inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, ops

finite_floats = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=finite_floats)


class TestAlgebraicIdentities:
    @settings(max_examples=30, deadline=None)
    @given(arrays((3, 4)), arrays((3, 4)))
    def test_addition_commutes(self, a, b):
        left = ops.add(Tensor(a), Tensor(b)).data
        right = ops.add(Tensor(b), Tensor(a)).data
        np.testing.assert_allclose(left, right)

    @settings(max_examples=30, deadline=None)
    @given(arrays((2, 3)))
    def test_double_negation(self, a):
        out = (-(-Tensor(a))).data
        np.testing.assert_allclose(out, a)

    @settings(max_examples=30, deadline=None)
    @given(arrays((4,)))
    def test_sub_is_add_neg(self, a):
        x = Tensor(a)
        np.testing.assert_allclose(ops.sub(x, x).data, np.zeros_like(a))

    @settings(max_examples=30, deadline=None)
    @given(arrays((3, 3)), arrays((3, 3)))
    def test_matmul_matches_numpy(self, a, b):
        np.testing.assert_allclose(ops.matmul(Tensor(a), Tensor(b)).data, a @ b)

    @settings(max_examples=30, deadline=None)
    @given(arrays((2, 5)))
    def test_transpose_involution(self, a):
        np.testing.assert_allclose(ops.transpose(ops.transpose(Tensor(a))).data, a)

    @settings(max_examples=30, deadline=None)
    @given(arrays((3, 4)))
    def test_sum_equals_numpy(self, a):
        assert ops.sum(Tensor(a)).item() == pytest.approx(a.sum(), rel=1e-10, abs=1e-10)


class TestSoftmaxProperties:
    @settings(max_examples=40, deadline=None)
    @given(arrays((5, 4)))
    def test_softmax_rows_are_distributions(self, a):
        probs = ops.softmax(Tensor(a), axis=1).data
        assert (probs >= 0).all()
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(arrays((4, 3)), st.floats(-5, 5, allow_nan=False))
    def test_softmax_shift_invariance(self, a, shift):
        base = ops.softmax(Tensor(a), axis=1).data
        shifted = ops.softmax(Tensor(a + shift), axis=1).data
        np.testing.assert_allclose(base, shifted, atol=1e-10)

    @settings(max_examples=40, deadline=None)
    @given(arrays((4, 3)))
    def test_log_softmax_exp_consistency(self, a):
        log_probs = ops.log_softmax(Tensor(a), axis=1).data
        np.testing.assert_allclose(np.exp(log_probs).sum(axis=1), np.ones(4), atol=1e-10)

    @settings(max_examples=40, deadline=None)
    @given(arrays((4, 3)))
    def test_softmax_preserves_argmax(self, a):
        # Skip near-ties: float rounding inside exp can flip the winner.
        sorted_rows = np.sort(a, axis=1)
        gaps = sorted_rows[:, -1] - sorted_rows[:, -2]
        if (gaps < 1e-6).any():
            return
        probs = ops.softmax(Tensor(a), axis=1).data
        np.testing.assert_array_equal(probs.argmax(axis=1), a.argmax(axis=1))


class TestGradientLinearity:
    @settings(max_examples=25, deadline=None)
    @given(arrays((3, 3)), st.floats(0.1, 5.0))
    def test_gradient_scales_with_output_weight(self, a, scale):
        # d(scale * sum(x))/dx == scale everywhere.
        x = Tensor(a, requires_grad=True)
        ops.mul(ops.sum(x), scale).backward()
        np.testing.assert_allclose(x.grad, np.full_like(a, scale), atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(arrays((4,)), arrays((4,)))
    def test_grad_of_sum_splits_additively(self, a, b):
        # d(sum(x) + sum(y)) gives ones for both operands.
        x, y = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        ops.add(ops.sum(x), ops.sum(y)).backward()
        np.testing.assert_allclose(x.grad, np.ones_like(a))
        np.testing.assert_allclose(y.grad, np.ones_like(b))

    @settings(max_examples=25, deadline=None)
    @given(arrays((5,)))
    def test_relu_gradient_mask(self, a):
        x = Tensor(a, requires_grad=True)
        ops.sum(ops.relu(x)).backward()
        np.testing.assert_allclose(x.grad, (a > 0).astype(float))


class TestGatherScatterDuality:
    @settings(max_examples=25, deadline=None)
    @given(
        arrays((6, 2)),
        hnp.arrays(np.int64, (6,), elements=st.integers(0, 5)),
    )
    def test_scatter_then_total_preserves_sum(self, values, segments):
        out = ops.scatter_add_rows(Tensor(values), segments, 6)
        assert out.data.sum() == pytest.approx(values.sum(), rel=1e-9, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(hnp.arrays(np.int64, (7,), elements=st.integers(0, 4)))
    def test_gather_of_identity_is_one_hot(self, index):
        eye = Tensor(np.eye(5))
        out = ops.gather(eye, index)
        expected = np.eye(5)[index]
        np.testing.assert_allclose(out.data, expected)
