"""Fuzz testing of the autodiff engine.

Builds random expression DAGs from the op vocabulary and verifies every
analytic gradient against central finite differences.  This catches
interaction bugs (broadcasting × reuse × mixed ops) that targeted
gradchecks miss.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, ops

# Binary ops safe for arbitrary finite inputs.
BINARY_OPS = [ops.add, ops.sub, ops.mul]
# Unary ops safe for arbitrary finite inputs (smooth almost everywhere;
# inputs are kept away from kinks by the offset below).
UNARY_OPS = [ops.tanh, ops.sigmoid, lambda t: ops.mul(t, 0.5), ops.exp]


def build_random_expression(rng: np.random.Generator, leaves, depth: int):
    """Randomly combine ``leaves`` into a scalar expression tree."""
    pool = list(leaves)
    for _ in range(depth):
        choice = rng.random()
        if choice < 0.55 and len(pool) >= 2:
            i, j = rng.choice(len(pool), size=2, replace=False)
            op = BINARY_OPS[rng.integers(len(BINARY_OPS))]
            pool.append(op(pool[int(i)], pool[int(j)]))
        else:
            i = rng.integers(len(pool))
            op = UNARY_OPS[rng.integers(len(UNARY_OPS))]
            pool.append(op(pool[int(i)]))
    # Reduce everything to one scalar so backward() is valid.
    total = None
    for node in pool:
        term = ops.sum(node)
        total = term if total is None else ops.add(total, term)
    return total


class TestFuzzedGradients:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_dag_gradients_match_finite_differences(self, seed):
        rng = np.random.default_rng(seed)
        num_leaves = int(rng.integers(2, 4))
        shape = (int(rng.integers(2, 4)), int(rng.integers(2, 4)))
        leaves = [
            Tensor(rng.normal(scale=0.5, size=shape), requires_grad=True)
            for _ in range(num_leaves)
        ]

        def expression():
            return build_random_expression(np.random.default_rng(seed + 1000), leaves, depth=5)

        check_gradients(expression, leaves, atol=1e-4, rtol=1e-3)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_matmul_chains(self, seed):
        rng = np.random.default_rng(seed + 50)
        dims = [int(rng.integers(2, 5)) for _ in range(4)]
        mats = [
            Tensor(rng.normal(scale=0.5, size=(dims[i], dims[i + 1])), requires_grad=True)
            for i in range(3)
        ]

        def expression():
            out = mats[0]
            for m in mats[1:]:
                out = ops.matmul(out, m)
            return ops.sum(ops.tanh(out))

        check_gradients(expression, mats, atol=1e-4, rtol=1e-3)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_softmax_gather_pipelines(self, seed):
        rng = np.random.default_rng(seed + 100)
        n, k = int(rng.integers(3, 7)), int(rng.integers(2, 5))
        logits = Tensor(rng.normal(size=(n, k)), requires_grad=True)
        index = rng.integers(0, n, size=n)
        weights = Tensor(rng.normal(size=(n, k)))

        def expression():
            probs = ops.softmax(logits, axis=1)
            picked = ops.gather(probs, index)
            return ops.sum(ops.mul(picked, weights))

        check_gradients(expression, [logits], atol=1e-4, rtol=1e-3)
