"""Forward-value correctness for every differentiable op."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import Tensor, ops


def t(arr, grad=True):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=grad)


class TestArithmetic:
    def test_add_broadcasting(self):
        out = ops.add(t(np.ones((2, 3))), t(np.array([1.0, 2.0, 3.0])))
        np.testing.assert_allclose(out.data, [[2, 3, 4], [2, 3, 4]])

    def test_sub(self):
        out = ops.sub(t([5.0]), t([2.0]))
        np.testing.assert_allclose(out.data, [3.0])

    def test_mul(self):
        out = ops.mul(t([2.0, 3.0]), t([4.0, 5.0]))
        np.testing.assert_allclose(out.data, [8.0, 15.0])

    def test_div(self):
        out = ops.div(t([8.0]), t([2.0]))
        np.testing.assert_allclose(out.data, [4.0])

    def test_power(self):
        out = ops.power(t([2.0, 3.0]), 3)
        np.testing.assert_allclose(out.data, [8.0, 27.0])

    def test_matmul(self):
        a = t([[1.0, 2.0], [3.0, 4.0]])
        b = t([[5.0], [6.0]])
        np.testing.assert_allclose(ops.matmul(a, b).data, [[17.0], [39.0]])

    def test_matmul_rejects_non_2d(self):
        with pytest.raises(ShapeError):
            ops.matmul(t([1.0, 2.0]), t([[1.0], [2.0]]))


class TestIndexingShaping:
    def test_gather_rows(self):
        a = t(np.arange(12).reshape(4, 3))
        out = ops.gather(a, np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[6, 7, 8], [0, 1, 2]])

    def test_gather_tuple_index(self):
        a = t(np.arange(12).reshape(4, 3))
        out = ops.gather(a, (np.array([0, 1]), np.array([2, 1])))
        np.testing.assert_allclose(out.data, [2, 4])

    def test_gather_backward_accumulates_repeated_indices(self):
        a = t(np.zeros((3, 2)))
        out = ops.gather(a, np.array([1, 1]))
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 0], [2, 2], [0, 0]])

    def test_scatter_add_rows(self):
        values = t([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        out = ops.scatter_add_rows(values, np.array([0, 1, 0]), 2)
        np.testing.assert_allclose(out.data, [[4.0, 4.0], [2.0, 2.0]])

    def test_scatter_add_rows_bad_index_shape(self):
        with pytest.raises(ShapeError):
            ops.scatter_add_rows(t(np.ones((3, 2))), np.array([0, 1]), 2)

    def test_concat_axis1(self):
        out = ops.concat([t(np.ones((2, 2))), t(np.zeros((2, 3)))], axis=1)
        assert out.shape == (2, 5)

    def test_concat_axis0(self):
        out = ops.concat([t(np.ones((1, 2))), t(np.zeros((3, 2)))], axis=0)
        assert out.shape == (4, 2)

    def test_concat_backward_splits_gradient(self):
        a, b = t(np.ones((2, 2))), t(np.ones((2, 1)))
        out = ops.concat([a, b], axis=1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((2, 1)))

    def test_reshape(self):
        out = ops.reshape(t(np.arange(6)), (2, 3))
        assert out.shape == (2, 3)

    def test_transpose(self):
        out = ops.transpose(t(np.ones((2, 5))))
        assert out.shape == (5, 2)

    def test_transpose_rejects_1d(self):
        with pytest.raises(ShapeError):
            ops.transpose(t(np.ones(3)))


class TestReductions:
    def test_sum_all(self):
        assert ops.sum(t(np.ones((2, 3)))).item() == pytest.approx(6.0)

    def test_sum_axis(self):
        out = ops.sum(t(np.ones((2, 3))), axis=0)
        np.testing.assert_allclose(out.data, [2.0, 2.0, 2.0])

    def test_sum_keepdims(self):
        out = ops.sum(t(np.ones((2, 3))), axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean_all(self):
        assert ops.mean(t([2.0, 4.0])).item() == pytest.approx(3.0)

    def test_mean_axis_backward(self):
        a = t(np.ones((2, 4)))
        ops.mean(a, axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 4), 0.25))

    def test_max_along(self):
        out = ops.max_along(t([[1.0, 5.0], [7.0, 2.0]]), axis=1)
        np.testing.assert_allclose(out.data, [5.0, 7.0])

    def test_max_along_tie_splits_gradient(self):
        a = t([[3.0, 3.0]])
        ops.max_along(a, axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])


class TestNonlinearities:
    def test_relu(self):
        np.testing.assert_allclose(ops.relu(t([-1.0, 0.0, 2.0])).data, [0.0, 0.0, 2.0])

    def test_leaky_relu(self):
        np.testing.assert_allclose(
            ops.leaky_relu(t([-10.0, 10.0]), 0.1).data, [-1.0, 10.0]
        )

    def test_elu_continuity_at_zero(self):
        near = ops.elu(t([1e-9, -1e-9])).data
        assert abs(near[0] - near[1]) < 1e-6

    def test_exp_log_roundtrip(self):
        x = t([0.5, 1.5])
        np.testing.assert_allclose(ops.log(ops.exp(x)).data, x.data)

    def test_tanh_range(self):
        out = ops.tanh(t([-100.0, 0.0, 100.0])).data
        np.testing.assert_allclose(out, [-1.0, 0.0, 1.0], atol=1e-12)

    def test_sigmoid_symmetry(self):
        out = ops.sigmoid(t([-2.0, 2.0])).data
        assert out[0] + out[1] == pytest.approx(1.0)


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        out = ops.softmax(t(np.random.default_rng(0).normal(size=(5, 4))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5))

    def test_softmax_is_shift_invariant(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        a = ops.softmax(t(x)).data
        b = ops.softmax(t(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_softmax_handles_large_values(self):
        out = ops.softmax(t([[1000.0, 1000.0]])).data
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.random.default_rng(2).normal(size=(4, 3))
        np.testing.assert_allclose(
            ops.log_softmax(t(x)).data, np.log(ops.softmax(t(x)).data), atol=1e-12
        )


class TestDropoutWhere:
    def test_dropout_identity_in_eval(self):
        x = t(np.ones((10, 10)))
        out = ops.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_dropout_identity_at_rate_zero(self):
        x = t(np.ones((4, 4)))
        assert ops.dropout(x, 0.0, np.random.default_rng(0)) is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(3)
        x = t(np.ones((200, 200)))
        out = ops.dropout(x, 0.3, rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            ops.dropout(t(np.ones(3)), 1.0, np.random.default_rng(0))

    def test_where_selects(self):
        cond = np.array([True, False])
        out = ops.where(cond, t([1.0, 1.0]), t([9.0, 9.0]))
        np.testing.assert_allclose(out.data, [1.0, 9.0])

    def test_where_routes_gradients(self):
        cond = np.array([True, False])
        a, b = t([1.0, 1.0]), t([9.0, 9.0])
        ops.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])
