"""Finite-difference verification of every op's backward pass.

These are the ground-truth tests for the autodiff substrate: if these
pass, the gradients that train every model in this repository are right.
"""

import numpy as np
import pytest

import scipy.sparse as sp

from repro.tensor import GradArena, Tensor, check_gradients, functional, fused, ops
from repro.tensor.fused import use_fused_ops
from repro.tensor.sparse import sparse_feature_matmul, spmm

RNG = np.random.default_rng(7)


def param(shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


class TestElementwiseGradients:
    def test_add(self):
        a, b = param((3, 4)), param((3, 4))
        check_gradients(lambda: ops.sum(ops.add(a, b) * 1.5), [a, b])

    def test_add_broadcast_bias(self):
        a, b = param((3, 4)), param((4,))
        check_gradients(lambda: ops.sum(ops.mul(ops.add(a, b), ops.add(a, b))), [a, b])

    def test_sub(self):
        a, b = param((2, 5)), param((2, 5))
        check_gradients(lambda: ops.sum(ops.mul(ops.sub(a, b), ops.sub(a, b))), [a, b])

    def test_mul(self):
        a, b = param((4,)), param((4,))
        check_gradients(lambda: ops.sum(ops.mul(a, b)), [a, b])

    def test_div(self):
        a = param((3,))
        b = Tensor(np.abs(RNG.normal(size=3)) + 1.0, requires_grad=True)
        check_gradients(lambda: ops.sum(ops.div(a, b)), [a, b])

    def test_power(self):
        a = Tensor(np.abs(RNG.normal(size=4)) + 0.5, requires_grad=True)
        check_gradients(lambda: ops.sum(ops.power(a, 3.0)), [a])

    def test_relu(self):
        a = Tensor(RNG.normal(size=(3, 3)) + 0.05, requires_grad=True)
        check_gradients(lambda: ops.sum(ops.relu(a)), [a], epsilon=1e-7)

    def test_leaky_relu(self):
        a = Tensor(RNG.normal(size=(3, 3)) + 0.05, requires_grad=True)
        check_gradients(lambda: ops.sum(ops.leaky_relu(a, 0.2)), [a], epsilon=1e-7)

    def test_elu(self):
        a = param((3, 3))
        check_gradients(lambda: ops.sum(ops.elu(a)), [a])

    def test_exp(self):
        a = param((3,))
        check_gradients(lambda: ops.sum(ops.exp(a)), [a])

    def test_log(self):
        a = Tensor(np.abs(RNG.normal(size=3)) + 1.0, requires_grad=True)
        check_gradients(lambda: ops.sum(ops.log(a)), [a])

    def test_tanh(self):
        a = param((4,))
        check_gradients(lambda: ops.sum(ops.mul(ops.tanh(a), ops.tanh(a))), [a])

    def test_sigmoid(self):
        a = param((4,))
        check_gradients(lambda: ops.sum(ops.sigmoid(a)), [a])


class TestLinalgGradients:
    def test_matmul_both_operands(self):
        a, b = param((3, 4)), param((4, 2))
        check_gradients(lambda: ops.sum(ops.matmul(a, b)), [a, b])

    def test_matmul_quadratic(self):
        a = param((3, 3))
        check_gradients(lambda: ops.sum(ops.mul(ops.matmul(a, a), 0.5)), [a])

    def test_spmm(self):
        import scipy.sparse as sp

        matrix = sp.random(5, 4, density=0.5, random_state=1, format="csr")
        dense = param((4, 3))
        check_gradients(lambda: ops.sum(spmm(matrix, dense)), [dense])

    def test_transpose(self):
        a = param((2, 4))
        check_gradients(lambda: ops.sum(ops.mul(ops.transpose(a), ops.transpose(a))), [a])

    def test_reshape(self):
        a = param((2, 6))
        check_gradients(lambda: ops.sum(ops.mul(ops.reshape(a, (3, 4)), 2.0)), [a])


class TestReductionGradients:
    def test_sum_axis0(self):
        a = param((3, 4))
        check_gradients(lambda: ops.sum(ops.mul(ops.sum(a, axis=0), ops.sum(a, axis=0))), [a])

    def test_mean(self):
        a = param((4, 2))
        check_gradients(lambda: ops.mul(ops.mean(a), 3.0), [a])

    def test_mean_axis1_keepdims(self):
        a = param((3, 5))
        check_gradients(lambda: ops.sum(ops.mul(ops.mean(a, axis=1, keepdims=True), 2.0)), [a])

    def test_max_along(self):
        # Use well-separated values so the argmax is stable under epsilon.
        a = Tensor(np.arange(12, dtype=np.float64).reshape(3, 4) * 2.0, requires_grad=True)
        check_gradients(lambda: ops.sum(ops.max_along(a, axis=1)), [a])


class TestSoftmaxGradients:
    def test_softmax(self):
        a = param((3, 4))
        weights = Tensor(RNG.normal(size=(3, 4)))
        check_gradients(lambda: ops.sum(ops.mul(ops.softmax(a, axis=1), weights)), [a])

    def test_log_softmax(self):
        a = param((4, 3))
        weights = Tensor(RNG.normal(size=(4, 3)))
        check_gradients(lambda: ops.sum(ops.mul(ops.log_softmax(a, axis=1), weights)), [a])


class TestIndexingGradients:
    def test_gather_rows(self):
        a = param((5, 3))
        idx = np.array([0, 2, 2, 4])
        check_gradients(lambda: ops.sum(ops.mul(ops.gather(a, idx), ops.gather(a, idx))), [a])

    def test_scatter_add(self):
        a = param((6, 2))
        seg = np.array([0, 0, 1, 2, 2, 2])
        check_gradients(
            lambda: ops.sum(ops.mul(ops.scatter_add_rows(a, seg, 3), ops.scatter_add_rows(a, seg, 3))),
            [a],
        )

    def test_concat(self):
        a, b = param((2, 2)), param((2, 3))
        check_gradients(lambda: ops.sum(ops.mul(ops.concat([a, b], axis=1), 2.0)), [a, b])


class TestCompositeGradients:
    def test_two_layer_network(self):
        x = Tensor(RNG.normal(size=(6, 5)))
        w1, w2 = param((5, 4)), param((4, 2))
        targets = Tensor(RNG.normal(size=(6, 2)))

        def loss():
            h = ops.relu(ops.matmul(x, w1))
            out = ops.matmul(h, w2)
            diff = ops.sub(out, targets)
            return ops.mean(ops.sum(ops.mul(diff, diff), axis=1))

        check_gradients(loss, [w1, w2], atol=1e-4)

    def test_cross_entropy_pipeline(self):
        from repro.tensor.functional import cross_entropy

        logits_w = param((5, 3))
        x = Tensor(RNG.normal(size=(7, 5)))
        labels = np.array([0, 1, 2, 0, 1, 2, 0])
        check_gradients(
            lambda: cross_entropy(ops.log_softmax(ops.matmul(x, logits_w), axis=1), labels),
            [logits_w],
            atol=1e-4,
        )


class TestFusedOpGradients:
    """Central finite-difference checks for the fused training-step ops.

    The fused kernels carry hand-written combined backward closures, so
    they get the same ground-truth treatment as the elementary ops, plus
    bitwise parity against the elementary chains they replace.
    """

    def test_fused_softmax_cross_entropy_full(self):
        logits = param((6, 4))
        labels = np.array([0, 1, 2, 3, 0, 1])
        check_gradients(
            lambda: fused.softmax_cross_entropy(logits, labels), [logits], atol=1e-4
        )

    def test_fused_softmax_cross_entropy_masked(self):
        logits = param((8, 3))
        labels = np.array([0, 1, 2, 0, 1, 2, 0, 1])
        index = np.array([1, 3, 6])
        check_gradients(
            lambda: fused.softmax_cross_entropy(logits, labels, index), [logits], atol=1e-4
        )

    def test_fused_linear_dense(self):
        x, w, b = param((5, 4)), param((4, 3)), param((3,))
        check_gradients(lambda: ops.sum(ops.mul(fused.linear(x, w, b), 1.5)), [x, w, b])

    def test_fused_linear_sparse_features(self):
        x = sp.random(6, 4, density=0.5, random_state=3, format="csr")
        w, b = param((4, 3)), param((3,))
        check_gradients(lambda: ops.sum(ops.mul(fused.linear(x, w, b), 1.5)), [w, b])

    def test_fused_linear_no_bias(self):
        x, w = param((4, 3)), param((3, 2))
        check_gradients(lambda: ops.sum(ops.mul(fused.linear(x, w), 2.0)), [x, w])

    def test_fused_gcn_layer_dense_features(self):
        adj = sp.random(5, 5, density=0.4, random_state=1, format="csr")
        x, w, b = param((5, 3)), param((3, 2)), param((2,))
        check_gradients(
            lambda: ops.sum(ops.mul(fused.gcn_layer(adj, x, w, b), 1.5)), [x, w, b]
        )

    def test_fused_gcn_layer_sparse_features(self):
        adj = sp.random(5, 5, density=0.4, random_state=1, format="csr")
        x = sp.random(5, 3, density=0.5, random_state=2, format="csr")
        w, b = param((3, 2)), param((2,))
        check_gradients(
            lambda: ops.sum(ops.mul(fused.gcn_layer(adj, x, w, b), 1.5)), [w, b]
        )

    def test_taped_spmm_cached_transpose_backward(self):
        # spmm's backward routes through the cached sparse transpose;
        # check it against finite differences like any other op.
        adj = sp.random(6, 6, density=0.3, random_state=4, format="csr")
        h = param((6, 3))
        check_gradients(lambda: ops.sum(ops.mul(spmm(adj, h), spmm(adj, h))), [h])

    def test_fused_dropout(self):
        # A fixed-seed rng per evaluation makes the mask deterministic,
        # so finite differencing sees a fixed (masked, rescaled) linear
        # map.  A fresh arena per call keeps earlier evaluations' leased
        # buffers alive while the differencing loop still reads them.
        x = param((6, 5))

        def forward():
            arena = GradArena()
            with arena.record():
                out = fused.dropout(x, 0.4, np.random.default_rng(17))
            return ops.sum(ops.mul(out, 1.5))

        check_gradients(forward, [x])


class TestFusedBitwiseParity:
    """Fused ops must match the elementary chains bit for bit (float64)."""

    def _grads(self, build, params):
        for p in params:
            p.zero_grad()
        loss = build()
        loss.backward()
        return np.asarray(loss.data).copy(), [np.array(p.grad) for p in params]

    def _assert_parity(self, fused_build, legacy_build, params):
        fused_loss, fused_grads = self._grads(fused_build, params)
        legacy_loss, legacy_grads = self._grads(legacy_build, params)
        assert np.array_equal(fused_loss, legacy_loss)
        for fg, lg in zip(fused_grads, legacy_grads):
            assert np.array_equal(fg, lg)

    def test_softmax_cross_entropy_parity(self):
        logits = param((9, 4))
        labels = RNG.integers(0, 4, size=9)
        index = np.array([0, 2, 5, 8])
        self._assert_parity(
            lambda: fused.softmax_cross_entropy(logits, labels, index),
            lambda: functional.cross_entropy(
                ops.log_softmax(ops.gather(logits, index), axis=1), labels[index]
            ),
            [logits],
        )

    def test_linear_parity_dense(self):
        x, w, b = param((6, 5)), param((5, 3)), param((3,))
        self._assert_parity(
            lambda: ops.sum(ops.mul(fused.linear(x, w, b), 1.5)),
            lambda: ops.sum(ops.mul(ops.add(ops.matmul(x, w), b), 1.5)),
            [x, w, b],
        )

    def test_linear_parity_sparse(self):
        x = sp.random(7, 5, density=0.4, random_state=5, format="csr")
        w, b = param((5, 3)), param((3,))
        self._assert_parity(
            lambda: ops.sum(ops.mul(fused.linear(x, w, b), 1.5)),
            lambda: ops.sum(ops.mul(ops.add(sparse_feature_matmul(x, w), b), 1.5)),
            [w, b],
        )

    def test_gcn_layer_parity_dense(self):
        adj = sp.random(6, 6, density=0.4, random_state=6, format="csr")
        x, w, b = param((6, 4)), param((4, 3)), param((3,))
        self._assert_parity(
            lambda: ops.sum(ops.mul(fused.gcn_layer(adj, x, w, b), 1.5)),
            lambda: ops.sum(ops.mul(ops.add(spmm(adj, ops.matmul(x, w)), b), 1.5)),
            [x, w, b],
        )

    def test_gcn_layer_parity_sparse(self):
        adj = sp.random(6, 6, density=0.4, random_state=7, format="csr")
        x = sp.random(6, 4, density=0.5, random_state=8, format="csr")
        w, b = param((4, 3)), param((3,))
        self._assert_parity(
            lambda: ops.sum(ops.mul(fused.gcn_layer(adj, x, w, b), 1.5)),
            lambda: ops.sum(ops.mul(ops.add(spmm(adj, sparse_feature_matmul(x, w)), b), 1.5)),
            [w, b],
        )

    def test_masked_cross_entropy_logits_dispatch_parity(self):
        # The functional seam itself: fused on vs off, same everything.
        logits = param((10, 3))
        labels = RNG.integers(0, 3, size=10)
        index = np.array([1, 4, 7, 9])
        with use_fused_ops(True):
            fused_loss, fused_grads = self._grads(
                lambda: functional.masked_cross_entropy_logits(logits, labels, index), [logits]
            )
        with use_fused_ops(False):
            legacy_loss, legacy_grads = self._grads(
                lambda: functional.masked_cross_entropy_logits(logits, labels, index), [logits]
            )
        assert np.array_equal(fused_loss, legacy_loss)
        assert np.array_equal(fused_grads[0], legacy_grads[0])

    def test_dropout_parity_arena_leased_buffers(self):
        # Identical seeds give identical rng streams, so the arena-leased
        # formulation must reproduce the elementary op bit for bit.
        data = RNG.normal(size=(7, 5))
        x_fused = Tensor(data.copy(), requires_grad=True)
        x_legacy = Tensor(data.copy(), requires_grad=True)
        arena = GradArena()

        def fused_build():
            with arena.record():
                out = fused.dropout(x_fused, 0.35, np.random.default_rng(23))
            return ops.sum(ops.mul(out, 1.5))

        fused_loss, fused_grads = self._grads(fused_build, [x_fused])
        legacy_loss, legacy_grads = self._grads(
            lambda: ops.sum(
                ops.mul(ops.dropout(x_legacy, 0.35, np.random.default_rng(23)), 1.5)
            ),
            [x_legacy],
        )
        assert np.array_equal(fused_loss, legacy_loss)
        assert np.array_equal(fused_grads[0], legacy_grads[0])

    def test_dropout_without_arena_falls_back(self):
        # No recording arena: the fused entry point defers to the
        # elementary op (same rng consumption, same tape node).
        x = param((5, 4))
        fused_out = fused.dropout(x, 0.5, np.random.default_rng(3))
        legacy_out = ops.dropout(x, 0.5, np.random.default_rng(3))
        assert np.array_equal(fused_out.data, legacy_out.data)
