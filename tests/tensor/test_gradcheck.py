"""Finite-difference verification of every op's backward pass.

These are the ground-truth tests for the autodiff substrate: if these
pass, the gradients that train every model in this repository are right.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, ops
from repro.tensor.sparse import spmm

RNG = np.random.default_rng(7)


def param(shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


class TestElementwiseGradients:
    def test_add(self):
        a, b = param((3, 4)), param((3, 4))
        check_gradients(lambda: ops.sum(ops.add(a, b) * 1.5), [a, b])

    def test_add_broadcast_bias(self):
        a, b = param((3, 4)), param((4,))
        check_gradients(lambda: ops.sum(ops.mul(ops.add(a, b), ops.add(a, b))), [a, b])

    def test_sub(self):
        a, b = param((2, 5)), param((2, 5))
        check_gradients(lambda: ops.sum(ops.mul(ops.sub(a, b), ops.sub(a, b))), [a, b])

    def test_mul(self):
        a, b = param((4,)), param((4,))
        check_gradients(lambda: ops.sum(ops.mul(a, b)), [a, b])

    def test_div(self):
        a = param((3,))
        b = Tensor(np.abs(RNG.normal(size=3)) + 1.0, requires_grad=True)
        check_gradients(lambda: ops.sum(ops.div(a, b)), [a, b])

    def test_power(self):
        a = Tensor(np.abs(RNG.normal(size=4)) + 0.5, requires_grad=True)
        check_gradients(lambda: ops.sum(ops.power(a, 3.0)), [a])

    def test_relu(self):
        a = Tensor(RNG.normal(size=(3, 3)) + 0.05, requires_grad=True)
        check_gradients(lambda: ops.sum(ops.relu(a)), [a], epsilon=1e-7)

    def test_leaky_relu(self):
        a = Tensor(RNG.normal(size=(3, 3)) + 0.05, requires_grad=True)
        check_gradients(lambda: ops.sum(ops.leaky_relu(a, 0.2)), [a], epsilon=1e-7)

    def test_elu(self):
        a = param((3, 3))
        check_gradients(lambda: ops.sum(ops.elu(a)), [a])

    def test_exp(self):
        a = param((3,))
        check_gradients(lambda: ops.sum(ops.exp(a)), [a])

    def test_log(self):
        a = Tensor(np.abs(RNG.normal(size=3)) + 1.0, requires_grad=True)
        check_gradients(lambda: ops.sum(ops.log(a)), [a])

    def test_tanh(self):
        a = param((4,))
        check_gradients(lambda: ops.sum(ops.mul(ops.tanh(a), ops.tanh(a))), [a])

    def test_sigmoid(self):
        a = param((4,))
        check_gradients(lambda: ops.sum(ops.sigmoid(a)), [a])


class TestLinalgGradients:
    def test_matmul_both_operands(self):
        a, b = param((3, 4)), param((4, 2))
        check_gradients(lambda: ops.sum(ops.matmul(a, b)), [a, b])

    def test_matmul_quadratic(self):
        a = param((3, 3))
        check_gradients(lambda: ops.sum(ops.mul(ops.matmul(a, a), 0.5)), [a])

    def test_spmm(self):
        import scipy.sparse as sp

        matrix = sp.random(5, 4, density=0.5, random_state=1, format="csr")
        dense = param((4, 3))
        check_gradients(lambda: ops.sum(spmm(matrix, dense)), [dense])

    def test_transpose(self):
        a = param((2, 4))
        check_gradients(lambda: ops.sum(ops.mul(ops.transpose(a), ops.transpose(a))), [a])

    def test_reshape(self):
        a = param((2, 6))
        check_gradients(lambda: ops.sum(ops.mul(ops.reshape(a, (3, 4)), 2.0)), [a])


class TestReductionGradients:
    def test_sum_axis0(self):
        a = param((3, 4))
        check_gradients(lambda: ops.sum(ops.mul(ops.sum(a, axis=0), ops.sum(a, axis=0))), [a])

    def test_mean(self):
        a = param((4, 2))
        check_gradients(lambda: ops.mul(ops.mean(a), 3.0), [a])

    def test_mean_axis1_keepdims(self):
        a = param((3, 5))
        check_gradients(lambda: ops.sum(ops.mul(ops.mean(a, axis=1, keepdims=True), 2.0)), [a])

    def test_max_along(self):
        # Use well-separated values so the argmax is stable under epsilon.
        a = Tensor(np.arange(12, dtype=np.float64).reshape(3, 4) * 2.0, requires_grad=True)
        check_gradients(lambda: ops.sum(ops.max_along(a, axis=1)), [a])


class TestSoftmaxGradients:
    def test_softmax(self):
        a = param((3, 4))
        weights = Tensor(RNG.normal(size=(3, 4)))
        check_gradients(lambda: ops.sum(ops.mul(ops.softmax(a, axis=1), weights)), [a])

    def test_log_softmax(self):
        a = param((4, 3))
        weights = Tensor(RNG.normal(size=(4, 3)))
        check_gradients(lambda: ops.sum(ops.mul(ops.log_softmax(a, axis=1), weights)), [a])


class TestIndexingGradients:
    def test_gather_rows(self):
        a = param((5, 3))
        idx = np.array([0, 2, 2, 4])
        check_gradients(lambda: ops.sum(ops.mul(ops.gather(a, idx), ops.gather(a, idx))), [a])

    def test_scatter_add(self):
        a = param((6, 2))
        seg = np.array([0, 0, 1, 2, 2, 2])
        check_gradients(
            lambda: ops.sum(ops.mul(ops.scatter_add_rows(a, seg, 3), ops.scatter_add_rows(a, seg, 3))),
            [a],
        )

    def test_concat(self):
        a, b = param((2, 2)), param((2, 3))
        check_gradients(lambda: ops.sum(ops.mul(ops.concat([a, b], axis=1), 2.0)), [a, b])


class TestCompositeGradients:
    def test_two_layer_network(self):
        x = Tensor(RNG.normal(size=(6, 5)))
        w1, w2 = param((5, 4)), param((4, 2))
        targets = Tensor(RNG.normal(size=(6, 2)))

        def loss():
            h = ops.relu(ops.matmul(x, w1))
            out = ops.matmul(h, w2)
            diff = ops.sub(out, targets)
            return ops.mean(ops.sum(ops.mul(diff, diff), axis=1))

        check_gradients(loss, [w1, w2], atol=1e-4)

    def test_cross_entropy_pipeline(self):
        from repro.tensor.functional import cross_entropy

        logits_w = param((5, 3))
        x = Tensor(RNG.normal(size=(7, 5)))
        labels = np.array([0, 1, 2, 0, 1, 2, 0])
        check_gradients(
            lambda: cross_entropy(ops.log_softmax(ops.matmul(x, logits_w), axis=1), labels),
            [logits_w],
            atol=1e-4,
        )
