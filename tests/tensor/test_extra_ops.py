"""Tests for abs_/sqrt/clip ops."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, ops


class TestAbs:
    def test_forward(self):
        out = ops.abs_(Tensor([-2.0, 0.0, 3.0]))
        np.testing.assert_allclose(out.data, [2.0, 0.0, 3.0])

    def test_gradient_is_sign(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        ops.sum(ops.abs_(x)).backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0])

    def test_gradcheck(self):
        x = Tensor(np.array([-1.5, 2.5, -0.5]), requires_grad=True)
        check_gradients(lambda: ops.sum(ops.abs_(x)), [x])


class TestSqrt:
    def test_forward(self):
        out = ops.sqrt(Tensor([4.0, 9.0]))
        np.testing.assert_allclose(out.data, [2.0, 3.0])

    def test_gradcheck(self):
        x = Tensor(np.array([1.0, 4.0, 0.25]), requires_grad=True)
        check_gradients(lambda: ops.sum(ops.sqrt(x)), [x])

    def test_gradient_formula(self):
        x = Tensor(np.array([4.0]), requires_grad=True)
        ops.sum(ops.sqrt(x)).backward()
        np.testing.assert_allclose(x.grad, [0.25])  # 1/(2*sqrt(4))


class TestClip:
    def test_forward(self):
        out = ops.clip(Tensor([-5.0, 0.5, 5.0]), 0.0, 1.0)
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0])

    def test_gradient_zero_outside_range(self):
        x = Tensor(np.array([-5.0, 0.5, 5.0]), requires_grad=True)
        ops.sum(ops.clip(x, 0.0, 1.0)).backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            ops.clip(Tensor([1.0]), 2.0, 1.0)

    def test_gradcheck_interior(self):
        x = Tensor(np.array([0.2, 0.4, 0.7]), requires_grad=True)
        check_gradients(lambda: ops.sum(ops.mul(ops.clip(x, 0.0, 1.0), ops.clip(x, 0.0, 1.0))), [x])
