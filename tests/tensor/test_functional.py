"""Tests for loss functions and metrics in repro.tensor.functional."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import Tensor, ops
from repro.tensor.functional import (
    accuracy,
    cross_entropy,
    edge_regularization,
    embedding_mse,
    entropy,
    kl_divergence,
    l2_penalty,
    masked_cross_entropy,
)


def log_probs_for(probs):
    return Tensor(np.log(np.asarray(probs)))


class TestCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        lp = log_probs_for([[0.999, 0.0005, 0.0005]])
        assert cross_entropy(lp, np.array([0])).item() < 0.01

    def test_uniform_prediction_is_log_k(self):
        lp = log_probs_for([[1 / 3] * 3])
        assert cross_entropy(lp, np.array([1])).item() == pytest.approx(np.log(3))

    def test_mean_over_rows(self):
        lp = log_probs_for([[0.5, 0.5], [0.25, 0.75]])
        expected = -(np.log(0.5) + np.log(0.75)) / 2
        assert cross_entropy(lp, np.array([0, 1])).item() == pytest.approx(expected)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            cross_entropy(log_probs_for([[0.5, 0.5]]), np.array([0, 1]))

    def test_gradient_points_toward_label(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        loss = cross_entropy(ops.log_softmax(logits, axis=1), np.array([2]))
        loss.backward()
        assert logits.grad[0, 2] < 0  # pushing the label logit up lowers loss
        assert logits.grad[0, 0] > 0


class TestMaskedCrossEntropy:
    def test_restricts_to_index(self):
        lp = log_probs_for([[0.9, 0.1], [0.1, 0.9], [0.5, 0.5]])
        labels = np.array([0, 0, 0])  # row 1 is wrong, but it's masked out
        loss = masked_cross_entropy(lp, labels, np.array([0]))
        assert loss.item() == pytest.approx(-np.log(0.9))

    def test_empty_index_gives_zero(self):
        lp = log_probs_for([[0.5, 0.5]])
        loss = masked_cross_entropy(lp, np.array([0]), np.array([], dtype=np.int64))
        assert loss.item() == 0.0


class TestEmbeddingMse:
    def test_zero_when_equal(self):
        student = Tensor(np.ones((3, 2)))
        assert embedding_mse(student, np.ones((3, 2))).item() == 0.0

    def test_value_is_mean_row_squared_distance(self):
        student = Tensor(np.zeros((2, 2)))
        teacher = np.array([[1.0, 1.0], [0.0, 2.0]])
        # rows: 2 and 4 → mean 3
        assert embedding_mse(student, teacher).item() == pytest.approx(3.0)

    def test_index_restriction(self):
        student = Tensor(np.zeros((3, 1)))
        teacher = np.array([[1.0], [10.0], [2.0]])
        loss = embedding_mse(student, teacher, np.array([0, 2]))
        assert loss.item() == pytest.approx((1.0 + 4.0) / 2)

    def test_empty_index_gives_zero(self):
        student = Tensor(np.zeros((3, 1)))
        assert embedding_mse(student, np.ones((3, 1)), np.array([], dtype=np.int64)).item() == 0.0

    def test_gradient_flows_only_into_student_rows(self):
        student = Tensor(np.zeros((3, 2)), requires_grad=True)
        teacher = np.ones((3, 2))
        embedding_mse(student, teacher, np.array([1])).backward()
        assert np.all(student.grad[0] == 0)
        assert np.all(student.grad[1] != 0)
        assert np.all(student.grad[2] == 0)


class TestEdgeRegularization:
    def test_zero_for_equal_embeddings(self):
        emb = Tensor(np.ones((4, 3)))
        loss = edge_regularization(emb, np.array([0, 1]), np.array([2, 3]))
        assert loss.item() == 0.0

    def test_empty_edge_set_gives_zero(self):
        emb = Tensor(np.ones((4, 3)))
        empty = np.array([], dtype=np.int64)
        assert edge_regularization(emb, empty, empty).item() == 0.0

    def test_value(self):
        emb = Tensor(np.array([[0.0], [2.0], [5.0]]))
        loss = edge_regularization(emb, np.array([0, 1]), np.array([1, 2]))
        assert loss.item() == pytest.approx((4.0 + 9.0) / 2)

    def test_mismatched_arrays_raise(self):
        emb = Tensor(np.ones((4, 3)))
        with pytest.raises(ShapeError):
            edge_regularization(emb, np.array([0]), np.array([1, 2]))

    def test_gradient_pulls_endpoints_together(self):
        emb = Tensor(np.array([[0.0], [2.0]]), requires_grad=True)
        edge_regularization(emb, np.array([0]), np.array([1])).backward()
        assert emb.grad[0, 0] < 0  # node 0 moves up toward node 1
        assert emb.grad[1, 0] > 0


class TestKlDivergence:
    def test_zero_entropy_teacher_equals_cross_entropy(self):
        teacher = np.array([[1.0, 0.0]])
        slp = log_probs_for([[0.25, 0.75]])
        assert kl_divergence(slp, teacher).item() == pytest.approx(-np.log(0.25))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            kl_divergence(log_probs_for([[0.5, 0.5]]), np.ones((2, 2)) / 2)


class TestEntropy:
    def test_uniform_is_log_k(self):
        assert entropy(np.full((1, 4), 0.25))[0] == pytest.approx(np.log(4))

    def test_one_hot_is_zero(self):
        assert entropy(np.array([[1.0, 0.0, 0.0]]))[0] == pytest.approx(0.0, abs=1e-9)

    def test_monotone_in_uncertainty(self):
        low = entropy(np.array([[0.9, 0.1]]))[0]
        high = entropy(np.array([[0.6, 0.4]]))[0]
        assert high > low

    def test_vectorized_over_rows(self):
        probs = np.array([[0.5, 0.5], [1.0, 0.0]])
        values = entropy(probs)
        assert values.shape == (2,)
        assert values[0] > values[1]


class TestAccuracyAndPenalty:
    def test_accuracy_from_probabilities(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert accuracy(probs, np.array([0, 1])) == 1.0

    def test_accuracy_from_predictions(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_with_index(self):
        preds = np.array([0, 0, 0])
        labels = np.array([0, 1, 1])
        assert accuracy(preds, labels, np.array([0])) == 1.0

    def test_accuracy_empty_index_raises(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([0]), np.array([0]), np.array([], dtype=np.int64))

    def test_l2_penalty(self):
        params = [Tensor(np.ones(2), requires_grad=True), Tensor(np.full(3, 2.0), requires_grad=True)]
        assert l2_penalty(params).item() == pytest.approx(2.0 + 12.0)

    def test_l2_penalty_empty(self):
        assert l2_penalty([]).item() == 0.0
