"""Tests for the sparse-dense products used by graph convolutions."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.tensor import Tensor
from repro.tensor.sparse import sparse_feature_matmul, spmm


class TestSpmm:
    def test_matches_dense_product(self):
        matrix = sp.random(6, 5, density=0.4, random_state=0, format="csr")
        dense = Tensor(np.random.default_rng(0).normal(size=(5, 3)))
        out = spmm(matrix, dense)
        np.testing.assert_allclose(out.data, matrix.toarray() @ dense.data)

    def test_backward_is_transpose_product(self):
        matrix = sp.random(4, 4, density=0.5, random_state=1, format="csr")
        dense = Tensor(np.random.default_rng(1).normal(size=(4, 2)), requires_grad=True)
        out = spmm(matrix, dense)
        grad = np.ones_like(out.data)
        out.backward(grad)
        np.testing.assert_allclose(dense.grad, matrix.toarray().T @ grad)

    def test_accepts_coo_input(self):
        matrix = sp.random(3, 3, density=0.5, random_state=2, format="coo")
        dense = Tensor(np.ones((3, 2)))
        out = spmm(matrix, dense)
        np.testing.assert_allclose(out.data, matrix.toarray() @ dense.data)

    def test_rejects_dense_matrix(self):
        with pytest.raises(TypeError):
            spmm(np.ones((3, 3)), Tensor(np.ones((3, 2))))

    def test_rejects_shape_mismatch(self):
        matrix = sp.identity(3, format="csr")
        with pytest.raises(ShapeError):
            spmm(matrix, Tensor(np.ones((4, 2))))

    def test_rejects_1d_dense(self):
        matrix = sp.identity(3, format="csr")
        with pytest.raises(ShapeError):
            spmm(matrix, Tensor(np.ones(3)))


class TestSparseFeatureMatmul:
    def test_matches_dense_product(self):
        features = sp.random(7, 10, density=0.3, random_state=3, format="csr")
        weight = Tensor(np.random.default_rng(3).normal(size=(10, 4)))
        out = sparse_feature_matmul(features, weight)
        np.testing.assert_allclose(out.data, features.toarray() @ weight.data)

    def test_gradient_wrt_weight(self):
        features = sp.random(5, 6, density=0.5, random_state=4, format="csr")
        weight = Tensor(np.random.default_rng(4).normal(size=(6, 2)), requires_grad=True)
        out = sparse_feature_matmul(features, weight)
        grad = np.random.default_rng(5).normal(size=out.shape)
        out.backward(grad)
        np.testing.assert_allclose(weight.grad, features.toarray().T @ grad)

    def test_rejects_mismatched_shapes(self):
        features = sp.identity(4, format="csr")
        with pytest.raises(ShapeError):
            sparse_feature_matmul(features, Tensor(np.ones((5, 2))))

    def test_rejects_dense_features(self):
        with pytest.raises(TypeError):
            sparse_feature_matmul(np.ones((3, 3)), Tensor(np.ones((3, 2))))
