"""Tests for the ``no_grad`` inference mode.

The contract: logits computed under ``no_grad`` are bitwise identical to
the taped forward, no tape is retained, grad mode is restored on exit,
and gradcheck (the autodiff ground truth) still passes outside the
context.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets.citation import cora_like
from repro.models.gcn import GCN
from repro.tensor import Tensor, check_gradients, ops
from repro.tensor.sparse import (
    cached_transpose,
    sparse_dense_matmul,
    sparse_feature_matmul,
    spmm,
)
from repro.tensor.tensor import enable_grad, is_grad_enabled, no_grad

RNG = np.random.default_rng(11)


def _param(shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


class TestGradMode:
    def test_default_enabled(self):
        assert is_grad_enabled()

    def test_no_grad_disables_and_restores(self):
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nesting(self):
        with no_grad():
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_grad_mode_is_thread_local(self):
        # A worker thread holding no_grad open must not flip grad mode on
        # the main thread, and vice versa.
        import threading

        entered = threading.Event()
        release = threading.Event()
        seen = {}

        def worker():
            with no_grad():
                seen["inside"] = is_grad_enabled()
                entered.set()
                release.wait(timeout=10)
            seen["after"] = is_grad_enabled()

        t = threading.Thread(target=worker)
        t.start()
        assert entered.wait(timeout=10)
        assert is_grad_enabled()  # main thread unaffected
        with no_grad():
            pass
        release.set()
        t.join(timeout=10)
        assert seen == {"inside": False, "after": True}
        assert is_grad_enabled()

    def test_interleaved_threads_cannot_leak_disabled_state(self):
        # Regression: with a process-wide flag, exits interleaved across
        # threads (A enter, B enter, A exit, B exit) restored a stale
        # snapshot and left grad mode off for the whole process.
        import threading

        barrier_in = threading.Barrier(2, timeout=10)
        barrier_out = threading.Barrier(2, timeout=10)

        def worker():
            ctx = no_grad()
            ctx.__enter__()
            barrier_in.wait()
            barrier_out.wait()
            ctx.__exit__(None, None, None)

        t = threading.Thread(target=worker)
        t.start()
        ctx = no_grad()
        ctx.__enter__()
        barrier_in.wait()
        ctx.__exit__(None, None, None)
        barrier_out.wait()
        t.join(timeout=10)
        assert is_grad_enabled()


class TestNoTapeRetained:
    def test_elementwise_op_builds_no_tape(self):
        a = _param((3, 4))
        with no_grad():
            out = ops.mul(ops.add(a, a), 2.0)
        assert out._backward is None
        assert out._parents == ()
        assert not out.requires_grad

    def test_matmul_builds_no_tape(self):
        a, b = _param((3, 4)), _param((4, 2))
        with no_grad():
            out = ops.matmul(a, b)
        assert out._backward is None and out._parents == ()

    def test_spmm_builds_no_tape(self):
        matrix = sp.random(6, 6, density=0.4, random_state=3, format="csr")
        dense = _param((6, 2))
        with no_grad():
            out = spmm(matrix, dense)
        assert out._backward is None and out._parents == ()

    def test_sparse_feature_matmul_builds_no_tape(self):
        features = sp.random(5, 8, density=0.4, random_state=4, format="csr")
        weight = _param((8, 3))
        with no_grad():
            out = sparse_feature_matmul(features, weight)
        assert out._backward is None and out._parents == ()

    def test_backward_raises_on_no_grad_output(self):
        a = _param((2, 2))
        with no_grad():
            out = ops.sum(ops.mul(a, a))
        with pytest.raises(RuntimeError):
            out.backward()


class TestInferenceParity:
    def test_model_logits_identical(self):
        graph = cora_like(seed=0, scale=0.05)
        model = GCN(graph.num_features, graph.num_classes, np.random.default_rng(0))
        model.eval()
        with enable_grad():
            taped = model(graph).data
        untaped = model.predict_logits(graph)
        assert np.array_equal(taped, untaped)

    def test_layered_and_fused_inference_identical(self):
        # GCN._inference (the fused raw-ndarray path) must match the
        # generic layer-by-layer no_grad path bitwise.
        graph = cora_like(seed=1, scale=0.05)
        model = GCN(graph.num_features, graph.num_classes, np.random.default_rng(1))
        model.eval()
        adjacency = graph.normalized_adjacency()
        with no_grad():
            h = model.layers[0](adjacency, graph.features)
            h = model.layers[1](adjacency, ops.relu(h))
            layered = h.data
        assert np.array_equal(layered, model._inference(graph))
        assert np.array_equal(layered, model.predict_logits(graph))

    def test_training_mode_under_no_grad_keeps_dropout(self):
        # no_grad does not imply eval: a training-mode forward must still
        # apply dropout (i.e. differ from the eval forward).
        graph = cora_like(seed=0, scale=0.05)
        model = GCN(graph.num_features, graph.num_classes, np.random.default_rng(0))
        eval_logits = model.predict_logits(graph)
        model.train()
        with no_grad():
            train_logits = model(graph).data
        assert not np.array_equal(eval_logits, train_logits)


class TestGradcheckOutsideContext:
    def test_gradcheck_after_no_grad(self):
        a = _param((3, 3))
        with no_grad():
            ops.sum(ops.mul(a, a))  # build nothing
        check_gradients(lambda: ops.sum(ops.mul(a, a)), [a])

    def test_spmm_gradcheck_after_no_grad(self):
        matrix = sp.random(5, 5, density=0.5, random_state=6, format="csr")
        dense = _param((5, 3))
        with no_grad():
            spmm(matrix, dense)
        check_gradients(lambda: ops.sum(spmm(matrix, dense)), [dense])


class TestSparseKernelHelpers:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("fmt", ["csr", "csc"])
    def test_sparse_dense_matmul_matches_operator(self, dtype, fmt):
        rng = np.random.default_rng(5)
        matrix = sp.random(
            9, 7, density=0.3, random_state=5, format=fmt, dtype=np.float64
        ).astype(dtype)
        dense = rng.normal(size=(7, 4)).astype(dtype)
        out = sparse_dense_matmul(matrix, dense)
        assert out.dtype == dtype
        assert np.array_equal(out, np.asarray(matrix @ dense))

    def test_sparse_dense_matmul_dtype_mismatch_falls_back(self):
        rng = np.random.default_rng(5)
        matrix = sp.random(4, 4, density=0.5, random_state=5, format="csr")
        dense = rng.normal(size=(4, 2)).astype(np.float32)
        out = sparse_dense_matmul(matrix, dense)  # f64 matrix, f32 dense
        assert np.array_equal(out, np.asarray(matrix @ dense))

    def test_cached_transpose_matches_and_memoizes(self):
        matrix = sp.random(6, 4, density=0.5, random_state=8, format="csr")
        first = cached_transpose(matrix)
        assert (first != matrix.T).nnz == 0
        assert cached_transpose(matrix) is first
