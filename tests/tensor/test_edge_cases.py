"""Edge-case and error-path tests for the tensor engine."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import Tensor, ops
from repro.tensor.functional import edge_regularization, embedding_mse


class TestIndexingEdgeCases:
    def test_gather_with_boolean_mask(self):
        a = Tensor(np.arange(6, dtype=np.float64).reshape(3, 2), requires_grad=True)
        mask = np.array([True, False, True])
        out = ops.gather(a, mask)
        np.testing.assert_allclose(out.data, [[0, 1], [4, 5]])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [[1, 1], [0, 0], [1, 1]])

    def test_gather_empty_index(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        out = ops.gather(a, np.array([], dtype=np.int64))
        assert out.shape == (0, 2)

    def test_scatter_empty_values(self):
        values = Tensor(np.empty((0, 3)), requires_grad=True)
        out = ops.scatter_add_rows(values, np.array([], dtype=np.int64), 4)
        np.testing.assert_allclose(out.data, np.zeros((4, 3)))

    def test_concat_single_tensor(self):
        a = Tensor(np.ones((2, 2)))
        out = ops.concat([a], axis=1)
        np.testing.assert_allclose(out.data, a.data)

    def test_concat_axis0_gradients(self):
        a = Tensor(np.ones((1, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        ops.sum(ops.mul(ops.concat([a, b], axis=0), 2.0)).backward()
        np.testing.assert_allclose(a.grad, np.full((1, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))


class TestNumericalEdgeCases:
    def test_division_by_zero_propagates_inf(self):
        with np.errstate(divide="ignore"):
            out = ops.div(Tensor([1.0]), Tensor([0.0]))
        assert np.isinf(out.data[0])

    def test_log_of_zero_is_minus_inf(self):
        with np.errstate(divide="ignore"):
            out = ops.log(Tensor([0.0]))
        assert np.isneginf(out.data[0])

    def test_softmax_of_single_class(self):
        out = ops.softmax(Tensor([[42.0]]), axis=1)
        np.testing.assert_allclose(out.data, [[1.0]])

    def test_power_with_negative_exponent(self):
        out = ops.power(Tensor([2.0]), -1.0)
        np.testing.assert_allclose(out.data, [0.5])

    def test_relu_at_exact_zero_has_zero_gradient(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        ops.sum(ops.relu(x)).backward()
        np.testing.assert_allclose(x.grad, [0.0])

    def test_sum_of_empty_tensor(self):
        out = ops.sum(Tensor(np.empty((0, 3))))
        assert out.item() == 0.0


class TestLossEdgeCases:
    def test_embedding_mse_all_rows(self):
        student = Tensor(np.zeros((2, 2)), requires_grad=True)
        teacher = np.ones((2, 2))
        loss = embedding_mse(student, teacher, None)
        assert loss.item() == pytest.approx(2.0)

    def test_edge_regularization_self_loop_contributes_zero(self):
        emb = Tensor(np.random.default_rng(0).normal(size=(3, 2)))
        loss = edge_regularization(emb, np.array([1]), np.array([1]))
        assert loss.item() == pytest.approx(0.0)

    def test_embedding_mse_shape_mismatch(self):
        with pytest.raises(ShapeError):
            embedding_mse(Tensor(np.ones((2, 3))), np.ones((2, 2)))


class TestTapeHygiene:
    def test_eval_mode_forward_builds_no_tape_for_constants(self):
        # Constant-only computation produces constant outputs.
        a, b = Tensor(np.ones(3)), Tensor(np.ones(3))
        out = ops.mul(ops.add(a, b), 2.0)
        assert not out.requires_grad

    def test_backward_twice_on_same_graph_accumulates(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = ops.sum(ops.mul(x, x))
        y.backward()
        first = x.grad.copy()
        y.backward()
        np.testing.assert_allclose(x.grad, 2 * first)

    def test_grad_shape_always_matches_parameter(self):
        x = Tensor(np.ones((3, 1)), requires_grad=True)
        bias_style = ops.add(Tensor(np.ones((3, 4))), x)  # broadcast (3,1)→(3,4)
        ops.sum(bias_style).backward()
        assert x.grad.shape == (3, 1)
        np.testing.assert_allclose(x.grad, np.full((3, 1), 4.0))
