"""Tests of the core Tensor mechanics: tape, backward, bookkeeping."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import Tensor, as_tensor, ops, unbroadcast


class TestConstruction:
    def test_wraps_ndarray_without_copy_for_float64(self):
        data = np.ones((2, 3))
        t = Tensor(data)
        assert t.data is data

    def test_casts_dtype_to_float64(self):
        t = Tensor(np.ones((2, 2), dtype=np.float32))
        assert t.dtype == np.float64

    def test_accepts_scalars_and_lists(self):
        assert Tensor(3.0).shape == ()
        assert Tensor([1.0, 2.0]).shape == (2,)
        assert Tensor([[1, 2], [3, 4]]).shape == (2, 2)

    def test_properties(self):
        t = Tensor(np.zeros((4, 5)), requires_grad=True, name="w")
        assert t.shape == (4, 5)
        assert t.ndim == 2
        assert t.size == 20
        assert len(t) == 4
        assert "w" in repr(t)
        assert "requires_grad" in repr(t)

    def test_item_on_scalar(self):
        assert Tensor(2.5).item() == pytest.approx(2.5)

    def test_detach_shares_data_but_drops_tape(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = (t * 2.0).detach()
        assert not out.requires_grad
        assert out._backward is None

    def test_copy_is_deep(self):
        t = Tensor(np.ones(3))
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)


class TestBackward:
    def test_scalar_backward_default_gradient(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        y = (x * x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])

    def test_backward_with_explicit_gradient(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = x * 3.0
        y.backward(np.full((2, 2), 2.0))
        np.testing.assert_allclose(x.grad, np.full((2, 2), 6.0))

    def test_backward_nonscalar_without_gradient_raises(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        with pytest.raises(ShapeError):
            y.backward()

    def test_backward_wrong_gradient_shape_raises(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        with pytest.raises(ShapeError):
            y.backward(np.ones(4))

    def test_backward_on_constant_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward(np.ones(3))

    def test_gradients_accumulate_across_backward_calls(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad_clears(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_through_both_paths(self):
        # y = x*2 + x*3 → dy/dx = 5
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = (x * 2.0 + x * 3.0).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_shared_subexpression_counted_once_per_use(self):
        # z = (x*2); y = z + z → dy/dx = 4
        x = Tensor(np.array([1.0]), requires_grad=True)
        z = x * 2.0
        y = (z + z).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_deep_chain_does_not_overflow(self):
        # Iterative topological sort must handle thousands of nodes.
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_constant_branches_do_not_get_gradients(self):
        x = Tensor(np.ones(2), requires_grad=True)
        c = Tensor(np.ones(2))
        y = (x * c).sum()
        y.backward()
        assert c.grad is None

    def test_output_of_constant_only_op_has_no_tape(self):
        a, b = Tensor(np.ones(2)), Tensor(np.ones(2))
        out = ops.add(a, b)
        assert not out.requires_grad
        assert out._parents == ()


class TestUnbroadcast:
    def test_identity_when_shapes_match(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), np.full((2, 3), 4.0))

    def test_sums_size_one_axes(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 1)), np.full((2, 1), 3.0))

    def test_sums_both(self):
        g = np.ones((5, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (1, 3)), np.full((1, 3), 10.0))

    def test_incompatible_raises(self):
        with pytest.raises(ShapeError):
            unbroadcast(np.ones((2, 3)), (4,))


class TestOperatorSugar:
    def test_radd_rsub_rmul_rtruediv(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        np.testing.assert_allclose((1.0 + x).data, [3.0])
        np.testing.assert_allclose((1.0 - x).data, [-1.0])
        np.testing.assert_allclose((3.0 * x).data, [6.0])
        np.testing.assert_allclose((4.0 / x).data, [2.0])

    def test_neg_and_pow(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        np.testing.assert_allclose((-x).data, [-3.0])
        np.testing.assert_allclose((x**2).data, [9.0])

    def test_matmul_operator(self):
        a = Tensor(np.eye(2))
        b = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_transpose_property(self):
        a = Tensor(np.array([[1.0, 2.0]]))
        assert a.T.shape == (2, 1)

    def test_getitem(self):
        a = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3))
        np.testing.assert_allclose(a[1].data, [3.0, 4.0, 5.0])
