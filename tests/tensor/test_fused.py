"""Tests for the gradient-buffer arena and the fused-kernel switch.

The arena promises two things: (1) steady-state training steps reuse
gradient buffers instead of allocating, and (2) its backward pass —
including the cached-schedule replay — is bitwise identical to plain
``Tensor.backward``.  Both are load-bearing: (1) is the perf win, (2) is
what lets the fused path stay on by default.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import GradArena, Tensor, fused, ops
from repro.tensor.fused import fused_ops_enabled, set_fused_ops, use_fused_ops
from repro.tensor.functional import masked_cross_entropy_logits

RNG = np.random.default_rng(11)


def param(shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


def small_loss(w1, w2, x, labels, index):
    h = ops.relu(ops.matmul(x, w1))
    logits = ops.matmul(h, w2)
    return masked_cross_entropy_logits(logits, labels, index)


class TestFusedSwitch:
    def test_default_on(self):
        assert fused_ops_enabled()

    def test_set_returns_previous(self):
        previous = set_fused_ops(False)
        try:
            assert previous is True
            assert not fused_ops_enabled()
        finally:
            set_fused_ops(previous)

    def test_context_manager_restores(self):
        with use_fused_ops(False):
            assert not fused_ops_enabled()
        assert fused_ops_enabled()

    def test_context_manager_none_is_noop(self):
        with use_fused_ops(None):
            assert fused_ops_enabled()
        with use_fused_ops(False):
            with use_fused_ops(None):
                assert not fused_ops_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_fused_ops(False):
                raise RuntimeError("boom")
        assert fused_ops_enabled()


class TestGradArenaBackward:
    def _setup(self):
        w1, w2 = param((5, 4)), param((4, 3))
        x = Tensor(RNG.normal(size=(8, 5)))
        labels = RNG.integers(0, 3, size=8)
        index = np.array([0, 2, 4, 6])
        return w1, w2, x, labels, index

    def test_matches_plain_backward_bitwise(self):
        w1, w2, x, labels, index = self._setup()
        arena = GradArena()
        with arena.record():
            loss = small_loss(w1, w2, x, labels, index)
        arena.backward(loss)
        arena_grads = [np.array(w1.grad), np.array(w2.grad)]

        w1.zero_grad(), w2.zero_grad()
        small_loss(w1, w2, x, labels, index).backward()
        assert np.array_equal(arena_grads[0], w1.grad)
        assert np.array_equal(arena_grads[1], w2.grad)

    def test_cached_schedule_is_reused_and_stays_correct(self):
        w1, w2, x, labels, index = self._setup()
        arena = GradArena()
        schedules = []
        for _ in range(3):
            with arena.record():
                loss = small_loss(w1, w2, x, labels, index)
            w1.zero_grad(), w2.zero_grad()
            arena.backward(loss)
            schedules.append(arena._cached_schedule)
        # The identical structure revalidates against the cached order.
        assert schedules[0] is schedules[1] is schedules[2]

        arena_grads = [np.array(w1.grad), np.array(w2.grad)]
        w1.zero_grad(), w2.zero_grad()
        small_loss(w1, w2, x, labels, index).backward()
        assert np.array_equal(arena_grads[0], w1.grad)
        assert np.array_equal(arena_grads[1], w2.grad)

    def test_schedule_invalidated_on_structure_change(self):
        w1, w2, x, labels, index = self._setup()
        arena = GradArena()
        with arena.record():
            loss = small_loss(w1, w2, x, labels, index)
        arena.backward(loss)
        first = arena._cached_schedule

        # Different graph: an extra L2 term changes the op structure.
        with arena.record():
            loss = ops.add(
                small_loss(w1, w2, x, labels, index), ops.sum(ops.mul(w2, w2))
            )
        w1.zero_grad(), w2.zero_grad()
        arena.backward(loss)
        assert arena._cached_schedule is not first

        arena_grads = [np.array(w1.grad), np.array(w2.grad)]
        w1.zero_grad(), w2.zero_grad()
        ops.add(small_loss(w1, w2, x, labels, index), ops.sum(ops.mul(w2, w2))).backward()
        assert np.array_equal(arena_grads[0], w1.grad)
        assert np.array_equal(arena_grads[1], w2.grad)

    def test_buffers_recycled_across_steps(self):
        w1, w2, x, labels, index = self._setup()
        arena = GradArena()
        with arena.record():
            loss = small_loss(w1, w2, x, labels, index)
        arena.backward(loss)
        first_buffers = {id(w1.grad), id(w2.grad)}

        with arena.record():  # reclaims last step's buffers
            loss = small_loss(w1, w2, x, labels, index)
        w1.zero_grad(), w2.zero_grad()
        arena.backward(loss)
        second_buffers = {id(w1.grad), id(w2.grad)}
        # Same shapes, same dtypes: the pool hands the arrays back.
        assert first_buffers == second_buffers

    def test_fallback_for_loss_built_outside_record(self):
        w1, w2, x, labels, index = self._setup()
        arena = GradArena()
        loss = small_loss(w1, w2, x, labels, index)  # never recorded
        w1.zero_grad(), w2.zero_grad()
        arena.backward(loss)  # must fall back to plain backward
        arena_grads = [np.array(w1.grad), np.array(w2.grad)]

        w1.zero_grad(), w2.zero_grad()
        small_loss(w1, w2, x, labels, index).backward()
        assert np.array_equal(arena_grads[0], w1.grad)
        assert np.array_equal(arena_grads[1], w2.grad)

    def test_non_scalar_output_raises(self):
        w = param((3, 3))
        arena = GradArena()
        with arena.record():
            out = ops.matmul(w, w)
        with pytest.raises(Exception):
            arena.backward(out)

    def test_no_grad_output_raises(self):
        arena = GradArena()
        with pytest.raises(RuntimeError):
            arena.backward(Tensor(1.0))


class TestZeroGradSemantics:
    def test_set_to_none_default(self):
        w = param((3,))
        ops.sum(ops.mul(w, w)).backward()
        assert w.grad is not None
        w.zero_grad()
        assert w.grad is None

    def test_in_place_zero_fill(self):
        w = param((3,))
        ops.sum(ops.mul(w, w)).backward()
        buffer = w.grad
        w.zero_grad(set_to_none=False)
        assert w.grad is buffer
        assert np.all(buffer == 0.0)

    def test_zero_fill_without_grad_is_noop(self):
        w = param((3,))
        w.zero_grad(set_to_none=False)
        assert w.grad is None


class TestFusedLayerDispatch:
    def test_linear_layer_uses_fused_node(self):
        from repro.nn.layers import Linear

        layer = Linear(4, 3, np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(5, 4)))
        with use_fused_ops(True):
            fused_out = layer(x)
        with use_fused_ops(False):
            legacy_out = layer(x)
        # Fused: one tape node holding all parents; legacy: an add node
        # over the matmul node.
        assert len(fused_out._parents) == 3
        assert len(legacy_out._parents) == 2
        assert np.array_equal(fused_out.data, legacy_out.data)

    def test_gcn_layer_uses_fused_node(self):
        from repro.nn.layers import GraphConvolution

        layer = GraphConvolution(4, 3, np.random.default_rng(0))
        adj = sp.random(5, 5, density=0.4, random_state=0, format="csr")
        x = Tensor(RNG.normal(size=(5, 4)))
        with use_fused_ops(True):
            fused_out = layer(adj, x)
        with use_fused_ops(False):
            legacy_out = layer(adj, x)
        assert len(fused_out._parents) == 3
        assert np.array_equal(fused_out.data, legacy_out.data)

    def test_empty_index_short_circuits(self):
        logits = param((4, 3))
        out = fused.softmax_cross_entropy(logits, np.zeros(4, dtype=np.int64), np.array([], dtype=np.int64))
        assert out.item() == 0.0


class TestFusedDropoutArena:
    def test_scratch_is_leased_and_recycled(self):
        x = Tensor(RNG.normal(size=(20, 30)))
        arena = GradArena()
        with arena.record():
            fused.dropout(x, 0.5, np.random.default_rng(1))
        # draws + mask + output, all leased from the arena pool.
        assert len(arena._in_use) == 3
        first = {id(buffer) for buffer in arena._in_use}
        with arena.record():  # reclaims, then the same shapes re-lease
            fused.dropout(x, 0.5, np.random.default_rng(1))
        assert {id(buffer) for buffer in arena._in_use} == first

    def test_identity_paths_lease_nothing(self):
        x = Tensor(RNG.normal(size=(4, 4)))
        arena = GradArena()
        with arena.record():
            assert fused.dropout(x, 0.0, np.random.default_rng(1)) is x
            assert fused.dropout(x, 0.5, np.random.default_rng(1), training=False) is x
        assert arena._in_use == []

    def test_invalid_rate_raises(self):
        x = Tensor(RNG.normal(size=(4, 4)))
        arena = GradArena()
        with arena.record():
            with pytest.raises(ValueError):
                fused.dropout(x, 1.0, np.random.default_rng(1))
