"""Tests for graph statistics and random-walk utilities."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    edge_homophily,
    random_walk,
    sample_walks,
    summarize,
    walk_visit_counts,
)
from repro.graph.graph import build_adjacency
from repro.graph.stats import largest_connected_component_size


class TestStats:
    def test_edge_homophily_all_same(self):
        adj = build_adjacency(4, np.array([[0, 1], [2, 3]]))
        labels = np.array([0, 0, 1, 1])
        assert edge_homophily(adj, labels) == 1.0

    def test_edge_homophily_mixed(self):
        adj = build_adjacency(4, np.array([[0, 1], [1, 2]]))
        labels = np.array([0, 0, 1, 1])
        assert edge_homophily(adj, labels) == pytest.approx(0.5)

    def test_edge_homophily_empty_graph(self):
        adj = build_adjacency(3, np.empty((0, 2), dtype=np.int64))
        assert edge_homophily(adj, np.zeros(3, dtype=int)) == 0.0

    def test_summarize(self, tiny_graph):
        stats = summarize(tiny_graph)
        assert stats.num_nodes == tiny_graph.num_nodes
        assert stats.num_classes == 2
        assert 0.0 <= stats.edge_homophily <= 1.0
        assert stats.label_rate == pytest.approx(tiny_graph.label_rate)
        assert set(stats.as_dict()) >= {"num_nodes", "edge_homophily"}

    def test_largest_component(self):
        # Two components: sizes 3 and 2.
        adj = build_adjacency(5, np.array([[0, 1], [1, 2], [3, 4]]))
        assert largest_connected_component_size(adj) == 3


class TestWalks:
    def _line(self, n=5):
        return build_adjacency(n, np.array([[i, i + 1] for i in range(n - 1)]))

    def test_walk_length(self, rng):
        path = random_walk(self._line(), start=2, length=4, rng=rng)
        assert len(path) == 5
        assert path[0] == 2

    def test_walk_steps_follow_edges(self, rng):
        adj = self._line()
        path = random_walk(adj, start=0, length=10, rng=rng)
        for a, b in zip(path[:-1], path[1:]):
            assert adj[a, b] == 1.0

    def test_walk_stops_at_isolated_node(self, rng):
        adj = build_adjacency(3, np.array([[0, 1]]))
        path = random_walk(adj, start=2, length=5, rng=rng)
        np.testing.assert_array_equal(path, [2])

    def test_negative_length_raises(self, rng):
        with pytest.raises(GraphError):
            random_walk(self._line(), 0, -1, rng)

    def test_sample_walks_count(self, rng):
        walks = sample_walks(self._line(4), walks_per_node=3, length=2, rng=rng)
        assert len(walks) == 12

    def test_visit_counts_normalized_and_local(self, rng):
        adj = self._line(10)
        counts = walk_visit_counts(adj, seeds=np.array([0]), walks_per_seed=50, length=3, rng=rng)
        assert counts.sum() == pytest.approx(1.0)
        # Mass concentrates near the seed.
        assert counts[:4].sum() > counts[6:].sum()
