"""Tests for the vectorized batch random-walk sampler."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import batch_random_walks, build_adjacency


def line_graph(n=6):
    return build_adjacency(n, np.array([[i, i + 1] for i in range(n - 1)]))


class TestBatchRandomWalks:
    def test_shape(self, rng):
        walks = batch_random_walks(line_graph(), np.array([0, 2, 4]), 5, rng)
        assert walks.shape == (3, 6)

    def test_starts_preserved(self, rng):
        starts = np.array([1, 3, 5])
        walks = batch_random_walks(line_graph(), starts, 4, rng)
        np.testing.assert_array_equal(walks[:, 0], starts)

    def test_steps_follow_edges(self, rng):
        adj = line_graph(8)
        walks = batch_random_walks(adj, np.arange(8), 6, rng)
        for row in walks:
            for a, b in zip(row[:-1], row[1:]):
                assert a == b or adj[a, b] == 1.0

    def test_isolated_node_stalls(self, rng):
        adj = build_adjacency(3, np.array([[0, 1]]))
        walks = batch_random_walks(adj, np.array([2]), 4, rng)
        np.testing.assert_array_equal(walks[0], [2, 2, 2, 2, 2])

    def test_matches_per_node_walk_distribution(self):
        # Statistical agreement with the scalar sampler on a star graph:
        # from the center, each leaf should be visited uniformly.
        adj = build_adjacency(5, np.array([[0, 1], [0, 2], [0, 3], [0, 4]]))
        rng = np.random.default_rng(0)
        walks = batch_random_walks(adj, np.zeros(4000, dtype=np.int64), 1, rng)
        counts = np.bincount(walks[:, 1], minlength=5)[1:]
        assert counts.min() > 800  # ~1000 each

    def test_negative_length_rejected(self, rng):
        with pytest.raises(GraphError):
            batch_random_walks(line_graph(), np.array([0]), -1, rng)

    def test_zero_length(self, rng):
        walks = batch_random_walks(line_graph(), np.array([2]), 0, rng)
        np.testing.assert_array_equal(walks, [[2]])
