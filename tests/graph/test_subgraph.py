"""Tests for induced subgraphs and inductive splits."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import induced_subgraph, make_inductive_split
from repro.training import make_rng


class TestInducedSubgraph:
    def test_structure_preserved(self, tiny_graph):
        nodes = np.arange(0, tiny_graph.num_nodes, 2)
        sub, mapping = induced_subgraph(tiny_graph, nodes)
        np.testing.assert_array_equal(mapping, nodes)
        # Every subgraph edge exists in the original (modulo the
        # isolated-node patch, which only adds edges between kept nodes).
        src, dst = sub.edge_list()
        assert sub.num_nodes == len(nodes)
        assert len(src) > 0

    def test_labels_and_features_remapped(self, tiny_graph):
        nodes = np.array([3, 1, 7])  # deliberately unsorted
        sub, mapping = induced_subgraph(tiny_graph, nodes)
        np.testing.assert_array_equal(mapping, [1, 3, 7])
        np.testing.assert_array_equal(sub.labels, tiny_graph.labels[[1, 3, 7]])
        np.testing.assert_allclose(
            np.asarray(sub.features), np.asarray(tiny_graph.features[[1, 3, 7]])
        )

    def test_split_indices_carried_over(self, tiny_graph):
        # Keep all nodes → splits identical.
        sub, _ = induced_subgraph(tiny_graph, np.arange(tiny_graph.num_nodes))
        np.testing.assert_array_equal(sub.train_index, tiny_graph.train_index)
        np.testing.assert_array_equal(sub.test_index, tiny_graph.test_index)

    def test_dropped_nodes_leave_splits(self, tiny_graph):
        keep = np.setdiff1d(np.arange(tiny_graph.num_nodes), tiny_graph.test_index[:3])
        sub, _ = induced_subgraph(tiny_graph, keep)
        assert len(sub.test_index) == len(tiny_graph.test_index) - 3

    def test_too_few_nodes_rejected(self, tiny_graph):
        with pytest.raises(GraphError):
            induced_subgraph(tiny_graph, np.array([0]))

    def test_out_of_range_rejected(self, tiny_graph):
        with pytest.raises(GraphError):
            induced_subgraph(tiny_graph, np.array([0, 10_000]))

    def test_no_isolated_nodes_in_result(self, tiny_graph):
        rng = np.random.default_rng(0)
        nodes = rng.choice(tiny_graph.num_nodes, size=10, replace=False)
        sub, _ = induced_subgraph(tiny_graph, nodes)
        assert sub.degrees().min() >= 1


class TestInductiveSplit:
    def test_unseen_nodes_absent_from_observed(self, tiny_graph):
        split = make_inductive_split(tiny_graph, 0.5, make_rng(0))
        assert len(np.intersect1d(split.observed_nodes, split.unseen_nodes)) == 0
        assert split.observed.num_nodes == tiny_graph.num_nodes - len(split.unseen_nodes)

    def test_unseen_come_from_test_set(self, tiny_graph):
        split = make_inductive_split(tiny_graph, 0.5, make_rng(1))
        assert set(split.unseen_nodes) <= set(tiny_graph.test_index)

    def test_fraction_controls_count(self, tiny_graph):
        half = make_inductive_split(tiny_graph, 0.5, make_rng(2))
        all_hidden = make_inductive_split(tiny_graph, 1.0, make_rng(2))
        assert len(all_hidden.unseen_nodes) == len(tiny_graph.test_index)
        assert len(half.unseen_nodes) == round(len(tiny_graph.test_index) * 0.5)

    def test_invalid_fraction(self, tiny_graph):
        with pytest.raises(GraphError):
            make_inductive_split(tiny_graph, 0.0, make_rng(0))

    def test_training_labels_preserved_in_observed(self, tiny_graph):
        split = make_inductive_split(tiny_graph, 0.5, make_rng(3))
        # All training nodes remain observed (only test nodes are hidden).
        assert len(split.observed.train_index) == len(tiny_graph.train_index)
