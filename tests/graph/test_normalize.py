"""Tests for adjacency and feature normalizations."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph import add_self_loops, gcn_normalize, row_normalize, row_normalize_features
from repro.graph.graph import build_adjacency


def path_graph(n=4):
    edges = np.array([[i, i + 1] for i in range(n - 1)])
    return build_adjacency(n, edges)


class TestAddSelfLoops:
    def test_adds_identity(self):
        adj = path_graph()
        tilde = add_self_loops(adj)
        np.testing.assert_allclose(tilde.diagonal(), np.ones(4))

    def test_custom_weight(self):
        tilde = add_self_loops(path_graph(), weight=2.0)
        np.testing.assert_allclose(tilde.diagonal(), np.full(4, 2.0))


class TestGcnNormalize:
    def test_symmetric_output(self):
        norm = gcn_normalize(path_graph()).toarray()
        np.testing.assert_allclose(norm, norm.T)

    def test_matches_closed_form(self):
        adj = path_graph(3)
        tilde = adj.toarray() + np.eye(3)
        degrees = tilde.sum(axis=1)
        expected = tilde / np.sqrt(np.outer(degrees, degrees))
        np.testing.assert_allclose(gcn_normalize(adj).toarray(), expected)

    def test_spectral_radius_at_most_one(self):
        norm = gcn_normalize(path_graph(8)).toarray()
        eigenvalues = np.linalg.eigvalsh(norm)
        assert eigenvalues.max() <= 1.0 + 1e-10

    def test_handles_isolated_node_via_self_loop(self):
        adj = sp.csr_matrix((3, 3))
        norm = gcn_normalize(adj)
        np.testing.assert_allclose(norm.toarray(), np.eye(3))


class TestRowNormalize:
    def test_rows_sum_to_one(self):
        norm = row_normalize(path_graph())
        np.testing.assert_allclose(np.asarray(norm.sum(axis=1)).ravel(), np.ones(4))

    def test_without_self_loops(self):
        norm = row_normalize(path_graph(), self_loops=False)
        assert norm.diagonal().sum() == 0
        np.testing.assert_allclose(np.asarray(norm.sum(axis=1)).ravel(), np.ones(4))


class TestRowNormalizeFeatures:
    def test_dense(self):
        features = np.array([[2.0, 2.0], [1.0, 3.0]])
        out = row_normalize_features(features)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(2))

    def test_sparse_preserves_type(self):
        features = sp.csr_matrix(np.array([[2.0, 0.0], [1.0, 1.0]]))
        out = row_normalize_features(features)
        assert sp.issparse(out)
        np.testing.assert_allclose(np.asarray(out.sum(axis=1)).ravel(), np.ones(2))

    def test_zero_row_left_zero(self):
        features = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = row_normalize_features(features)
        np.testing.assert_allclose(out[0], [0.0, 0.0])

    def test_does_not_mutate_input(self):
        features = np.array([[2.0, 2.0]])
        row_normalize_features(features)
        np.testing.assert_allclose(features, [[2.0, 2.0]])
