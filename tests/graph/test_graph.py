"""Tests for the Graph container and adjacency construction."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph import Graph, build_adjacency


def simple_graph():
    adjacency = build_adjacency(6, np.array([[0, 1], [1, 2], [3, 4], [4, 5], [2, 3]]))
    features = np.eye(6)
    labels = np.array([0, 0, 0, 1, 1, 1])
    return Graph(
        adjacency, features, labels,
        train_index=np.array([0]),
        val_index=np.array([1, 4]),
        test_index=np.array([2, 5]),
    )


class TestBuildAdjacency:
    def test_symmetric_binary(self):
        adj = build_adjacency(3, np.array([[0, 1], [1, 2]]))
        dense = adj.toarray()
        np.testing.assert_allclose(dense, dense.T)
        assert set(np.unique(dense)) <= {0.0, 1.0}

    def test_drops_self_loops(self):
        adj = build_adjacency(3, np.array([[0, 0], [0, 1]]))
        assert adj.diagonal().sum() == 0
        assert adj.nnz == 2

    def test_collapses_duplicates(self):
        adj = build_adjacency(3, np.array([[0, 1], [1, 0], [0, 1]]))
        assert adj.nnz == 2
        assert adj[0, 1] == 1.0

    def test_rejects_bad_shape(self):
        with pytest.raises(GraphError):
            build_adjacency(3, np.array([0, 1, 2]))


class TestGraphValidation:
    def test_valid_graph_constructs(self):
        g = simple_graph()
        assert g.num_nodes == 6
        assert g.num_edges == 5
        assert g.num_features == 6
        assert g.num_classes == 2

    def test_rejects_asymmetric_adjacency(self):
        adj = sp.csr_matrix(np.triu(np.ones((3, 3)), k=1))
        with pytest.raises(GraphError):
            Graph(adj, np.eye(3), np.zeros(3, dtype=int),
                  np.array([0]), np.array([1]), np.array([2]))

    def test_rejects_self_loops(self):
        adj = sp.csr_matrix(np.eye(3))
        with pytest.raises(GraphError):
            Graph(adj, np.eye(3), np.zeros(3, dtype=int),
                  np.array([0]), np.array([1]), np.array([2]))

    def test_rejects_feature_row_mismatch(self):
        adj = build_adjacency(3, np.array([[0, 1], [1, 2]]))
        with pytest.raises(GraphError):
            Graph(adj, np.eye(4), np.zeros(3, dtype=int),
                  np.array([0]), np.array([1]), np.array([2]))

    def test_rejects_overlapping_splits(self):
        adj = build_adjacency(3, np.array([[0, 1], [1, 2]]))
        with pytest.raises(GraphError):
            Graph(adj, np.eye(3), np.zeros(3, dtype=int),
                  np.array([0]), np.array([0]), np.array([2]))

    def test_rejects_duplicate_index(self):
        adj = build_adjacency(4, np.array([[0, 1], [1, 2], [2, 3]]))
        with pytest.raises(GraphError):
            Graph(adj, np.eye(4), np.zeros(4, dtype=int),
                  np.array([0, 0]), np.array([1]), np.array([2]))

    def test_rejects_out_of_range_index(self):
        adj = build_adjacency(3, np.array([[0, 1], [1, 2]]))
        with pytest.raises(GraphError):
            Graph(adj, np.eye(3), np.zeros(3, dtype=int),
                  np.array([7]), np.array([1]), np.array([2]))


class TestGraphProperties:
    def test_unlabeled_index_complements_train(self):
        g = simple_graph()
        assert set(g.unlabeled_index) == {1, 2, 3, 4, 5}

    def test_label_rate(self):
        g = simple_graph()
        assert g.label_rate == pytest.approx(1 / 6)

    def test_degrees(self):
        g = simple_graph()
        np.testing.assert_allclose(g.degrees(), [1, 2, 2, 2, 2, 1])

    def test_edge_list_upper_triangle(self):
        g = simple_graph()
        src, dst = g.edge_list()
        assert len(src) == g.num_edges
        assert np.all(src < dst)

    def test_directed_edge_list_with_self_loops(self):
        g = simple_graph()
        src, dst = g.directed_edge_list(self_loops=True)
        assert len(src) == 2 * g.num_edges + g.num_nodes

    def test_normalized_adjacency_cached(self):
        g = simple_graph()
        assert g.normalized_adjacency() is g.normalized_adjacency()

    def test_pagerank_cached_and_normalized(self):
        g = simple_graph()
        pr = g.pagerank()
        assert pr.sum() == pytest.approx(1.0)
        assert g.pagerank() is pr

    def test_repr_mentions_name_and_counts(self):
        text = repr(simple_graph())
        assert "graph" in text and "nodes=6" in text


class TestWithSplit:
    def test_changes_train_keeps_rest(self):
        g = simple_graph()
        g2 = g.with_split(np.array([0, 3]))
        assert len(g2.train_index) == 2
        np.testing.assert_array_equal(g2.val_index, g.val_index)
        np.testing.assert_array_equal(g2.test_index, g.test_index)

    def test_carries_cached_artifacts(self):
        g = simple_graph()
        norm = g.normalized_adjacency()
        g2 = g.with_split(np.array([0]))
        assert g2.normalized_adjacency() is norm

    def test_rejects_overlap_with_val(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.with_split(np.array([1]))  # 1 is in val
