"""Tests for neighbor sampling and minibatch block construction."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import build_adjacency, build_blocks, minibatches, sample_neighbors


def star_graph(leaves=8):
    edges = np.array([[0, i] for i in range(1, leaves + 1)])
    return build_adjacency(leaves + 1, edges)


class TestSampleNeighbors:
    def test_fanout_caps_samples(self, rng):
        adj = star_graph(8)
        src, dst = sample_neighbors(adj, np.array([0]), fanout=3, rng=rng)
        assert len(src) == 3
        assert set(dst) == {0}
        assert all(s in range(1, 9) for s in src)

    def test_small_degree_takes_all_neighbors(self, rng):
        adj = star_graph(2)
        src, dst = sample_neighbors(adj, np.array([0]), fanout=10, rng=rng)
        assert sorted(src) == [1, 2]

    def test_no_duplicate_samples(self, rng):
        adj = star_graph(10)
        src, _ = sample_neighbors(adj, np.array([0]), fanout=8, rng=rng)
        assert len(set(src)) == len(src)

    def test_isolated_node_gets_self_edge(self, rng):
        adj = build_adjacency(3, np.array([[0, 1]]))
        src, dst = sample_neighbors(adj, np.array([2]), fanout=4, rng=rng)
        np.testing.assert_array_equal(src, [2])
        np.testing.assert_array_equal(dst, [2])

    def test_invalid_fanout(self, rng):
        with pytest.raises(GraphError):
            sample_neighbors(star_graph(), np.array([0]), fanout=0, rng=rng)


class TestBuildBlocks:
    def test_block_count_matches_fanouts(self, tiny_graph, rng):
        blocks = build_blocks(tiny_graph.adjacency, tiny_graph.train_index[:4], (3, 3), rng)
        assert len(blocks) == 2

    def test_outputs_are_input_prefix(self, tiny_graph, rng):
        blocks = build_blocks(tiny_graph.adjacency, tiny_graph.train_index[:4], (3, 3), rng)
        for block in blocks:
            np.testing.assert_array_equal(
                block.input_nodes[: len(block.output_nodes)], block.output_nodes
            )

    def test_final_outputs_are_seeds(self, tiny_graph, rng):
        seeds = tiny_graph.train_index[:5]
        blocks = build_blocks(tiny_graph.adjacency, seeds, (2,), rng)
        np.testing.assert_array_equal(blocks[-1].output_nodes, np.unique(seeds))

    def test_local_indices_in_range(self, tiny_graph, rng):
        blocks = build_blocks(tiny_graph.adjacency, tiny_graph.train_index[:4], (4, 4), rng)
        for block in blocks:
            assert block.edge_src.max() < len(block.input_nodes)
            assert block.edge_dst.max() < len(block.output_nodes)

    def test_edges_exist_in_graph_or_are_self_loops(self, tiny_graph, rng):
        blocks = build_blocks(tiny_graph.adjacency, tiny_graph.train_index[:4], (3,), rng)
        adj = tiny_graph.adjacency
        block = blocks[0]
        for ls, ld in zip(block.edge_src, block.edge_dst):
            u = block.input_nodes[ls]
            v = block.output_nodes[ld]
            assert u == v or adj[u, v] == 1.0

    def test_empty_fanouts_rejected(self, tiny_graph, rng):
        with pytest.raises(GraphError):
            build_blocks(tiny_graph.adjacency, tiny_graph.train_index[:2], (), rng)


class TestMinibatches:
    def test_partition_covers_all(self, rng):
        index = np.arange(17)
        batches = minibatches(index, 5, rng)
        assert sorted(np.concatenate(batches).tolist()) == list(range(17))
        assert [len(b) for b in batches] == [5, 5, 5, 2]

    def test_shuffling_depends_on_rng(self):
        index = np.arange(20)
        a = minibatches(index, 20, np.random.default_rng(0))[0]
        b = minibatches(index, 20, np.random.default_rng(1))[0]
        assert not np.array_equal(a, b)

    def test_invalid_batch_size(self, rng):
        with pytest.raises(GraphError):
            minibatches(np.arange(4), 0, rng)


class TestMiniBatchSAGE:
    def test_trains_on_tiny_graph(self, tiny_graph):
        from repro.models import MiniBatchSAGETrainer

        trainer = MiniBatchSAGETrainer(fanouts=(4, 4), batch_size=6, epochs=15)
        result = trainer.fit(tiny_graph, seed=0, hidden=8)
        assert result.test_accuracy > 0.6

    def test_invalid_fanouts(self):
        from repro.models import MiniBatchSAGETrainer

        with pytest.raises(Exception):
            MiniBatchSAGETrainer(fanouts=())
