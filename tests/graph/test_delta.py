"""Differential + property battery for streaming graph deltas.

Incremental sparse-matrix maintenance is exactly the kind of code that
rots silently — an off-by-one in a CSR splice or a float recomputed in a
different order produces answers that are *almost* right.  So the
contract here is absolute: after **any** generated sequence of deltas
(edge adds, edge removals, node appends, interleaved), the incrementally
maintained ``Â`` must be **bitwise identical** — same indptr, same
indices, same data bytes, atol 0 — to ``gcn_normalize`` run from scratch
on the updated adjacency, and every CSR invariant (sorted indices, no
explicit zeros, symmetry, zero diagonal) must hold after every step.

The generators are hypothesis-driven: a delta sequence is derived from a
seed + op script, built *against the evolving graph* so additions target
absent edges and removals target present ones.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    DeltaLog,
    Graph,
    GraphDelta,
    apply_delta,
    build_adjacency,
    gcn_normalize,
    k_hop_rows,
)

from ..conftest import make_two_block_graph


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def edge_set(graph: Graph) -> set:
    coo = sp.triu(graph.adjacency, k=1).tocoo()
    return set(zip(coo.row.tolist(), coo.col.tolist()))


def random_delta(graph: Graph, rng: np.random.Generator, allow_new_nodes: bool = True) -> GraphDelta:
    """A valid delta against ``graph``: removals of present edges,
    additions of absent ones (possibly touching appended nodes)."""
    n = graph.num_nodes
    present = sorted(edge_set(graph))
    num_removed = int(rng.integers(0, min(4, len(present)) + 1))
    removed_idx = rng.choice(len(present), size=num_removed, replace=False) if num_removed else []
    removed = [present[i] for i in removed_idx]

    num_new = int(rng.integers(0, 3)) if allow_new_nodes else 0
    total = n + num_new
    taken = set(removed) | edge_set(graph)
    added = []
    for _ in range(int(rng.integers(0, 5)) + (1 if num_new else 0)):
        for _attempt in range(30):
            u, v = int(rng.integers(0, total)), int(rng.integers(0, total))
            edge = (min(u, v), max(u, v))
            if u != v and edge not in taken:
                # Edges into brand-new nodes are always absent.
                if edge[1] >= n or edge not in edge_set(graph):
                    taken.add(edge)
                    added.append(edge)
                    break
    features = rng.random((num_new, graph.num_features)) if num_new else None
    if features is not None and sp.issparse(graph.features):
        features = sp.csr_matrix(features)
    labels = rng.integers(0, max(2, graph.num_classes), size=num_new) if num_new else None
    return GraphDelta(
        added_edges=np.asarray(added, dtype=np.int64).reshape(-1, 2),
        removed_edges=np.asarray(removed, dtype=np.int64).reshape(-1, 2),
        new_features=features,
        new_labels=labels,
    )


def assert_csr_invariants(matrix: sp.csr_matrix) -> None:
    assert isinstance(matrix, sp.csr_matrix)
    assert matrix.indptr[0] == 0 and matrix.indptr[-1] == len(matrix.indices)
    assert np.all(np.diff(matrix.indptr) >= 0)
    for row in range(matrix.shape[0]):
        cols = matrix.indices[matrix.indptr[row] : matrix.indptr[row + 1]]
        assert np.all(np.diff(cols) > 0), f"row {row} has unsorted/duplicate indices"
    assert not np.any(matrix.data == 0), "explicit zeros stored"


def assert_bitwise_equal_csr(actual: sp.csr_matrix, expected: sp.csr_matrix) -> None:
    assert actual.shape == expected.shape
    assert actual.dtype == expected.dtype
    np.testing.assert_array_equal(actual.indptr, expected.indptr)
    np.testing.assert_array_equal(actual.indices, expected.indices)
    assert actual.data.tobytes() == expected.data.tobytes(), (
        f"Â data differs; max |Δ| = {np.abs(actual.data - expected.data).max()}"
    )


# ----------------------------------------------------------------------
# The differential property: incremental Â == from-scratch Â, bitwise
# ----------------------------------------------------------------------
class TestDifferentialNormalization:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), steps=st.integers(1, 6))
    def test_incremental_equals_scratch_over_any_sequence(self, seed, steps):
        rng = np.random.default_rng(seed)
        graph = make_two_block_graph(seed=seed % 7)
        graph.normalized_adjacency()  # arm the incremental path
        for _ in range(steps):
            delta = random_delta(graph, rng)
            graph = apply_delta(graph, delta)
            assert_csr_invariants(graph.adjacency)
            assert (abs(graph.adjacency - graph.adjacency.T) > 0).nnz == 0
            assert not graph.adjacency.diagonal().any()
            assert graph._normalized is not None, "cache must be maintained"
            assert_csr_invariants(graph._normalized)
            assert_bitwise_equal_csr(graph._normalized, gcn_normalize(graph.adjacency))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_incremental_equals_scratch_float32(self, seed):
        rng = np.random.default_rng(seed)
        graph = make_two_block_graph(seed=1).astype(np.float32)
        assert graph._normalized.dtype == np.float32
        for _ in range(3):
            graph = apply_delta(graph, random_delta(graph, rng))
            expected = gcn_normalize(graph.adjacency).astype(np.float32)
            assert_bitwise_equal_csr(graph._normalized, expected)

    def test_scratch_adjacency_matches_build_adjacency(self):
        """The spliced CSR is exactly what build_adjacency would produce."""
        rng = np.random.default_rng(5)
        graph = make_two_block_graph(seed=2)
        for _ in range(4):
            graph = apply_delta(graph, random_delta(graph, rng))
        coo = sp.triu(graph.adjacency, k=1).tocoo()
        rebuilt = build_adjacency(graph.num_nodes, np.stack([coo.row, coo.col], axis=1))
        np.testing.assert_array_equal(graph.adjacency.indptr, rebuilt.indptr)
        np.testing.assert_array_equal(graph.adjacency.indices, rebuilt.indices)

    def test_lazy_graph_stays_lazy(self):
        """No cached Â on the input -> none is materialized on the output."""
        graph = make_two_block_graph()
        assert graph._normalized is None
        updated = apply_delta(graph, GraphDelta(added_edges=[[0, 59]])
                              if (0, 59) not in edge_set(graph)
                              else GraphDelta(removed_edges=[[0, 59]]))
        assert updated._normalized is None
        # ... and lazily normalizing afterwards matches scratch trivially.
        assert_bitwise_equal_csr(
            updated.normalized_adjacency(), gcn_normalize(updated.adjacency)
        )


class TestRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_add_then_remove_restores_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        graph = make_two_block_graph(seed=seed % 5)
        graph.normalized_adjacency()
        absent = [
            (u, v)
            for u in range(0, graph.num_nodes, 7)
            for v in range(u + 1, graph.num_nodes, 11)
            if (u, v) not in edge_set(graph)
        ]
        picks = rng.choice(len(absent), size=min(3, len(absent)), replace=False)
        edges = np.asarray([absent[i] for i in picks], dtype=np.int64)
        there = apply_delta(graph, GraphDelta(added_edges=edges))
        back = apply_delta(there, GraphDelta(removed_edges=edges))
        assert_bitwise_equal_csr(back.adjacency, graph.adjacency)
        assert_bitwise_equal_csr(back._normalized, graph._normalized)

    def test_remove_then_add_restores_bitwise(self):
        graph = make_two_block_graph(seed=3)
        graph.normalized_adjacency()
        edges = np.asarray(sorted(edge_set(graph))[:4], dtype=np.int64)
        gone = apply_delta(graph, GraphDelta(removed_edges=edges))
        back = apply_delta(gone, GraphDelta(added_edges=edges))
        assert_bitwise_equal_csr(back.adjacency, graph.adjacency)
        assert_bitwise_equal_csr(back._normalized, graph._normalized)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), chunks=st.integers(1, 3))
    def test_property_remove_then_readd_restores_bitwise(self, seed, chunks):
        """Any present-edge subset, removed (possibly across several
        deltas) and re-added, must restore both the CSR adjacency and the
        cached Â bitwise — the inverse-pair guarantee an attack-then-heal
        delta stream relies on."""
        rng = np.random.default_rng(seed)
        graph = make_two_block_graph(seed=seed % 5)
        graph.normalized_adjacency()
        present = sorted(edge_set(graph))
        size = int(rng.integers(1, min(10, len(present)) + 1))
        picks = rng.choice(len(present), size=size, replace=False)
        edges = np.asarray([present[i] for i in picks], dtype=np.int64)
        state = graph
        for chunk in np.array_split(edges, chunks):
            if len(chunk):
                state = apply_delta(state, GraphDelta(removed_edges=chunk))
        for chunk in np.array_split(edges, chunks):
            if len(chunk):
                state = apply_delta(state, GraphDelta(added_edges=chunk))
        assert_bitwise_equal_csr(state.adjacency, graph.adjacency)
        assert_bitwise_equal_csr(state._normalized, graph._normalized)


class TestApplyDeltaSemantics:
    def test_input_graph_never_mutated(self):
        graph = make_two_block_graph(seed=4)
        graph.normalized_adjacency()
        frozen = (
            graph.adjacency.indptr.copy(),
            graph.adjacency.indices.copy(),
            graph._normalized.data.copy(),
            np.asarray(graph.features).copy(),
            graph.labels.copy(),
        )
        rng = np.random.default_rng(0)
        apply_delta(graph, random_delta(graph, rng))
        np.testing.assert_array_equal(graph.adjacency.indptr, frozen[0])
        np.testing.assert_array_equal(graph.adjacency.indices, frozen[1])
        np.testing.assert_array_equal(graph._normalized.data, frozen[2])
        np.testing.assert_array_equal(np.asarray(graph.features), frozen[3])
        np.testing.assert_array_equal(graph.labels, frozen[4])

    def test_node_append_carries_features_labels_splits(self):
        graph = make_two_block_graph(seed=4)
        features = np.arange(2 * graph.num_features, dtype=np.float64).reshape(2, -1)
        delta = GraphDelta(
            added_edges=[[0, graph.num_nodes], [1, graph.num_nodes + 1]],
            new_features=features,
            new_labels=[1, 0],
        )
        updated = apply_delta(graph, delta)
        assert updated.num_nodes == graph.num_nodes + 2
        np.testing.assert_array_equal(
            np.asarray(updated.features)[graph.num_nodes :], features
        )
        np.testing.assert_array_equal(updated.labels[graph.num_nodes :], [1, 0])
        np.testing.assert_array_equal(updated.labels[: graph.num_nodes], graph.labels)
        np.testing.assert_array_equal(updated.train_index, graph.train_index)
        np.testing.assert_array_equal(updated.val_index, graph.val_index)
        np.testing.assert_array_equal(updated.test_index, graph.test_index)

    def test_sparse_features_append_preserves_dtype_and_order(self):
        graph = make_two_block_graph(seed=4)
        graph.features = sp.csr_matrix(graph.features).astype(np.float32)
        graph.normalized_adjacency()
        graph = graph.astype(np.float32)
        delta = GraphDelta(
            added_edges=[[0, graph.num_nodes]],
            new_features=np.ones((1, graph.num_features)),
        )
        updated = apply_delta(graph, delta)
        assert sp.issparse(updated.features)
        assert updated.features.dtype == np.float32
        assert updated.features.has_sorted_indices

    def test_empty_delta_is_identity_sharing_arrays(self):
        graph = make_two_block_graph(seed=4)
        graph.normalized_adjacency()
        clone = apply_delta(graph, GraphDelta())
        assert clone.adjacency is graph.adjacency
        assert clone._normalized is graph._normalized

    def test_degree_zero_node_survives(self):
        """Removing a node's last edge leaves Â with just its self loop."""
        graph = make_two_block_graph(seed=4)
        graph.normalized_adjacency()
        degrees = graph.degrees()
        node = int(np.flatnonzero(degrees == degrees.min())[0])
        row = graph.adjacency.indices[
            graph.adjacency.indptr[node] : graph.adjacency.indptr[node + 1]
        ]
        edges = np.asarray([[node, int(v)] for v in row], dtype=np.int64)
        updated = apply_delta(graph, GraphDelta(removed_edges=edges))
        assert updated.degrees()[node] == 0
        assert_bitwise_equal_csr(updated._normalized, gcn_normalize(updated.adjacency))


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestValidation:
    @pytest.fixture(scope="class")
    def graph(self):
        return make_two_block_graph(seed=0)

    def test_self_referential_edge_rejected(self, graph):
        with pytest.raises(GraphError, match="self-referential"):
            apply_delta(graph, GraphDelta(added_edges=[[3, 3]]))

    def test_out_of_range_add_rejected(self, graph):
        with pytest.raises(GraphError, match="outside"):
            apply_delta(graph, GraphDelta(added_edges=[[0, graph.num_nodes]]))

    def test_add_may_reference_appended_nodes(self, graph):
        updated = apply_delta(
            graph,
            GraphDelta(
                added_edges=[[0, graph.num_nodes]],
                new_features=np.zeros((1, graph.num_features)),
            ),
        )
        assert updated.num_nodes == graph.num_nodes + 1

    def test_remove_may_not_reference_appended_nodes(self, graph):
        with pytest.raises(GraphError, match="outside"):
            apply_delta(
                graph,
                GraphDelta(
                    removed_edges=[[0, graph.num_nodes]],
                    new_features=np.zeros((1, graph.num_features)),
                ),
            )

    def test_duplicate_edges_rejected(self, graph):
        with pytest.raises(GraphError, match="duplicate"):
            apply_delta(graph, GraphDelta(added_edges=[[2, 9], [9, 2]]))

    def test_add_and_remove_same_edge_rejected(self, graph):
        edge = sorted(edge_set(graph))[0]
        with pytest.raises(GraphError, match="both added and removed"):
            apply_delta(graph, GraphDelta(added_edges=[edge], removed_edges=[edge]))

    def test_adding_present_edge_rejected(self, graph):
        edge = sorted(edge_set(graph))[0]
        with pytest.raises(GraphError, match="already present"):
            apply_delta(graph, GraphDelta(added_edges=[edge]))

    def test_removing_absent_edge_rejected(self, graph):
        absent = next(
            (u, v)
            for u in range(graph.num_nodes)
            for v in range(u + 1, graph.num_nodes)
            if (u, v) not in edge_set(graph)
        )
        with pytest.raises(GraphError, match="not present"):
            apply_delta(graph, GraphDelta(removed_edges=[absent]))

    def test_feature_width_mismatch_rejected(self, graph):
        with pytest.raises(GraphError, match="features"):
            apply_delta(graph, GraphDelta(new_features=np.zeros((1, 3))))

    def test_labels_without_features_rejected(self, graph):
        with pytest.raises(GraphError, match="new_labels"):
            apply_delta(graph, GraphDelta(new_labels=[1]))

    def test_validation_failure_leaves_no_side_effects(self, graph):
        graph.normalized_adjacency()
        data = graph._normalized.data.copy()
        with pytest.raises(GraphError):
            apply_delta(graph, GraphDelta(added_edges=[[0, 0]]))
        np.testing.assert_array_equal(graph._normalized.data, data)


# ----------------------------------------------------------------------
# DeltaLog
# ----------------------------------------------------------------------
class TestDeltaLog:
    def test_replay_folds_left_to_right(self):
        graph = make_two_block_graph(seed=1)
        graph.normalized_adjacency()
        rng = np.random.default_rng(9)
        log = DeltaLog()
        expected = graph
        for _ in range(4):
            delta = random_delta(expected, rng)
            log.append(delta)
            expected = apply_delta(expected, delta)
        replayed = log.replay(graph)
        assert_bitwise_equal_csr(replayed.adjacency, expected.adjacency)
        assert_bitwise_equal_csr(replayed._normalized, expected._normalized)

    def test_jsonl_round_trip(self, tmp_path):
        graph = make_two_block_graph(seed=1)
        rng = np.random.default_rng(11)
        log = DeltaLog()
        state = graph
        for _ in range(3):
            delta = random_delta(state, rng)
            log.append(delta)
            state = apply_delta(state, delta)
        path = log.save(tmp_path / "deltas.jsonl")
        loaded = DeltaLog.load(path)
        assert len(loaded) == len(log)
        graph.normalized_adjacency()
        a = log.replay(graph)
        b = loaded.replay(graph)
        assert_bitwise_equal_csr(a.adjacency, b.adjacency)
        assert_bitwise_equal_csr(a._normalized, b._normalized)
        np.testing.assert_array_equal(np.asarray(a.features), np.asarray(b.features))


# ----------------------------------------------------------------------
# k-hop closures
# ----------------------------------------------------------------------
class TestKHopRows:
    def test_zero_hops_is_the_seed_set(self):
        graph = make_two_block_graph(seed=0)
        np.testing.assert_array_equal(
            k_hop_rows([graph.adjacency], np.asarray([4, 2, 4]), 0), [2, 4]
        )

    def test_one_hop_is_seeds_plus_neighbors(self):
        graph = make_two_block_graph(seed=0)
        adjacency = graph.adjacency
        seed = 7
        closure = k_hop_rows([adjacency], np.asarray([seed]), 1)
        neighbors = adjacency.indices[adjacency.indptr[seed] : adjacency.indptr[seed + 1]]
        assert set(closure) == {seed} | set(neighbors.tolist())

    def test_matches_matrix_power_reachability(self):
        graph = make_two_block_graph(seed=2)
        adjacency = graph.adjacency
        seeds = np.asarray([0, 31])
        for hops in (1, 2, 3):
            closure = k_hop_rows([adjacency], seeds, hops)
            frontier = np.zeros(graph.num_nodes)
            frontier[seeds] = 1.0
            mask = frontier.copy()
            for _ in range(hops):
                frontier = adjacency @ frontier + frontier
                mask = np.maximum(mask, frontier)
            np.testing.assert_array_equal(closure, np.flatnonzero(mask > 0))

    def test_union_over_multiple_adjacencies(self):
        """An edge present only in the old structure still propagates."""
        graph = make_two_block_graph(seed=0)
        updated = apply_delta(
            graph, GraphDelta(removed_edges=[sorted(edge_set(graph))[0]])
        )
        u, v = sorted(edge_set(graph))[0]
        closure = k_hop_rows([graph.adjacency, updated.adjacency], np.asarray([u]), 1)
        assert v in closure

    def test_seeds_beyond_small_adjacency_are_clipped(self):
        graph = make_two_block_graph(seed=0)
        bigger = apply_delta(
            graph,
            GraphDelta(
                added_edges=[[0, graph.num_nodes]],
                new_features=np.zeros((1, graph.num_features)),
            ),
        )
        closure = k_hop_rows(
            [graph.adjacency, bigger.adjacency], np.asarray([graph.num_nodes]), 1
        )
        assert 0 in closure and graph.num_nodes in closure
