"""Tests for PageRank against networkx and analytic cases."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph import pagerank, personalized_propagation_matrix
from repro.graph.graph import build_adjacency


class TestPagerank:
    def test_sums_to_one(self):
        adj = build_adjacency(5, np.array([[0, 1], [1, 2], [2, 3], [3, 4]]))
        assert pagerank(adj).sum() == pytest.approx(1.0)

    def test_uniform_on_symmetric_cycle(self):
        n = 6
        edges = np.array([[i, (i + 1) % n] for i in range(n)])
        adj = build_adjacency(n, edges)
        np.testing.assert_allclose(pagerank(adj), np.full(n, 1 / n), atol=1e-8)

    def test_matches_networkx(self):
        rng = np.random.default_rng(0)
        n = 30
        edges = rng.integers(0, n, size=(80, 2))
        adj = build_adjacency(n, edges)
        ours = pagerank(adj, damping=0.85)
        graph = nx.from_scipy_sparse_array(adj)
        theirs = nx.pagerank(graph, alpha=0.85, tol=1e-12)
        expected = np.array([theirs[i] for i in range(n)])
        np.testing.assert_allclose(ours, expected, atol=1e-6)

    def test_hub_gets_highest_score(self):
        # Star graph: center connected to all leaves.
        edges = np.array([[0, i] for i in range(1, 8)])
        adj = build_adjacency(8, edges)
        scores = pagerank(adj)
        assert scores.argmax() == 0

    def test_dangling_nodes_handled(self):
        # Directed chain ending in a sink (dangling) node.
        adj = sp.csr_matrix(np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=float))
        scores = pagerank(adj)
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores > 0)

    def test_personalization(self):
        adj = build_adjacency(4, np.array([[0, 1], [1, 2], [2, 3]]))
        teleport = np.array([1.0, 0.0, 0.0, 0.0])
        scores = pagerank(adj, personalization=teleport)
        assert scores[0] > scores[3]

    def test_invalid_damping_raises(self):
        adj = build_adjacency(3, np.array([[0, 1], [1, 2]]))
        with pytest.raises(GraphError):
            pagerank(adj, damping=1.5)

    def test_invalid_personalization_raises(self):
        adj = build_adjacency(3, np.array([[0, 1], [1, 2]]))
        with pytest.raises(GraphError):
            pagerank(adj, personalization=np.zeros(3))

    def test_empty_graph_raises(self):
        with pytest.raises(GraphError):
            pagerank(sp.csr_matrix((0, 0)))


class TestPersonalizedPropagationMatrix:
    def test_rows_approximately_stochastic(self):
        adj = build_adjacency(6, np.array([[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]]))
        ppr = personalized_propagation_matrix(adj, alpha=0.2, iterations=50)
        # Â is similarity-normalized, not stochastic, so rows are close to
        # but not exactly 1; they must be positive and bounded.
        assert np.all(ppr >= -1e-12)
        assert ppr.sum(axis=1).max() <= 1.5

    def test_self_affinity_dominates_at_high_alpha(self):
        adj = build_adjacency(5, np.array([[0, 1], [1, 2], [2, 3], [3, 4]]))
        ppr = personalized_propagation_matrix(adj, alpha=0.9, iterations=30)
        assert np.all(np.argmax(ppr, axis=1) == np.arange(5))

    def test_affinity_decays_with_distance(self):
        adj = build_adjacency(6, np.array([[i, i + 1] for i in range(5)]))
        ppr = personalized_propagation_matrix(adj, alpha=0.1, iterations=60)
        assert ppr[0, 1] > ppr[0, 4]

    def test_invalid_alpha_raises(self):
        adj = build_adjacency(3, np.array([[0, 1], [1, 2]]))
        with pytest.raises(GraphError):
            personalized_propagation_matrix(adj, alpha=0.0)
