"""Sweep harness, defense-margin report, CLI, and config wiring."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigError
from repro.evaluation.common import ExperimentReport, HarnessConfig
from repro.io import load_report, save_report
from repro.robustness.report import defense_margins, render_summary
from repro.robustness.sweep import METHODS, run_sweep

TINY = dict(scale=0.1, seeds=(0,), num_base_models=2, max_epochs=6, patience=4)


@pytest.fixture(scope="module")
def tiny_report() -> ExperimentReport:
    return run_sweep(
        HarnessConfig(**TINY),
        attacks=("random_flip",),
        budgets=(0.2,),
        methods=("gcn", "rdd"),
    )


class TestRunSweep:
    def test_row_grid(self, tiny_report):
        # (clean + 1 attack setting) × 2 methods.
        assert len(tiny_report.rows) == 4
        assert [r["attack"] for r in tiny_report.rows] == ["none", "none", "random_flip", "random_flip"]
        for row in tiny_report.rows:
            assert 0.0 <= row["accuracy"] <= 1.0
            assert 0.0 <= row["homophily"] <= 1.0

    def test_rdd_rows_carry_reliability_counts(self, tiny_report):
        for row in tiny_report.rows:
            if row["method"] == "rdd":
                assert row["reliable_nodes"] != ""
                assert row["reliable_edges"] != ""
            if row["method"] == "gcn":
                assert row["reliable_nodes"] == ""

    def test_attack_reduces_homophily(self, tiny_report):
        clean = next(r for r in tiny_report.rows if r["attack"] == "none")
        poisoned = next(r for r in tiny_report.rows if r["attack"] != "none")
        assert poisoned["homophily"] < clean["homophily"]

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError, match="unknown methods"):
            run_sweep(HarnessConfig(**TINY), methods=("gcn", "nope"))

    def test_zero_budget_rejected(self):
        with pytest.raises(ConfigError, match="budgets"):
            run_sweep(HarnessConfig(**TINY), budgets=(0.0, 0.1))

    def test_method_registry_complete(self):
        assert set(METHODS) == {"gcn", "bagging", "kd", "rdd", "soft_median", "trimmed_mean"}

    def test_report_json_round_trip(self, tiny_report, tmp_path):
        path = tmp_path / "robustness.json"
        save_report(tiny_report, path)
        loaded = load_report(path)
        assert loaded.rows == tiny_report.rows


class TestDefenseMargins:
    ROWS = [
        {"attack": "none", "budget": 0.0, "method": "gcn", "accuracy": 0.80},
        {"attack": "none", "budget": 0.0, "method": "rdd", "accuracy": 0.82},
        {"attack": "dice", "budget": 0.2, "method": "gcn", "accuracy": 0.50},
        {"attack": "dice", "budget": 0.2, "method": "kd", "accuracy": 0.55},
        {"attack": "dice", "budget": 0.2, "method": "rdd", "accuracy": 0.65},
    ]

    def test_margins_computed_per_setting(self):
        margins = defense_margins(self.ROWS)
        by_attack = {m["attack"]: m for m in margins}
        assert by_attack["dice"]["margin_vs_gcn"] == pytest.approx(0.15)
        assert by_attack["dice"]["margin_vs_kd"] == pytest.approx(0.10)
        assert by_attack["none"]["margin_vs_gcn"] == pytest.approx(0.02)
        assert "margin_vs_kd" not in by_attack["none"]

    def test_missing_method_yields_nothing(self):
        assert defense_margins(self.ROWS, method="bagging") == []

    def test_render_summary_mentions_wins(self):
        text = render_summary(self.ROWS)
        assert "defense margins" in text
        assert "beats a reference under attack: 1/1" in text

    def test_accepts_experiment_report(self, tiny_report):
        margins = defense_margins(tiny_report)
        assert len(margins) == 2  # clean + attacked


class TestHarnessConfigWiring:
    def test_aggregation_default_keeps_fingerprint(self):
        base = HarnessConfig().fingerprint()
        assert "aggregation" not in base
        assert HarnessConfig(aggregation="gcn").fingerprint() == base

    def test_aggregation_changes_fingerprint(self):
        fp = HarnessConfig(aggregation="soft_median").fingerprint()
        assert fp["aggregation"] == "soft_median"

    def test_rdd_config_carries_aggregation(self):
        config = HarnessConfig(aggregation="trimmed_mean").rdd_config()
        assert config.aggregation == "trimmed_mean"


class TestAttackCLI:
    def test_parser_accepts_attack_args(self):
        args = build_parser().parse_args(
            ["attack", "--attack", "dice", "--budget", "0.2", "--batches", "2"]
        )
        assert args.command == "attack"
        assert args.attack == "dice"
        assert not args.sweep

    def test_single_log_mode_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "attack.jsonl"
        code = main(
            [
                "attack", "--dataset", "cora", "--scale", "0.05",
                "--attack", "random_flip", "--budget", "0.2",
                "--out", str(out),
            ]
        )
        assert code == 0
        lines = [l for l in out.read_text().splitlines() if l.strip()]
        assert lines and all(json.loads(l) for l in lines)
        assert "homophily" in capsys.readouterr().out

    def test_sweep_mode_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "robustness.json"
        code = main(
            [
                "attack", "--sweep", "--dataset", "cora", "--scale", "0.05",
                "--seeds", "0", "--base-models", "2", "--max-epochs", "4",
                "--attacks", "random_flip", "--budgets", "0.2",
                "--methods", "gcn", "rdd",
                "--report-out", str(report_path),
            ]
        )
        assert code == 0
        assert load_report(report_path).rows
        assert "defense margins" in capsys.readouterr().out
