"""Attack semantics, determinism, and the replay==direct Â differential."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.delta import DeltaLog
from repro.graph.graph import build_adjacency
from repro.graph.normalize import gcn_normalize
from repro.robustness.attacks import (
    ATTACKS,
    attack_edge_count,
    dice_attack,
    generate_attack,
    perturbation_stats,
    random_flip_attack,
)

from ..conftest import make_two_block_graph

BUDGET = 0.2


@pytest.fixture(scope="module")
def graph():
    return make_two_block_graph(num_nodes=80, seed=3)


def _log_payload(log: DeltaLog) -> list:
    return [json.dumps(delta.to_json(), sort_keys=True) for delta in log]


def _edge_set(graph) -> set:
    src, dst = graph.edge_list()
    return set(zip(src.tolist(), dst.tolist()))


class TestBudget:
    def test_edge_count_rounding(self, graph):
        assert attack_edge_count(graph, 0.0) == 0
        assert attack_edge_count(graph, 1.0) == graph.num_edges

    @pytest.mark.parametrize("budget", [-0.1, 1.5, float("nan")])
    def test_invalid_budget_rejected(self, graph, budget):
        with pytest.raises(GraphError):
            attack_edge_count(graph, budget)

    def test_zero_budget_is_empty_log(self, graph):
        for name in ATTACKS:
            assert len(generate_attack(graph, name, 0.0, seed=0)) == 0

    @pytest.mark.parametrize("name", sorted(ATTACKS))
    def test_budget_respected(self, graph, name):
        log = generate_attack(graph, name, BUDGET, seed=1)
        flips = sum(len(d.added_edges) + len(d.removed_edges) for d in log)
        assert flips == attack_edge_count(graph, BUDGET)

    def test_unknown_attack_rejected(self, graph):
        with pytest.raises(GraphError, match="unknown attack"):
            generate_attack(graph, "nope", BUDGET)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(ATTACKS))
    def test_same_seed_same_log(self, graph, name):
        one = generate_attack(graph, name, BUDGET, seed=11, batches=3)
        two = generate_attack(graph, name, BUDGET, seed=11, batches=3)
        assert _log_payload(one) == _log_payload(two)

    @pytest.mark.parametrize("name", sorted(ATTACKS))
    def test_different_seed_different_log(self, graph, name):
        one = generate_attack(graph, name, BUDGET, seed=11)
        two = generate_attack(graph, name, BUDGET, seed=12)
        assert _log_payload(one) != _log_payload(two)

    @pytest.mark.parametrize("name", sorted(ATTACKS))
    def test_jsonl_round_trip(self, graph, name, tmp_path):
        log = generate_attack(graph, name, BUDGET, seed=5, batches=2)
        path = log.save(tmp_path / "attack.jsonl")
        loaded = DeltaLog.load(path)
        assert _log_payload(log) == _log_payload(loaded)


class TestSemantics:
    def test_random_flip_halves_budget(self, graph):
        log = random_flip_attack(graph, BUDGET, seed=0)
        total = attack_edge_count(graph, BUDGET)
        added = sum(len(d.added_edges) for d in log)
        removed = sum(len(d.removed_edges) for d in log)
        assert removed == total // 2
        assert added == total - removed

    def test_degree_target_is_insertion_only_cross_label(self, graph):
        log = generate_attack(graph, "degree_target", BUDGET, seed=0)
        labels = graph.labels
        for delta in log:
            assert len(delta.removed_edges) == 0
            src, dst = delta.added_edges[:, 0], delta.added_edges[:, 1]
            assert (labels[src] != labels[dst]).all()

    def test_dice_removes_same_label_adds_cross_label(self, graph):
        log = dice_attack(graph, BUDGET, seed=0)
        labels = graph.labels
        for delta in log:
            if len(delta.removed_edges):
                src, dst = delta.removed_edges[:, 0], delta.removed_edges[:, 1]
                assert (labels[src] == labels[dst]).all()
            if len(delta.added_edges):
                src, dst = delta.added_edges[:, 0], delta.added_edges[:, 1]
                assert (labels[src] != labels[dst]).all()

    def test_label_aware_attacks_reduce_homophily_most(self, graph):
        graph.normalized_adjacency()
        drops = {}
        for name in ATTACKS:
            attacked = generate_attack(graph, name, BUDGET, seed=2).replay(graph)
            stats = perturbation_stats(graph, attacked)
            drops[name] = stats["homophily_before"] - stats["homophily_after"]
            assert drops[name] > 0.0
        assert drops["dice"] >= drops["random_flip"]

    def test_single_class_graph_rejected_by_label_aware_attacks(self):
        graph = make_two_block_graph(num_nodes=40, seed=0)
        graph.labels[:] = 0
        for name in ("degree_target", "dice"):
            with pytest.raises(GraphError):
                generate_attack(graph, name, BUDGET, seed=0)


class TestReplayDifferential:
    """The acceptance property: replayed attack == direct attack, bitwise on Â."""

    @pytest.mark.parametrize("name", sorted(ATTACKS))
    @pytest.mark.parametrize("batches", [1, 4])
    def test_replay_matches_direct_bitwise(self, graph, name, batches):
        graph.normalized_adjacency()  # warm the cache: replay goes incremental
        log = generate_attack(graph, name, BUDGET, seed=9, batches=batches)
        attacked = log.replay(graph)
        assert attacked._normalized is not None

        # Direct construction: apply the flips to an edge list and
        # normalize from scratch.
        edges = _edge_set(graph)
        for delta in log:
            for u, v in delta.removed_edges:
                edges.discard((min(u, v), max(u, v)))
            for u, v in delta.added_edges:
                edges.add((min(u, v), max(u, v)))
        direct_adj = build_adjacency(graph.num_nodes, np.asarray(sorted(edges)))
        direct = gcn_normalize(direct_adj).astype(attacked._normalized.dtype)

        assert _edge_set(attacked) == edges
        incremental = attacked._normalized
        assert np.array_equal(incremental.indptr, direct.indptr)
        assert np.array_equal(incremental.indices, direct.indices)
        assert np.array_equal(incremental.data, direct.data)

    def test_batching_invariant(self, graph):
        one = generate_attack(graph, "dice", BUDGET, seed=4, batches=1).replay(graph)
        many = generate_attack(graph, "dice", BUDGET, seed=4, batches=5).replay(graph)
        assert _edge_set(one) == _edge_set(many)
