"""Robust aggregation: estimator properties, trainability, RDD wiring."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.config import RDDConfig
from repro.core.rdd import RDDTrainer
from repro.errors import ConfigError
from repro.graph.normalize import gcn_normalize
from repro.robustness.aggregation import (
    RobustGCN,
    RobustGraphConvolution,
    robust_weights,
    soft_median_weights,
    trimmed_mean_weights,
)
from repro.training.seed import make_rng
from repro.training.trainer import Trainer

from ..conftest import make_two_block_graph


@pytest.fixture(scope="module")
def graph():
    return make_two_block_graph(num_nodes=60, seed=1)


def _star_with_outlier(num_leaves: int = 6):
    """A star graph whose last leaf carries an extreme embedding."""
    n = num_leaves + 1
    rows = np.concatenate([np.zeros(num_leaves, np.int64), np.arange(1, n)])
    cols = np.concatenate([np.arange(1, n), np.zeros(num_leaves, np.int64)])
    adjacency = sp.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(n, n)
    )
    base = gcn_normalize(adjacency)
    h = np.zeros((n, 4))
    h[1:] = 1.0
    h[-1] = 100.0  # the poisoned neighbor
    return base, h


class TestWeightProperties:
    def test_row_mass_preserved(self, graph):
        base = graph.normalized_adjacency()
        h = np.asarray(graph.features, dtype=np.float64)
        for candidate in (
            soft_median_weights(base, h),
            trimmed_mean_weights(base, h, trim=0.3),
        ):
            assert candidate.shape == base.shape
            assert np.array_equal(candidate.indices, base.indices)
            assert np.array_equal(candidate.indptr, base.indptr)
            np.testing.assert_allclose(
                np.asarray(candidate.sum(axis=1)).ravel(),
                np.asarray(base.sum(axis=1)).ravel(),
            )

    def test_soft_median_damps_outlier(self):
        base, h = _star_with_outlier()
        reweighted = soft_median_weights(base, h, temperature=0.5)
        row = slice(base.indptr[0], base.indptr[1])
        cols = base.indices[row]
        outlier_pos = np.flatnonzero(cols == base.shape[0] - 1)[0]
        honest_pos = np.flatnonzero(cols == 1)[0]
        assert reweighted.data[row][outlier_pos] < 0.01 * reweighted.data[row][honest_pos]

    def test_trimmed_mean_zeroes_outlier(self):
        base, h = _star_with_outlier()
        reweighted = trimmed_mean_weights(base, h, trim=0.2)
        row = slice(base.indptr[0], base.indptr[1])
        cols = base.indices[row]
        outlier_pos = np.flatnonzero(cols == base.shape[0] - 1)[0]
        assert reweighted.data[row][outlier_pos] == 0.0

    def test_trimmed_mean_never_drops_self_loop(self):
        base, h = _star_with_outlier()
        h[0] = 100.0  # make the center itself look like the outlier
        reweighted = trimmed_mean_weights(base, h, trim=0.2)
        row = slice(base.indptr[0], base.indptr[1])
        cols = base.indices[row]
        self_pos = np.flatnonzero(cols == 0)[0]
        assert reweighted.data[row][self_pos] > 0.0

    def test_high_temperature_degenerates_to_gcn(self, graph):
        base = graph.normalized_adjacency()
        h = np.asarray(graph.features, dtype=np.float64)
        loose = soft_median_weights(base, h, temperature=1e9)
        np.testing.assert_allclose(loose.data, base.data, rtol=1e-6)

    def test_deterministic(self, graph):
        base = graph.normalized_adjacency()
        h = np.asarray(graph.features, dtype=np.float64)
        one = soft_median_weights(base, h)
        two = soft_median_weights(base, h)
        assert np.array_equal(one.data, two.data)

    def test_gcn_mode_is_identity(self, graph):
        base = graph.normalized_adjacency()
        h = np.asarray(graph.features, dtype=np.float64)
        assert robust_weights(base, h, "gcn") is base

    def test_invalid_parameters_rejected(self, graph):
        base = graph.normalized_adjacency()
        h = np.asarray(graph.features, dtype=np.float64)
        with pytest.raises(ConfigError):
            soft_median_weights(base, h, temperature=0.0)
        with pytest.raises(ConfigError):
            trimmed_mean_weights(base, h, trim=0.5)
        with pytest.raises(ConfigError):
            robust_weights(base, h, "nope")


class TestRobustGCN:
    @pytest.mark.parametrize("aggregation", ["soft_median", "trimmed_mean"])
    def test_trains_above_chance(self, graph, aggregation):
        model = RobustGCN(
            graph.num_features, graph.num_classes, make_rng(0), aggregation=aggregation
        )
        result = Trainer(max_epochs=40, patience=15).fit(model, graph)
        assert result.test_accuracy > 0.6

    def test_eval_matches_train_mode_forward(self, graph):
        """No-grad inference equals the taped forward (dropout off)."""
        model = RobustGCN(
            graph.num_features, graph.num_classes, make_rng(0), dropout=0.0
        )
        model.eval()
        fast = model.predict_logits(graph)
        model.train()
        taped = model(graph).data
        np.testing.assert_allclose(fast, taped, rtol=1e-10, atol=1e-12)

    def test_layer_shape_contract(self, graph):
        layer = RobustGraphConvolution(graph.num_features, 8, make_rng(0))
        out = layer(graph.normalized_adjacency(), np.asarray(graph.features, dtype=np.float64))
        assert out.shape == (graph.num_nodes, 8)

    def test_unknown_aggregation_rejected(self, graph):
        with pytest.raises(ConfigError):
            RobustGCN(graph.num_features, graph.num_classes, make_rng(0), aggregation="nope")


class TestRDDWiring:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            RDDConfig(aggregation="nope")
        with pytest.raises(ConfigError):
            RDDConfig(aggregation="soft_median", sampler="neighbor")
        with pytest.raises(ConfigError):
            RDDConfig(robust_trim=0.7)
        with pytest.raises(ConfigError):
            RDDConfig(robust_temperature=0.0)

    def test_default_factory_builds_robust_model(self, graph):
        trainer = RDDTrainer(RDDConfig(aggregation="trimmed_mean"))
        model = trainer._default_factory(graph, make_rng(0))
        assert isinstance(model, RobustGCN)
        assert model.layers[0].aggregation == "trimmed_mean"

    def test_rdd_fit_with_robust_students(self, graph):
        config = RDDConfig(
            num_base_models=2,
            max_epochs=15,
            patience=10,
            aggregation="trimmed_mean",
        )
        result = RDDTrainer(config).fit(graph, seed=0)
        assert result.ensemble_test_accuracy > 0.5
        assert len(result.base_test_accuracies) == 2
