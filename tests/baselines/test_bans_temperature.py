"""Tests for BANs distillation temperature."""

import numpy as np
import pytest

from repro.baselines import BANsEnsemble
from repro.errors import ConfigError


class TestTemperature:
    def test_invalid_temperature_raises(self):
        with pytest.raises(ConfigError):
            BANsEnsemble(temperature=0.0)
        with pytest.raises(ConfigError):
            BANsEnsemble(temperature=-2.0)

    def test_high_temperature_trains(self, tiny_graph):
        result = BANsEnsemble(
            num_base_models=2, temperature=4.0, hidden=8, max_epochs=30
        ).fit(tiny_graph, seed=0)
        assert 0.0 <= result.ensemble_test_accuracy <= 1.0

    def test_tempered_teacher_is_softer(self):
        # The internal re-tempering must flatten the teacher distribution.
        method = BANsEnsemble(temperature=4.0)
        teacher = np.array([[0.9, 0.05, 0.05]])

        # Reproduce the tempering arithmetic from _kd_loss.
        tau = method.temperature
        tempered = np.power(np.clip(teacher, 1e-12, 1.0), 1.0 / tau)
        tempered /= tempered.sum(axis=1, keepdims=True)
        assert tempered[0].max() < teacher[0].max()
        assert tempered[0].min() > teacher[0].min()
        np.testing.assert_allclose(tempered.sum(axis=1), [1.0])

    def test_temperature_changes_training_outcome(self, tiny_graph):
        cold = BANsEnsemble(num_base_models=2, temperature=1.0, hidden=8, max_epochs=30).fit(
            tiny_graph, seed=0
        )
        hot = BANsEnsemble(num_base_models=2, temperature=5.0, hidden=8, max_epochs=30).fit(
            tiny_graph, seed=0
        )
        # First generations are identical (no teacher); later ones diverge.
        assert cold.base_test_accuracies[0] == hot.base_test_accuracies[0]
