"""Tests for the Bagging, BANs, and Mean Teacher baselines."""

import numpy as np
import pytest

from repro.baselines import BaggingEnsemble, BANsEnsemble, MeanTeacher
from repro.errors import ConfigError


class TestBagging:
    def test_result_structure(self, tiny_graph):
        result = BaggingEnsemble(num_base_models=3, hidden=8, max_epochs=40).fit(tiny_graph, seed=0)
        assert len(result.base_test_accuracies) == 3
        assert len(result.ensemble_curve) == 3
        assert result.ensemble_curve[-1] == pytest.approx(result.ensemble_test_accuracy)

    def test_learns_task(self, tiny_graph):
        result = BaggingEnsemble(num_base_models=3, hidden=8, max_epochs=80).fit(tiny_graph, seed=0)
        assert result.ensemble_test_accuracy > 0.8

    def test_base_models_differ(self, tiny_graph):
        result = BaggingEnsemble(num_base_models=4, hidden=8, max_epochs=40).fit(tiny_graph, seed=0)
        # Independent inits: at least two base accuracies differ (diversity).
        assert len(set(result.base_test_accuracies)) >= 2 or result.average_base_accuracy == 1.0

    def test_deterministic_per_seed(self, tiny_graph):
        a = BaggingEnsemble(num_base_models=2, hidden=8, max_epochs=30).fit(tiny_graph, seed=5)
        b = BaggingEnsemble(num_base_models=2, hidden=8, max_epochs=30).fit(tiny_graph, seed=5)
        assert a.base_test_accuracies == b.base_test_accuracies

    def test_custom_factory(self, tiny_graph):
        from repro.models import MLP

        ensemble = BaggingEnsemble(
            num_base_models=2, max_epochs=30,
            model_factory=lambda g, rng: MLP(g.num_features, g.num_classes, rng, hidden=8),
        )
        result = ensemble.fit(tiny_graph, seed=0)
        assert len(result.base_test_accuracies) == 2

    def test_average_and_gain_properties(self, tiny_graph):
        result = BaggingEnsemble(num_base_models=3, hidden=8, max_epochs=40).fit(tiny_graph, seed=0)
        assert result.average_base_accuracy == pytest.approx(
            float(np.mean(result.base_test_accuracies))
        )
        assert result.ensemble_gain == pytest.approx(
            result.ensemble_test_accuracy - result.average_base_accuracy
        )

    def test_models_to_reach(self, tiny_graph):
        result = BaggingEnsemble(num_base_models=3, hidden=8, max_epochs=60).fit(tiny_graph, seed=0)
        needed = result.models_to_reach(0.5)
        assert needed is None or 1 <= needed <= 3
        assert result.models_to_reach(2.0) is None  # unreachable target


class TestBANs:
    def test_result_structure(self, tiny_graph):
        result = BANsEnsemble(num_base_models=3, hidden=8, max_epochs=40).fit(tiny_graph, seed=0)
        assert len(result.base_test_accuracies) == 3

    def test_learns_task(self, tiny_graph):
        result = BANsEnsemble(num_base_models=3, hidden=8, max_epochs=80).fit(tiny_graph, seed=0)
        assert result.ensemble_test_accuracy > 0.8

    def test_distill_weight_validation(self):
        with pytest.raises(ConfigError):
            BANsEnsemble(distill_weight=-1.0)

    def test_zero_distill_weight_reduces_to_independent_chain(self, tiny_graph):
        # With weight 0, generations are Bagging-like (no KD supervision).
        result = BANsEnsemble(num_base_models=2, distill_weight=0.0, hidden=8, max_epochs=40).fit(
            tiny_graph, seed=0
        )
        assert len(result.base_test_accuracies) == 2


class TestMeanTeacher:
    def test_returns_metrics(self, tiny_graph):
        result = MeanTeacher(max_epochs=40, hidden=8).fit(tiny_graph, seed=0)
        assert 0.0 <= result.test_accuracy <= 1.0
        assert result.epochs_run <= 40

    def test_learns_task(self, tiny_graph):
        result = MeanTeacher(max_epochs=80, hidden=8).fit(tiny_graph, seed=0)
        assert result.test_accuracy > 0.7

    def test_ema_validation(self):
        with pytest.raises(ConfigError):
            MeanTeacher(ema_decay=1.0)

    def test_ema_update_moves_teacher_toward_student(self, tiny_graph):
        from repro.models import GCN
        from repro.training import make_rng

        method = MeanTeacher(ema_decay=0.5)
        student = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=4)
        teacher = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(1), hidden=4)
        student_w = dict(student.named_parameters())["layers.0.weight"].data.copy()
        teacher_w_before = dict(teacher.named_parameters())["layers.0.weight"].data.copy()
        method._ema_update(student, teacher)
        teacher_w_after = dict(teacher.named_parameters())["layers.0.weight"].data
        np.testing.assert_allclose(teacher_w_after, 0.5 * teacher_w_before + 0.5 * student_w)
