"""Tests for the Snapshot Ensemble baseline."""

import pytest

from repro.baselines import SnapshotEnsemble
from repro.errors import ConfigError


class TestSnapshotEnsemble:
    def test_result_structure(self, tiny_graph):
        result = SnapshotEnsemble(num_snapshots=3, epochs_per_cycle=15, hidden=8).fit(tiny_graph, seed=0)
        assert len(result.base_test_accuracies) == 3
        assert len(result.ensemble_curve) == 3
        assert result.ensemble_curve[-1] == pytest.approx(result.ensemble_test_accuracy)

    def test_learns_task(self, tiny_graph):
        result = SnapshotEnsemble(num_snapshots=3, epochs_per_cycle=40, hidden=8).fit(tiny_graph, seed=0)
        assert result.ensemble_test_accuracy > 0.7

    def test_lr_schedule_shape(self):
        method = SnapshotEnsemble(epochs_per_cycle=10, max_lr=0.1)
        assert method._cycle_lr(0) == pytest.approx(0.1)
        assert method._cycle_lr(5) == pytest.approx(0.05)
        assert method._cycle_lr(10) == pytest.approx(0.0, abs=1e-12)
        # Monotone decreasing within a cycle.
        values = [method._cycle_lr(e) for e in range(11)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ConfigError):
            SnapshotEnsemble(num_snapshots=0)
        with pytest.raises(ConfigError):
            SnapshotEnsemble(epochs_per_cycle=0)

    def test_snapshots_share_one_model_trajectory(self, tiny_graph):
        # Later snapshots usually improve on the first (same weights keep
        # training); at minimum they must differ.
        result = SnapshotEnsemble(num_snapshots=3, epochs_per_cycle=20, hidden=8).fit(tiny_graph, seed=1)
        assert len(set(result.base_test_accuracies)) >= 2 or result.base_test_accuracies[0] == 1.0
