"""Tests for the Label Propagation baseline."""

import numpy as np
import pytest

from repro.baselines import LabelPropagation
from repro.errors import ConfigError
from repro.tensor.functional import accuracy


class TestLabelPropagation:
    def test_probabilities_normalized(self, tiny_graph):
        probs = LabelPropagation().predict_proba(tiny_graph)
        assert probs.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)
        sums = probs.sum(axis=1)
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_labeled_nodes_keep_their_class(self, tiny_graph):
        preds = LabelPropagation().predict(tiny_graph)
        train = tiny_graph.train_index
        assert accuracy(preds, tiny_graph.labels, train) == 1.0

    def test_solves_homophilous_two_block_task(self, tiny_graph):
        preds = LabelPropagation().predict(tiny_graph)
        acc = accuracy(preds, tiny_graph.labels, tiny_graph.test_index)
        assert acc > 0.8

    def test_alpha_validation(self):
        with pytest.raises(ConfigError):
            LabelPropagation(alpha=1.0)
        with pytest.raises(ConfigError):
            LabelPropagation(alpha=0.0)

    def test_deterministic(self, tiny_graph):
        a = LabelPropagation().predict_proba(tiny_graph)
        b = LabelPropagation().predict_proba(tiny_graph)
        np.testing.assert_allclose(a, b)

    def test_higher_alpha_spreads_further(self, tiny_graph):
        # With small alpha, unlabeled far nodes keep near-zero mass.
        low = LabelPropagation(alpha=0.1).predict_proba(tiny_graph)
        high = LabelPropagation(alpha=0.95).predict_proba(tiny_graph)
        far_mass_low = low.sum(axis=1).min()
        far_mass_high = high.sum(axis=1).min()
        assert far_mass_high >= far_mass_low
