"""Tests for Self-Training and Co-Training."""

import numpy as np
import pytest

from repro.baselines import CoTraining, SelfTraining
from repro.errors import ConfigError


class TestSelfTraining:
    def test_returns_metrics_against_true_labels(self, tiny_graph):
        result = SelfTraining(rounds=1, additions_per_class=3, max_epochs=40).fit(tiny_graph, seed=0)
        assert 0.0 <= result.test_accuracy <= 1.0
        assert result.wall_time_s > 0

    def test_zero_rounds_is_plain_gcn(self, tiny_graph):
        result = SelfTraining(rounds=0, max_epochs=40).fit(tiny_graph, seed=0)
        assert result.test_accuracy > 0.6

    def test_learns_task(self, tiny_graph):
        result = SelfTraining(rounds=1, additions_per_class=4, max_epochs=60).fit(tiny_graph, seed=0)
        assert result.test_accuracy > 0.7

    def test_validation(self):
        with pytest.raises(ConfigError):
            SelfTraining(rounds=-1)
        with pytest.raises(ConfigError):
            SelfTraining(additions_per_class=0)

    def test_expansion_never_touches_val_or_test(self, tiny_graph):
        method = SelfTraining(rounds=1, additions_per_class=50, max_epochs=30)
        # Run the internal expansion directly.
        from repro.models import GCN
        from repro.models.base import softmax_rows
        from repro.training import Trainer, make_rng

        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, make_rng(0), hidden=8)
        Trainer(max_epochs=30).fit(model, tiny_graph)
        probs = softmax_rows(model.predict_logits(tiny_graph))
        pseudo = tiny_graph.labels.copy()
        expanded = method._expand(tiny_graph, probs, pseudo)
        assert len(np.intersect1d(expanded, tiny_graph.val_index)) == 0
        assert len(np.intersect1d(expanded, tiny_graph.test_index)) == 0
        assert set(tiny_graph.train_index) <= set(expanded)


class TestCoTraining:
    def test_returns_metrics(self, tiny_graph):
        result = CoTraining(additions_per_class=4, max_epochs=40).fit(tiny_graph, seed=0)
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_learns_task(self, tiny_graph):
        result = CoTraining(additions_per_class=5, max_epochs=60).fit(tiny_graph, seed=0)
        assert result.test_accuracy > 0.7

    def test_walk_affinity_respects_communities(self, tiny_graph):
        method = CoTraining()
        affinity = method._class_affinity(tiny_graph)
        assert affinity.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)
        # Nodes should mostly have the highest affinity toward their own class
        # on a strongly homophilous graph.
        agreement = (affinity.argmax(axis=1) == tiny_graph.labels).mean()
        assert agreement > 0.75

    def test_expansion_respects_protected_sets(self, tiny_graph):
        method = CoTraining(additions_per_class=100)
        affinity = method._class_affinity(tiny_graph)
        pseudo = tiny_graph.labels.copy()
        expanded = method._expand(tiny_graph, affinity, pseudo)
        assert len(np.intersect1d(expanded, tiny_graph.val_index)) == 0
        assert len(np.intersect1d(expanded, tiny_graph.test_index)) == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            CoTraining(additions_per_class=0)
