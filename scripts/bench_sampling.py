#!/usr/bin/env python
"""Run the neighbor-sampling benchmark and write ``BENCH_sampling.json``.

Thin launcher for :mod:`benchmarks.bench_sampling` (kept under
``scripts/`` next to the other bench entry points)."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.bench_sampling import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
