#!/usr/bin/env python
"""Guard against train-step performance regressions.

Re-runs the train-step benchmark and compares the measured speedups
against the committed ``BENCH_trainstep.json`` baseline.  Absolute step
times are machine-dependent, so only the *speedup ratios* are compared:
a fresh speedup may drift down to ``TOLERANCE`` (default 0.75) times
the committed value before the check fails.  The headline
deep-taped-regime speedup must additionally stay at or above the 1.5x
acceptance floor regardless of what the baseline recorded.

Usage::

    python scripts/check_bench.py            # full benchmark (slower)
    python scripts/check_bench.py --quick    # fewer repeats
    pytest scripts/check_bench.py -m perf    # same check under pytest

Exit status is non-zero when any workload regresses.  After an
intentional performance change, refresh the baseline with
``python scripts/bench_trainstep.py`` and commit the new JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import pytest  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_trainstep.json"

# A fresh speedup may drop to this fraction of the committed one before
# the check fails — wide enough for cross-machine and scheduler noise,
# tight enough to catch a real regression (e.g. the fused path silently
# falling back to the legacy tape).
TOLERANCE = 0.75

# The deep taped regime must keep the acceptance-floor speedup outright.
HEADLINE_FLOOR = 1.5


def load_baseline(path: Path = BASELINE_PATH) -> Dict[str, object]:
    if not path.exists():
        raise FileNotFoundError(
            f"no committed baseline at {path}; run scripts/bench_trainstep.py first"
        )
    return json.loads(path.read_text())


def compare(fresh: Dict[str, object], baseline: Dict[str, object], tolerance: float = TOLERANCE) -> List[str]:
    """Regression messages (empty when the fresh run holds the baseline)."""
    failures = []
    for name, base in baseline["workloads"].items():
        current = fresh["workloads"].get(name)
        if current is None:
            failures.append(f"{name}: workload missing from fresh benchmark run")
            continue
        floor = base["speedup"] * tolerance
        if current["speedup"] < floor:
            failures.append(
                f"{name}: speedup {current['speedup']:.2f}x fell below "
                f"{floor:.2f}x ({tolerance:.0%} of committed {base['speedup']:.2f}x)"
            )
    headline = fresh.get("trainstep_speedup", 0.0)
    if headline < HEADLINE_FLOOR:
        failures.append(
            f"headline: deep taped regime {headline:.2f}x is below the "
            f"{HEADLINE_FLOOR:.1f}x acceptance floor"
        )
    return failures


def run_check(quick: bool = False, tolerance: float = TOLERANCE) -> List[str]:
    from benchmarks.bench_trainstep import run_benchmark

    baseline = load_baseline()
    fresh = run_benchmark(quick=quick)
    for name, workload in fresh["workloads"].items():
        base = baseline["workloads"].get(name, {})
        print(
            f"{name:11s} fresh {workload['speedup']:5.2f}x  "
            f"committed {base.get('speedup', float('nan')):5.2f}x"
        )
    return compare(fresh, baseline, tolerance=tolerance)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer timing repeats")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=TOLERANCE,
        help="allowed fraction of the committed speedup (default %(default)s)",
    )
    args = parser.parse_args(argv)
    failures = run_check(quick=args.quick, tolerance=args.tolerance)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("benchmark holds the committed baseline")
    return 0


# ----------------------------------------------------------------------
# pytest entries (perf-marked; excluded from the tier-1 run)
# ----------------------------------------------------------------------
@pytest.mark.perf
def test_bench_holds_committed_baseline():
    failures = run_check(quick=True)
    assert not failures, failures


def test_compare_flags_regressions():
    baseline = {"workloads": {"gcn": {"speedup": 1.6}}, "trainstep_speedup": 1.6}
    fresh_ok = {"workloads": {"gcn": {"speedup": 1.5}}, "trainstep_speedup": 1.5}
    assert compare(fresh_ok, baseline) == []
    fresh_slow = {"workloads": {"gcn": {"speedup": 1.0}}, "trainstep_speedup": 1.0}
    messages = compare(fresh_slow, baseline)
    assert len(messages) == 2  # band violation + headline floor
    fresh_missing = {"workloads": {}, "trainstep_speedup": 1.6}
    assert any("missing" in m for m in compare(fresh_missing, baseline))


if __name__ == "__main__":
    raise SystemExit(main())
