#!/usr/bin/env python
"""Guard against performance regressions in the committed benchmarks.

Six benches are guarded, each against its committed baseline JSON:

* **trainstep** (``BENCH_trainstep.json``) — fused-kernel vs legacy-tape
  train-step speedups;
* **serving** (``BENCH_serving.json``) — micro-batched vs unbatched
  prediction throughput at concurrency 8, the replica-tier scaling
  curve (1/2/4 shared-memory worker processes at concurrency 64), and
  the overload/shedding sanity run;
* **obs** (``BENCH_obs.json``) — training-time overhead of the enabled
  observability layer (event log + per-epoch RDD diagnostics), for both
  the full-batch and the neighbor-sampled training loop;
* **sampling** (``BENCH_sampling.json``) — vectorized CSR sampler
  speedup over the per-node loop, and the sampled-vs-full-batch peak
  RSS ratio at 10x graph scale;
* **streaming** (``BENCH_streaming.json``) — k-hop invalidation
  (apply-delta + closure refresh) speedup over a from-scratch Â
  normalize + full-table rebuild at small delta rates;
* **robustness** (``BENCH_robustness.json``) — the defense margin:
  RDD's accuracy-under-attack minus plain GCN's and minus
  reliability-free distillation's on the same dice-poisoned graphs.

Absolute times are machine-dependent, so only the *ratios* are compared:
a fresh speedup may drift down to ``TOLERANCE`` (default 0.75) times the
committed value before the check fails.  Each bench also keeps an
absolute acceptance bound regardless of the baseline: 1.5x for the
trainstep headline (deep taped regime), 2.0x for the serving
batched/unbatched ratio plus 5.0x for the replica tier over the
committed batched rps (with a shed-engaged, bounded-tail overload
gate), at most 1.05x enabled-vs-disabled wall time
for obs, for sampling at least 5x sampler speedup with the sampled
peak RSS at most half of full-batch, and for streaming at least 5x
incremental-over-full refresh speedup.  The robustness margins are
accuracy *differences* near zero, so (like obs) they are absolute-only:
RDD must beat GCN by the committed floor and must not trail
reliability-free distillation.

Usage::

    python scripts/check_bench.py                    # all benches
    python scripts/check_bench.py --bench serving    # one bench
    python scripts/check_bench.py --quick            # fewer timing repeats
    pytest scripts/check_bench.py -m perf            # same checks under pytest

Exit status is non-zero when any workload regresses.  After an
intentional performance change, refresh the baseline with
``python scripts/bench_trainstep.py`` / ``python scripts/bench_serving.py``
/ ``python scripts/bench_obs.py`` and commit the new JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import pytest  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_trainstep.json"
SERVING_BASELINE_PATH = REPO_ROOT / "BENCH_serving.json"
OBS_BASELINE_PATH = REPO_ROOT / "BENCH_obs.json"
SAMPLING_BASELINE_PATH = REPO_ROOT / "BENCH_sampling.json"
STREAMING_BASELINE_PATH = REPO_ROOT / "BENCH_streaming.json"
ROBUSTNESS_BASELINE_PATH = REPO_ROOT / "BENCH_robustness.json"

# A fresh speedup may drop to this fraction of the committed one before
# the check fails — wide enough for cross-machine and scheduler noise,
# tight enough to catch a real regression (e.g. the fused path silently
# falling back to the legacy tape).
TOLERANCE = 0.75

# The deep taped regime must keep the acceptance-floor speedup outright.
HEADLINE_FLOOR = 1.5

# Micro-batched serving must stay at least this much faster than
# unbatched at the benchmark's concurrency, no matter the baseline.
SERVING_FLOOR = 2.0

# The replica tier (shared-memory logits behind worker processes) must
# stay at least this much faster than the committed batched single
# process — the PR-10 scale-out acceptance floor.
REPLICA_FLOOR = 5.0

# Overload sanity: accepted requests must keep a bounded tail while the
# excess sheds.  The bound is deliberately loose (the admission queue of
# 64 implies ~tens of ms of queueing at the measured rates); it exists
# to catch collapse, not to measure.
SHED_P99_LIMIT_MS = 1000.0


def load_baseline(path: Path = BASELINE_PATH) -> Dict[str, object]:
    if not path.exists():
        raise FileNotFoundError(
            f"no committed baseline at {path}; run scripts/bench_trainstep.py first"
        )
    return json.loads(path.read_text())


def compare(fresh: Dict[str, object], baseline: Dict[str, object], tolerance: float = TOLERANCE) -> List[str]:
    """Regression messages (empty when the fresh run holds the baseline)."""
    failures = []
    for name, base in baseline["workloads"].items():
        current = fresh["workloads"].get(name)
        if current is None:
            failures.append(f"{name}: workload missing from fresh benchmark run")
            continue
        floor = base["speedup"] * tolerance
        if current["speedup"] < floor:
            failures.append(
                f"{name}: speedup {current['speedup']:.2f}x fell below "
                f"{floor:.2f}x ({tolerance:.0%} of committed {base['speedup']:.2f}x)"
            )
    headline = fresh.get("trainstep_speedup", 0.0)
    if headline < HEADLINE_FLOOR:
        failures.append(
            f"headline: deep taped regime {headline:.2f}x is below the "
            f"{HEADLINE_FLOOR:.1f}x acceptance floor"
        )
    return failures


def run_check(quick: bool = False, tolerance: float = TOLERANCE) -> List[str]:
    from benchmarks.bench_trainstep import run_benchmark

    baseline = load_baseline()
    fresh = run_benchmark(quick=quick)
    for name, workload in fresh["workloads"].items():
        base = baseline["workloads"].get(name, {})
        print(
            f"{name:11s} fresh {workload['speedup']:5.2f}x  "
            f"committed {base.get('speedup', float('nan')):5.2f}x"
        )
    return compare(fresh, baseline, tolerance=tolerance)


# ----------------------------------------------------------------------
# Serving bench (BENCH_serving.json)
# ----------------------------------------------------------------------
def load_serving_baseline(path: Path = SERVING_BASELINE_PATH) -> Dict[str, object]:
    if not path.exists():
        raise FileNotFoundError(
            f"no committed baseline at {path}; run scripts/bench_serving.py first"
        )
    return json.loads(path.read_text())


def compare_serving(
    fresh: Dict[str, object], baseline: Dict[str, object], tolerance: float = TOLERANCE
) -> List[str]:
    """Regression messages for the serving bench (empty when it holds).

    Three families of gate: the batched/unbatched speedup (relative band
    + absolute floor, as before), the replica-tier speedup over the
    committed *batched* rps (relative band + the 5.0x scale-out floor),
    and the overload sanity gate — the bench's saturation run must have
    actually shed (the admission bound engaged), still accepted traffic,
    and kept the accepted p99 bounded.
    """
    failures = []
    floor = baseline["batched_speedup"] * tolerance
    speedup = fresh["batched_speedup"]
    if speedup < floor:
        failures.append(
            f"serving: batched speedup {speedup:.2f}x fell below {floor:.2f}x "
            f"({tolerance:.0%} of committed {baseline['batched_speedup']:.2f}x)"
        )
    if speedup < SERVING_FLOOR:
        failures.append(
            f"serving: batched speedup {speedup:.2f}x is below the "
            f"{SERVING_FLOOR:.1f}x acceptance floor"
        )

    replica_speedup = fresh.get("replica_speedup")
    if replica_speedup is None:
        failures.append("serving: replica_speedup missing from fresh benchmark run")
    else:
        committed = baseline.get("replica_speedup")
        if committed is not None and replica_speedup < committed * tolerance:
            failures.append(
                f"serving: replica speedup {replica_speedup:.2f}x fell below "
                f"{committed * tolerance:.2f}x ({tolerance:.0%} of committed "
                f"{committed:.2f}x)"
            )
        if replica_speedup < REPLICA_FLOOR:
            failures.append(
                f"serving: replica speedup {replica_speedup:.2f}x is below the "
                f"{REPLICA_FLOOR:.1f}x acceptance floor"
            )

    overload = fresh.get("overload")
    if not overload:
        failures.append("serving: overload section missing from fresh benchmark run")
    else:
        if overload.get("shed", 0) <= 0:
            failures.append(
                "serving: overload run shed nothing — the admission bound "
                "never engaged (unbounded-queue regression?)"
            )
        if overload.get("accepted", 0) <= 0:
            failures.append("serving: overload run accepted no requests")
        p99 = overload.get("accepted_p99_ms", 0.0)
        if p99 > SHED_P99_LIMIT_MS:
            failures.append(
                f"serving: accepted p99 under overload is {p99:.0f} ms "
                f"(bound {SHED_P99_LIMIT_MS:.0f} ms) — shedding is not "
                f"protecting the admitted tail"
            )
    return failures


def run_check_serving(quick: bool = False, tolerance: float = TOLERANCE) -> List[str]:
    from benchmarks.bench_serving import run_benchmark as run_serving_benchmark

    baseline = load_serving_baseline()
    fresh = run_serving_benchmark(quick=quick)
    overload = fresh.get("overload", {})
    print(
        f"{'serving':11s} fresh {fresh['batched_speedup']:5.2f}x  "
        f"committed {baseline['batched_speedup']:5.2f}x  "
        f"(batched {fresh['batched']['rps']:.0f} rps, "
        f"unbatched {fresh['unbatched']['rps']:.0f} rps)"
    )
    print(
        f"{'replicas':11s} fresh {fresh.get('replica_speedup', float('nan')):5.2f}x  "
        f"committed {baseline.get('replica_speedup', float('nan')):5.2f}x  "
        f"(shed {overload.get('shed', 0)} of {overload.get('submitted', 0)}, "
        f"accepted p99 {overload.get('accepted_p99_ms', 0.0):.0f} ms)"
    )
    return compare_serving(fresh, baseline, tolerance=tolerance)


# ----------------------------------------------------------------------
# Observability overhead (BENCH_obs.json)
# ----------------------------------------------------------------------
def load_obs_baseline(path: Path = OBS_BASELINE_PATH) -> Dict[str, object]:
    if not path.exists():
        raise FileNotFoundError(
            f"no committed baseline at {path}; run scripts/bench_obs.py first"
        )
    return json.loads(path.read_text())


def compare_obs(fresh: Dict[str, object], limit: float | None = None) -> List[str]:
    """Regression messages for the obs bench (empty when it holds).

    Unlike the speedup benches, the obs metric is an overhead *ratio
    near 1.0*, so a relative band against the committed value would be
    all noise; only the absolute budget is enforced.
    """
    from benchmarks.bench_obs import OVERHEAD_LIMIT

    limit = OVERHEAD_LIMIT if limit is None else limit
    failures = []
    overhead = fresh["overhead"]
    if overhead > limit:
        failures.append(
            f"obs: enabled-mode overhead {overhead:.3f}x exceeds the "
            f"{limit:.2f}x budget (enabled {fresh['enabled_s']:.2f}s vs "
            f"disabled {fresh['disabled_s']:.2f}s)"
        )
    sampled = fresh.get("sampled_overhead")
    if sampled is not None and sampled > limit:
        failures.append(
            f"obs: sampled-path overhead {sampled:.3f}x exceeds the "
            f"{limit:.2f}x budget (one sampler:batch span per optimizer step)"
        )
    return failures


def run_check_obs(quick: bool = False) -> List[str]:
    from benchmarks.bench_obs import run_benchmark as run_obs_benchmark

    baseline = load_obs_baseline()
    # The overhead budget sits a few percent above 1.0, within scheduler
    # noise on a loaded single-core box, so a one-sided timing blip can
    # trip it.  Retry once on failure: genuine regressions (tracing cost
    # actually grew) fail both measurements.
    failures: List[str] = []
    for attempt in range(2):
        fresh = run_obs_benchmark(quick=quick)
        print(
            f"{'obs':11s} fresh {fresh['overhead']:5.3f}x  "
            f"committed {baseline['overhead']:5.3f}x  "
            f"(enabled {fresh['enabled_s']:.2f}s, disabled {fresh['disabled_s']:.2f}s, "
            f"sampled {fresh['sampled_overhead']:5.3f}x)"
        )
        failures = compare_obs(fresh)
        if not failures:
            break
        if attempt == 0:
            print("obs         overhead over budget; retrying once (timing noise)")
    return failures


# ----------------------------------------------------------------------
# Neighbor sampling (BENCH_sampling.json)
# ----------------------------------------------------------------------
def load_sampling_baseline(path: Path = SAMPLING_BASELINE_PATH) -> Dict[str, object]:
    if not path.exists():
        raise FileNotFoundError(
            f"no committed baseline at {path}; run scripts/bench_sampling.py first"
        )
    return json.loads(path.read_text())


def compare_sampling(
    fresh: Dict[str, object], baseline: Dict[str, object], tolerance: float = TOLERANCE
) -> List[str]:
    """Regression messages for the sampling bench (empty when it holds).

    The sampler speedup is checked both against the relative band (like
    the other speedup benches) and the absolute acceptance floor; the
    peak-RSS ratio is absolute-only — it is already a same-machine
    ratio, so a relative band on top would only compound noise.
    """
    from benchmarks.bench_sampling import MEMORY_RATIO_LIMIT, SAMPLER_FLOOR

    failures = []
    speedup = fresh["sampler_speedup"]
    floor = baseline["sampler_speedup"] * tolerance
    if speedup < floor:
        failures.append(
            f"sampling: sampler speedup {speedup:.2f}x fell below {floor:.2f}x "
            f"({tolerance:.0%} of committed {baseline['sampler_speedup']:.2f}x)"
        )
    if speedup < SAMPLER_FLOOR:
        failures.append(
            f"sampling: sampler speedup {speedup:.2f}x is below the "
            f"{SAMPLER_FLOOR:.1f}x acceptance floor"
        )
    ratio = fresh["gcn_peak_ratio_10x"]
    if ratio > MEMORY_RATIO_LIMIT:
        failures.append(
            f"sampling: sampled peak RSS is {ratio:.2f}x of full-batch at 10x "
            f"scale (budget {MEMORY_RATIO_LIMIT:.2f}x)"
        )
    return failures


def run_check_sampling(quick: bool = False, tolerance: float = TOLERANCE) -> List[str]:
    from benchmarks.bench_sampling import run_benchmark as run_sampling_benchmark

    baseline = load_sampling_baseline()
    fresh = run_sampling_benchmark(quick=quick)
    print(
        f"{'sampling':11s} fresh {fresh['sampler_speedup']:5.2f}x  "
        f"committed {baseline['sampler_speedup']:5.2f}x  "
        f"(peak RSS ratio {fresh['gcn_peak_ratio_10x']:.2f}, "
        f"committed {baseline['gcn_peak_ratio_10x']:.2f})"
    )
    return compare_sampling(fresh, baseline, tolerance=tolerance)


# ----------------------------------------------------------------------
# Streaming deltas (BENCH_streaming.json)
# ----------------------------------------------------------------------
def load_streaming_baseline(path: Path = STREAMING_BASELINE_PATH) -> Dict[str, object]:
    if not path.exists():
        raise FileNotFoundError(
            f"no committed baseline at {path}; run scripts/bench_streaming.py first"
        )
    return json.loads(path.read_text())


def compare_streaming(
    fresh: Dict[str, object], baseline: Dict[str, object], tolerance: float = TOLERANCE
) -> List[str]:
    """Regression messages for the streaming bench (empty when it holds).

    Only the invalidation speedup is gated (relative band + absolute
    floor).  The freshness scenario's latencies are load-dependent
    wall-clock numbers — recorded in the JSON for inspection, not
    checked here.
    """
    from benchmarks.bench_streaming import SPEEDUP_FLOOR

    failures = []
    speedup = fresh["invalidation_speedup"]
    floor = baseline["invalidation_speedup"] * tolerance
    if speedup < floor:
        failures.append(
            f"streaming: invalidation speedup {speedup:.2f}x fell below {floor:.2f}x "
            f"({tolerance:.0%} of committed {baseline['invalidation_speedup']:.2f}x)"
        )
    if speedup < SPEEDUP_FLOOR:
        failures.append(
            f"streaming: invalidation speedup {speedup:.2f}x is below the "
            f"{SPEEDUP_FLOOR:.1f}x acceptance floor"
        )
    return failures


def run_check_streaming(quick: bool = False, tolerance: float = TOLERANCE) -> List[str]:
    from benchmarks.bench_streaming import invalidation_speedup

    baseline = load_streaming_baseline()
    invalidation = invalidation_speedup(quick=quick)
    fresh = {"invalidation_speedup": invalidation["speedup"]}
    print(
        f"{'streaming':11s} fresh {invalidation['speedup']:5.2f}x  "
        f"committed {baseline['invalidation_speedup']:5.2f}x  "
        f"(mean closure {invalidation['mean_rows_refreshed']:.0f} of "
        f"{invalidation['nodes']} rows)"
    )
    return compare_streaming(fresh, baseline, tolerance=tolerance)


# ----------------------------------------------------------------------
# Robustness defense margin (BENCH_robustness.json)
# ----------------------------------------------------------------------
def load_robustness_baseline(path: Path = ROBUSTNESS_BASELINE_PATH) -> Dict[str, object]:
    if not path.exists():
        raise FileNotFoundError(
            f"no committed baseline at {path}; run scripts/bench_robustness.py first"
        )
    return json.loads(path.read_text())


def compare_robustness(fresh: Dict[str, object]) -> List[str]:
    """Regression messages for the robustness bench (empty when it holds).

    The gated quantities are accuracy *margins* near zero (rdd - gcn and
    rdd - kd on the same poisoned graphs), so — as with the obs overhead
    ratio — a relative band against the committed value would be all
    noise; only the absolute floors are enforced.  Attack-generation
    throughput is recorded in the JSON for inspection, not checked.
    """
    from benchmarks.bench_robustness import GCN_MARGIN_FLOOR, KD_MARGIN_FLOOR

    failures = []
    vs_gcn = fresh["defense_margin_vs_gcn"]
    if vs_gcn < GCN_MARGIN_FLOOR:
        failures.append(
            f"robustness: rdd beat gcn under attack by only {vs_gcn:+.3f} "
            f"(needs >= {GCN_MARGIN_FLOOR:+.3f})"
        )
    vs_kd = fresh["defense_margin_vs_kd"]
    if vs_kd < KD_MARGIN_FLOOR:
        failures.append(
            f"robustness: rdd trailed reliability-free distillation under "
            f"attack by {vs_kd:+.3f} (needs >= {KD_MARGIN_FLOOR:+.3f})"
        )
    return failures


def run_check_robustness(quick: bool = False) -> List[str]:
    from benchmarks.bench_robustness import defense_sweep

    baseline = load_robustness_baseline()
    defense = defense_sweep(quick=quick)
    fresh = {
        "defense_margin_vs_gcn": defense["margin_vs_gcn"],
        "defense_margin_vs_kd": defense["margin_vs_kd"],
    }
    print(
        f"{'robustness':11s} fresh vs gcn {defense['margin_vs_gcn']:+.3f}  "
        f"vs kd {defense['margin_vs_kd']:+.3f}  "
        f"committed {baseline['defense_margin_vs_gcn']:+.3f}/"
        f"{baseline['defense_margin_vs_kd']:+.3f}  "
        f"({defense['attack']}@{defense['attack_budget']:g})"
    )
    return compare_robustness(fresh)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer timing repeats")
    parser.add_argument(
        "--bench",
        choices=["trainstep", "serving", "obs", "sampling", "streaming", "robustness", "all"],
        default="all",
        help="which committed baseline(s) to check (default: all)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=TOLERANCE,
        help="allowed fraction of the committed speedup (default %(default)s)",
    )
    args = parser.parse_args(argv)
    failures = []
    if args.bench in ("trainstep", "all"):
        failures += run_check(quick=args.quick, tolerance=args.tolerance)
    if args.bench in ("serving", "all"):
        failures += run_check_serving(quick=args.quick, tolerance=args.tolerance)
    if args.bench in ("obs", "all"):
        failures += run_check_obs(quick=args.quick)
    if args.bench in ("sampling", "all"):
        failures += run_check_sampling(quick=args.quick, tolerance=args.tolerance)
    if args.bench in ("streaming", "all"):
        failures += run_check_streaming(quick=args.quick, tolerance=args.tolerance)
    if args.bench in ("robustness", "all"):
        failures += run_check_robustness(quick=args.quick)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("benchmark holds the committed baseline")
    return 0


# ----------------------------------------------------------------------
# pytest entries (perf-marked; excluded from the tier-1 run)
# ----------------------------------------------------------------------
@pytest.mark.perf
def test_bench_holds_committed_baseline():
    failures = run_check(quick=True)
    assert not failures, failures


@pytest.mark.perf
def test_serving_holds_committed_baseline():
    failures = run_check_serving(quick=True)
    assert not failures, failures


@pytest.mark.perf
def test_obs_overhead_holds_committed_budget():
    failures = run_check_obs(quick=True)
    assert not failures, failures


@pytest.mark.perf
def test_sampling_holds_committed_baseline():
    failures = run_check_sampling(quick=True)
    assert not failures, failures


@pytest.mark.perf
def test_streaming_holds_committed_baseline():
    failures = run_check_streaming(quick=True)
    assert not failures, failures


@pytest.mark.perf
def test_robustness_holds_committed_baseline():
    failures = run_check_robustness(quick=True)
    assert not failures, failures


def test_compare_robustness_flags_regressions():
    ok = {"defense_margin_vs_gcn": 0.10, "defense_margin_vs_kd": 0.03}
    assert compare_robustness(ok) == []
    weak = compare_robustness(
        {"defense_margin_vs_gcn": 0.005, "defense_margin_vs_kd": 0.03}
    )
    assert len(weak) == 1 and "beat gcn" in weak[0]
    losing = compare_robustness(
        {"defense_margin_vs_gcn": 0.10, "defense_margin_vs_kd": -0.02}
    )
    assert len(losing) == 1 and "reliability-free" in losing[0]


def test_compare_streaming_flags_regressions():
    baseline = {"invalidation_speedup": 8.0}
    assert compare_streaming({"invalidation_speedup": 7.0}, baseline) == []
    band = compare_streaming({"invalidation_speedup": 5.5}, baseline)
    assert len(band) == 1 and "75%" in band[0]
    floor = compare_streaming({"invalidation_speedup": 3.0}, baseline)
    assert len(floor) == 2 and any("acceptance floor" in m for m in floor)


def test_compare_sampling_flags_regressions():
    baseline = {"sampler_speedup": 11.0, "gcn_peak_ratio_10x": 0.3}
    ok = {"sampler_speedup": 10.0, "gcn_peak_ratio_10x": 0.32}
    assert compare_sampling(ok, baseline) == []
    band = compare_sampling(
        {"sampler_speedup": 7.0, "gcn_peak_ratio_10x": 0.3}, baseline
    )
    assert len(band) == 1 and "75%" in band[0]
    floor = compare_sampling(
        {"sampler_speedup": 3.0, "gcn_peak_ratio_10x": 0.3}, baseline
    )
    assert len(floor) == 2 and any("acceptance floor" in m for m in floor)
    memory = compare_sampling(
        {"sampler_speedup": 11.0, "gcn_peak_ratio_10x": 0.7}, baseline
    )
    assert len(memory) == 1 and "peak RSS" in memory[0]


def test_compare_obs_flags_overrun():
    within = {"overhead": 1.02, "enabled_s": 1.02, "disabled_s": 1.0, "sampled_overhead": 1.01}
    assert compare_obs(within) == []
    over = {"overhead": 1.2, "enabled_s": 1.2, "disabled_s": 1.0}
    messages = compare_obs(over)
    assert len(messages) == 1 and "budget" in messages[0]
    sampled_over = {
        "overhead": 1.0, "enabled_s": 1.0, "disabled_s": 1.0, "sampled_overhead": 1.2
    }
    messages = compare_obs(sampled_over)
    assert len(messages) == 1 and "sampled-path" in messages[0]


def test_compare_serving_flags_regressions():
    baseline = {"batched_speedup": 6.0, "replica_speedup": 10.0}
    good_overload = {"shed": 100, "accepted": 50, "accepted_p99_ms": 80.0}
    ok = {
        "batched_speedup": 5.0,
        "replica_speedup": 9.0,
        "overload": dict(good_overload),
    }
    assert compare_serving(ok, baseline) == []
    band = compare_serving({**ok, "batched_speedup": 4.0}, baseline)
    assert len(band) == 1 and "75%" in band[0]
    floor = compare_serving({**ok, "batched_speedup": 1.5}, baseline)
    assert len(floor) == 2 and any("acceptance floor" in m for m in floor)
    replica_band = compare_serving({**ok, "replica_speedup": 7.0}, baseline)
    assert len(replica_band) == 1 and "replica speedup" in replica_band[0]
    replica_floor = compare_serving({**ok, "replica_speedup": 3.0}, baseline)
    assert len(replica_floor) == 2 and any(
        "5.0x acceptance floor" in m for m in replica_floor
    )
    missing_replicas = compare_serving(
        {"batched_speedup": 5.0, "overload": dict(good_overload)}, baseline
    )
    assert len(missing_replicas) == 1 and "replica_speedup missing" in missing_replicas[0]
    never_shed = compare_serving(
        {**ok, "overload": {**good_overload, "shed": 0}}, baseline
    )
    assert len(never_shed) == 1 and "shed nothing" in never_shed[0]
    slow_tail = compare_serving(
        {**ok, "overload": {**good_overload, "accepted_p99_ms": 5000.0}}, baseline
    )
    assert len(slow_tail) == 1 and "p99" in slow_tail[0]
    no_overload = compare_serving({k: v for k, v in ok.items() if k != "overload"}, baseline)
    assert len(no_overload) == 1 and "overload section missing" in no_overload[0]


def test_compare_flags_regressions():
    baseline = {"workloads": {"gcn": {"speedup": 1.6}}, "trainstep_speedup": 1.6}
    fresh_ok = {"workloads": {"gcn": {"speedup": 1.5}}, "trainstep_speedup": 1.5}
    assert compare(fresh_ok, baseline) == []
    fresh_slow = {"workloads": {"gcn": {"speedup": 1.0}}, "trainstep_speedup": 1.0}
    messages = compare(fresh_slow, baseline)
    assert len(messages) == 2  # band violation + headline floor
    fresh_missing = {"workloads": {}, "trainstep_speedup": 1.6}
    assert any("missing" in m for m in compare(fresh_missing, baseline))


if __name__ == "__main__":
    raise SystemExit(main())
