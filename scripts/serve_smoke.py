#!/usr/bin/env python
"""CI smoke test: export a tiny artifact, serve it, hit the endpoints.

Covers the full train→export→serve→query path in a few seconds:

1. train a tiny GCN on a scaled-down Cora stand-in,
2. export a serving artifact,
3. start a :class:`PredictionServer` on a free port,
4. assert 200s (and sane payloads) from ``/healthz``, ``/predict``
   (transductive + inductive), and ``/metrics``.

Exit status 0 on success; any assertion or HTTP failure is fatal.
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import numpy as np  # noqa: E402

from repro.datasets import cora_like  # noqa: E402
from repro.models.gcn import GCN  # noqa: E402
from repro.serving import (  # noqa: E402
    ModelSpec,
    PredictionEngine,
    PredictionServer,
    export_model_artifact,
)
from repro.training.trainer import Trainer  # noqa: E402


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(url: str, body: dict):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def main() -> int:
    graph = cora_like(seed=0, scale=0.1)
    model = GCN(graph.num_features, graph.num_classes, np.random.default_rng(0))
    Trainer(max_epochs=20, patience=10).fit(model, graph)

    with tempfile.TemporaryDirectory() as tmp:
        path = export_model_artifact(
            Path(tmp) / "smoke.rddart", model, ModelSpec("gcn"), graph,
            dataset={"name": "cora", "kwargs": {"seed": 0, "scale": 0.1}, "dtype": None},
        )
        engine = PredictionEngine(path, graph)
        with PredictionServer(engine, port=0).start() as server:
            status, health = _get(f"{server.url}/healthz")
            assert status == 200 and health["status"] == "ok", health
            print(f"healthz ok: {health}")

            status, predict = _post(f"{server.url}/predict", {"nodes": [0, 1, 2]})
            assert status == 200 and len(predict["labels"]) == 3, predict
            expected = engine.predict_nodes([0, 1, 2]).argmax(axis=1).tolist()
            assert predict["labels"] == expected, (predict["labels"], expected)
            print(f"predict ok: {predict}")

            features = np.asarray(
                graph.features[0].todense()
            ).ravel() if hasattr(graph.features, "todense") else graph.features[0]
            status, inductive = _post(
                f"{server.url}/predict",
                {"features": features.tolist(), "neighbors": [1, 2]},
            )
            assert status == 200 and "label" in inductive, inductive
            print(f"inductive ok: {inductive}")

            status, metrics = _get(f"{server.url}/metrics")
            assert status == 200, metrics
            assert metrics["counters"].get("requests_total", 0) >= 2, metrics
            assert metrics["histograms"].get("latency_ms", {}).get("count", 0) >= 1, metrics
            print(f"metrics ok: {metrics['counters']}")
    print("serve smoke: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
