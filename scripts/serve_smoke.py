#!/usr/bin/env python
"""CI smoke test: export a tiny artifact, serve it, hit the endpoints.

Covers the full train→export→serve→query path in a few seconds:

1. train a tiny GCN on a scaled-down Cora stand-in,
2. export a serving artifact,
3. start a :class:`PredictionServer` on a free port — single-process by
   default, or a replica tier with ``--replicas N``,
4. assert 200s (and sane payloads) from ``/healthz``, ``/predict``
   (transductive + inductive), and ``/metrics``.

With ``--replicas`` the smoke additionally exports a *second* artifact
and performs one rolling swap via ``POST /admin/reload`` **while a
background client hammers /predict** — asserting zero downtime: every
in-flight request during the swap answers 200, and predictions after
the swap match the new artifact.

Exit status 0 on success; any assertion or HTTP failure is fatal.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import numpy as np  # noqa: E402

from repro.datasets import cora_like  # noqa: E402
from repro.models.gcn import GCN  # noqa: E402
from repro.serving import (  # noqa: E402
    ModelSpec,
    PredictionEngine,
    PredictionServer,
    ReplicaFrontend,
    export_model_artifact,
)
from repro.training.trainer import Trainer  # noqa: E402


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(url: str, body: dict):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _smoke_endpoints(server: PredictionServer, engine: PredictionEngine, graph) -> None:
    status, health = _get(f"{server.url}/healthz")
    assert status == 200 and health["status"] == "ok", health
    print(f"healthz ok: {health}")

    status, predict = _post(f"{server.url}/predict", {"nodes": [0, 1, 2]})
    assert status == 200 and len(predict["labels"]) == 3, predict
    expected = engine.predict_nodes([0, 1, 2]).argmax(axis=1).tolist()
    assert predict["labels"] == expected, (predict["labels"], expected)
    print(f"predict ok: {predict}")

    features = np.asarray(
        graph.features[0].todense()
    ).ravel() if hasattr(graph.features, "todense") else graph.features[0]
    status, inductive = _post(
        f"{server.url}/predict",
        {"features": features.tolist(), "neighbors": [1, 2]},
    )
    assert status == 200 and "label" in inductive, inductive
    print(f"inductive ok: {inductive}")

    status, metrics = _get(f"{server.url}/metrics")
    assert status == 200, metrics
    assert metrics["counters"].get("requests_total", 0) >= 2, metrics
    assert metrics["histograms"].get("latency_ms", {}).get("count", 0) >= 1, metrics
    print(f"metrics ok: {metrics['counters']}")


def _rolling_swap_under_load(server: PredictionServer, second_path: Path, graph) -> None:
    """One /admin/reload while a background client hammers /predict.

    Every response during the swap must be 200 — the rolling reload
    swaps replicas one at a time, so the tier never stops serving.
    """
    stop = threading.Event()
    statuses: list = []
    errors: list = []

    def hammer() -> None:
        rng = np.random.default_rng(42)
        while not stop.is_set():
            nodes = rng.integers(0, graph.num_nodes, size=4).tolist()
            try:
                status, _ = _post(f"{server.url}/predict", {"nodes": nodes})
                statuses.append(status)
            except Exception as error:  # noqa: BLE001 - recorded and asserted below
                errors.append(error)
                return

    clients = [threading.Thread(target=hammer) for _ in range(4)]
    for client in clients:
        client.start()
    try:
        status, reloaded = _post(f"{server.url}/admin/reload", {"artifact": str(second_path)})
        assert status == 200 and reloaded["artifact_version"] == 1, reloaded
    finally:
        stop.set()
        for client in clients:
            client.join(timeout=30)
    assert not errors, f"request failed during rolling swap: {errors[0]}"
    assert statuses and all(s == 200 for s in statuses), (
        f"non-200 during rolling swap: {sorted(set(statuses))} over {len(statuses)} requests"
    )
    print(f"rolling swap ok: {len(statuses)} requests served during reload, all 200")

    # Post-swap predictions must come from the *new* artifact.
    engine_v2 = PredictionEngine(second_path, graph)
    status, predict = _post(f"{server.url}/predict", {"nodes": [0, 1, 2]})
    expected = engine_v2.predict_nodes([0, 1, 2]).argmax(axis=1).tolist()
    assert status == 200 and predict["labels"] == expected, (predict, expected)
    status, health = _get(f"{server.url}/healthz")
    assert health["artifact_version"] == 1, health
    print(f"post-swap predictions match v2: {predict['labels']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--replicas", type=int, default=0, metavar="N",
        help="smoke the replica tier with N worker processes "
             "(includes a rolling artifact swap under load; 0 = single process)",
    )
    args = parser.parse_args(argv)

    graph = cora_like(seed=0, scale=0.1)
    model = GCN(graph.num_features, graph.num_classes, np.random.default_rng(0))
    Trainer(max_epochs=20, patience=10).fit(model, graph)

    with tempfile.TemporaryDirectory() as tmp:
        dataset = {"name": "cora", "kwargs": {"seed": 0, "scale": 0.1}, "dtype": None}
        path = export_model_artifact(
            Path(tmp) / "smoke.rddart", model, ModelSpec("gcn"), graph, dataset=dataset
        )
        engine = PredictionEngine(path, graph)
        if args.replicas > 0:
            # A second (differently-initialized, briefly trained) artifact
            # to swap in under load.
            model_v2 = GCN(graph.num_features, graph.num_classes, np.random.default_rng(1))
            Trainer(max_epochs=5, patience=5).fit(model_v2, graph)
            second_path = export_model_artifact(
                Path(tmp) / "smoke-v2.rddart", model_v2, ModelSpec("gcn"), graph,
                dataset=dataset,
            )
            frontend = ReplicaFrontend(path, graph, replicas=args.replicas)
            with PredictionServer(frontend=frontend, port=0).start() as server:
                _smoke_endpoints(server, engine, graph)
                status, health = _get(f"{server.url}/healthz")
                assert health["replicas"] == args.replicas, health
                _rolling_swap_under_load(server, second_path, graph)
        else:
            with PredictionServer(engine, port=0).start() as server:
                _smoke_endpoints(server, engine, graph)
    print("serve smoke: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
