#!/usr/bin/env python
"""CI smoke test: record an observed RDD run, then report on it.

Covers the observability path end to end in under a minute:

1. run a tiny ``table6`` harness (Bagging / BANs / RDD) with
   ``--obs-dir`` so the event log is written by the real CLI path,
2. assert the log holds per-epoch spans and every RDD reliability
   diagnostic the report depends on,
3. render ``repro report`` in both text and Prometheus formats and
   assert the headline sections are present.

Exit status 0 on success; any assertion failure is fatal.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.cli import main as cli_main  # noqa: E402
from repro.obs.report import (  # noqa: E402
    RDD_EPOCH_EVENT,
    read_events,
    registry_from_events,
    render_report,
)

DIAGNOSTIC_KEYS = {
    "num_reliable",
    "num_distill",
    "num_reliable_edges",
    "agreement",
    "gamma",
    "L1",
    "L2",
    "Lreg",
}


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "obs"
        code = cli_main(
            [
                "run", "table6",
                "--scale", "0.1",
                "--seeds", "0",
                "--base-models", "2",
                "--max-epochs", "6",
                "--obs-dir", str(run_dir),
            ]
        )
        assert code == 0, f"harness run exited {code}"

        events = read_events(run_dir)
        spans = {e["name"] for e in events if e.get("kind") == "span"}
        assert "epoch" in spans and "trainer:fit" in spans, f"missing spans: {spans}"
        assert "harness:seed" in spans, f"missing harness span: {spans}"

        epochs = [e for e in events if e.get("name") == RDD_EPOCH_EVENT]
        assert epochs, "no rdd_epoch diagnostics in the event log"
        missing = DIAGNOSTIC_KEYS - set(epochs[-1])
        assert not missing, f"rdd_epoch record lacks {missing}"

        text = render_report(run_dir)
        assert "RDD reliability diagnostics" in text, text[:400]
        prometheus = registry_from_events(events).prometheus()
        assert "repro_spans_epoch_total" in prometheus, prometheus[:400]

        # The CLI front door must agree with the library path.
        assert cli_main(["report", str(run_dir)]) == 0
        assert cli_main(["report", str(run_dir), "--format", "prometheus"]) == 0

    print(
        f"report smoke OK: {len(events)} events, "
        f"{len(epochs)} rdd_epoch records, report rendered"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
