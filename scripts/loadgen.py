#!/usr/bin/env python
"""HTTP load generator for a running ``repro serve`` instance.

Two traffic shapes, stdlib only:

* **closed loop** (default): ``--concurrency`` client threads each issue
  ``--requests`` POSTs to ``/predict`` back to back.  Offered load
  adapts to the server's speed — good for measuring peak throughput,
  useless for studying overload (a slowing server throttles its own
  clients).
* **open loop** (``--rate R``): arrivals are scheduled at a fixed R
  requests/second for ``--duration`` seconds, regardless of how fast
  responses come back — the shape real traffic has, and the only way to
  actually saturate an admission-controlled server.  Sender threads
  claim arrival slots and fire at their scheduled instants; a slot
  whose time has already passed fires immediately (the backlog is part
  of the story being measured).

Every response is counted by status — 200s land in the latency
percentiles, 429s are shed load (the server protecting itself), 503s
are timeouts — so the report distinguishes "the server collapsed" from
"the server degraded exactly as designed".

Usage::

    python -m repro serve --artifact model.rddart --port 8080 &
    python scripts/loadgen.py --url http://127.0.0.1:8080 \
        --requests 200 --concurrency 8 --out loadgen.json
    python scripts/loadgen.py --url http://127.0.0.1:8080 \
        --rate 2000 --duration 5 --concurrency 64
"""

from __future__ import annotations

import argparse
import itertools
import json
import random
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional


def _get_json(url: str, timeout: float = 10.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


def _post_json(url: str, body: dict, timeout: float = 30.0) -> int:
    """POST; returns the HTTP status (4xx/5xx included, not raised)."""
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            response.read()
            return response.status
    except urllib.error.HTTPError as error:
        error.read()
        return error.code


class _Tally:
    """Thread-safe per-status counts + success latencies."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.statuses: Dict[str, int] = {}
        self.latencies: List[float] = []
        self.transport_errors = 0

    def record(self, status: Optional[int], latency: float) -> None:
        with self.lock:
            if status is None:
                self.transport_errors += 1
                return
            key = str(status)
            self.statuses[key] = self.statuses.get(key, 0) + 1
            if status == 200:
                self.latencies.append(latency)


def _fire(url: str, rng: random.Random, nodes_per_request: int, num_nodes: int,
          tally: _Tally, timeout: float) -> None:
    nodes = [rng.randrange(num_nodes) for _ in range(nodes_per_request)]
    started = time.perf_counter()
    try:
        status = _post_json(f"{url}/predict", {"nodes": nodes}, timeout=timeout)
    except (urllib.error.URLError, OSError, ValueError):
        tally.record(None, 0.0)
        return
    tally.record(status, time.perf_counter() - started)


def _summarize(tally: _Tally, wall: float, extra: dict) -> dict:
    flat = sorted(tally.latencies)
    if not flat and tally.transport_errors:
        raise SystemExit(
            f"every request failed at the transport layer "
            f"({tally.transport_errors} errors); is the server up?"
        )

    def percentile(p: float) -> float:
        if not flat:
            return 0.0
        return flat[min(len(flat) - 1, int(round(p / 100.0 * (len(flat) - 1))))]

    total = sum(tally.statuses.values()) + tally.transport_errors
    summary = {
        "requests": total,
        "statuses": dict(sorted(tally.statuses.items())),
        "ok": len(flat),
        "shed": tally.statuses.get("429", 0),
        "timeouts": tally.statuses.get("503", 0),
        "transport_errors": tally.transport_errors,
        "failures": total - len(flat),
        "wall_s": wall,
        "rps": len(flat) / wall if wall > 0 else 0.0,
        "p50_ms": percentile(50) * 1000.0,
        "p90_ms": percentile(90) * 1000.0,
        "p99_ms": percentile(99) * 1000.0,
    }
    summary.update(extra)
    return summary


def run_load(
    url: str,
    requests_per_thread: int,
    concurrency: int,
    nodes_per_request: int,
    num_nodes: int,
    seed: int = 0,
    timeout: float = 30.0,
) -> dict:
    """Closed loop: each thread fires its next request on completion."""
    tally = _Tally()

    def client(thread_index: int) -> None:
        rng = random.Random(f"{seed}:{thread_index}")
        for _ in range(requests_per_thread):
            _fire(url, rng, nodes_per_request, num_nodes, tally, timeout)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return _summarize(tally, wall, {"mode": "closed", "url": url,
                                    "concurrency": concurrency,
                                    "nodes_per_request": nodes_per_request})


def run_open_loop(
    url: str,
    rate: float,
    duration: float,
    concurrency: int,
    nodes_per_request: int,
    num_nodes: int,
    seed: int = 0,
    timeout: float = 30.0,
) -> dict:
    """Open loop: arrivals at ``rate``/s for ``duration`` seconds.

    Sender threads claim arrival slot *i* (scheduled at ``i / rate``)
    from a shared counter and sleep until its instant.  When the server
    falls behind, slots fire the moment a sender frees up — offered
    load never adapts to the server, which is the point.
    """
    tally = _Tally()
    total_arrivals = max(1, int(rate * duration))
    slots = itertools.count()
    slot_lock = threading.Lock()
    epoch = time.perf_counter()

    def sender(thread_index: int) -> None:
        rng = random.Random(f"{seed}:{thread_index}")
        while True:
            with slot_lock:
                slot = next(slots)
            if slot >= total_arrivals:
                return
            delay = epoch + slot / rate - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            _fire(url, rng, nodes_per_request, num_nodes, tally, timeout)

    threads = [threading.Thread(target=sender, args=(i,)) for i in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - epoch
    return _summarize(tally, wall, {"mode": "open", "url": url,
                                    "concurrency": concurrency,
                                    "nodes_per_request": nodes_per_request,
                                    "offered_rate": rate,
                                    "offered_rps": total_arrivals / wall if wall > 0 else 0.0})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", type=str, default="http://127.0.0.1:8080", help="server base URL")
    parser.add_argument("--requests", type=int, default=100, help="requests per client thread (closed loop)")
    parser.add_argument("--concurrency", type=int, default=8, help="client/sender threads")
    parser.add_argument("--nodes-per-request", type=int, default=8, help="node ids per /predict")
    parser.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="open-loop mode: schedule arrivals at this fixed rate "
             "instead of the closed request loop",
    )
    parser.add_argument(
        "--duration", type=float, default=5.0, metavar="SECONDS",
        help="how long to offer load in open-loop mode",
    )
    parser.add_argument("--timeout", type=float, default=30.0, help="per-request client timeout")
    parser.add_argument("--seed", type=int, default=0, help="request-stream seed")
    parser.add_argument("--out", type=str, default=None, help="write the summary as JSON here")
    parser.add_argument(
        "--metrics", action="store_true", help="also print the server's /metrics snapshot"
    )
    args = parser.parse_args(argv)

    health = _get_json(f"{args.url}/healthz")
    if health.get("status") != "ok":
        print(f"server unhealthy: {health}", file=sys.stderr)
        return 1
    num_nodes = int(health["nodes"])
    print(f"target: {health.get('model')} over {num_nodes} nodes at {args.url}")

    if args.rate is not None:
        summary = run_open_loop(
            args.url, args.rate, args.duration, args.concurrency,
            args.nodes_per_request, num_nodes, args.seed, args.timeout,
        )
    else:
        summary = run_load(
            args.url, args.requests, args.concurrency, args.nodes_per_request,
            num_nodes, args.seed, args.timeout,
        )
    print(json.dumps(summary, indent=2))
    if args.metrics:
        print(json.dumps(_get_json(f"{args.url}/metrics"), indent=2))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2)
        print(f"summary written to {args.out}")
    # Shed (429) and timed-out (503) responses are the server degrading
    # as designed, not a load-generation failure; only transport-level
    # errors fail the run.
    return 1 if summary["transport_errors"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
