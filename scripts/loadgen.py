#!/usr/bin/env python
"""HTTP load generator for a running ``repro serve`` instance.

Closed-loop load: ``--concurrency`` client threads each issue
``--requests`` POSTs to ``/predict`` with random node ids, then the tool
reports throughput and latency percentiles and (optionally) the server's
own ``/metrics`` snapshot.  Stdlib only — point it at any host.

Usage::

    python -m repro serve --artifact model.rddart --port 8080 &
    python scripts/loadgen.py --url http://127.0.0.1:8080 \
        --requests 200 --concurrency 8 --out loadgen.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import List


def _get_json(url: str, timeout: float = 10.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


def _post_json(url: str, body: dict, timeout: float = 30.0) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def run_load(
    url: str,
    requests_per_thread: int,
    concurrency: int,
    nodes_per_request: int,
    num_nodes: int,
    seed: int = 0,
) -> dict:
    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    failures: List[str] = []

    def client(thread_index: int) -> None:
        rng = random.Random(f"{seed}:{thread_index}")
        for _ in range(requests_per_thread):
            nodes = [rng.randrange(num_nodes) for _ in range(nodes_per_request)]
            started = time.perf_counter()
            try:
                _post_json(f"{url}/predict", {"nodes": nodes})
            except (urllib.error.URLError, OSError, ValueError) as error:
                failures.append(str(error))
                return
            latencies[thread_index].append(time.perf_counter() - started)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    flat = sorted(latency for per_thread in latencies for latency in per_thread)
    if not flat:
        raise SystemExit(f"every request failed; first error: {failures[0] if failures else '?'}")

    def percentile(p: float) -> float:
        return flat[min(len(flat) - 1, int(round(p / 100.0 * (len(flat) - 1))))]

    return {
        "url": url,
        "concurrency": concurrency,
        "nodes_per_request": nodes_per_request,
        "requests": len(flat),
        "failures": len(failures),
        "wall_s": wall,
        "rps": len(flat) / wall,
        "p50_ms": percentile(50) * 1000.0,
        "p90_ms": percentile(90) * 1000.0,
        "p99_ms": percentile(99) * 1000.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", type=str, default="http://127.0.0.1:8080", help="server base URL")
    parser.add_argument("--requests", type=int, default=100, help="requests per client thread")
    parser.add_argument("--concurrency", type=int, default=8, help="client threads")
    parser.add_argument("--nodes-per-request", type=int, default=8, help="node ids per /predict")
    parser.add_argument("--seed", type=int, default=0, help="request-stream seed")
    parser.add_argument("--out", type=str, default=None, help="write the summary as JSON here")
    parser.add_argument(
        "--metrics", action="store_true", help="also print the server's /metrics snapshot"
    )
    args = parser.parse_args(argv)

    health = _get_json(f"{args.url}/healthz")
    if health.get("status") != "ok":
        print(f"server unhealthy: {health}", file=sys.stderr)
        return 1
    num_nodes = int(health["nodes"])
    print(f"target: {health.get('model')} over {num_nodes} nodes at {args.url}")

    summary = run_load(
        args.url, args.requests, args.concurrency, args.nodes_per_request, num_nodes, args.seed
    )
    print(json.dumps(summary, indent=2))
    if args.metrics:
        print(json.dumps(_get_json(f"{args.url}/metrics"), indent=2))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2)
        print(f"summary written to {args.out}")
    return 1 if summary["failures"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
