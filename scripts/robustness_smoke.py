#!/usr/bin/env python
"""CI smoke test: adversarial attacks end to end against RDD.

Covers the attack→replay→train→observe path in a few seconds:

1. generate every registered attack on a scaled-down Cora stand-in and
   assert seed-determinism (same seed, same serialized ``DeltaLog``)
   and the JSONL round trip,
2. replay the dice attack through the incremental ``Â`` maintenance
   path and assert the result is bitwise identical to renormalizing a
   from-scratch adjacency built on the flipped edge set — the
   replayed == direct acceptance differential,
3. run a one-cell robustness sweep (RDD on the dice-poisoned graph)
   with observability enabled and assert the event log carries the
   ``attack_applied`` record and per-epoch ``rdd_epoch`` reliability
   diagnostics (``num_reliable``, ``num_reliable_edges``) measured
   under attack.

Exit status 0 on success; any assertion failure is fatal.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import numpy as np  # noqa: E402

from repro.datasets import cora_like  # noqa: E402
from repro.graph.delta import DeltaLog  # noqa: E402
from repro.graph.graph import build_adjacency  # noqa: E402
from repro.graph.normalize import gcn_normalize  # noqa: E402
from repro.evaluation.common import HarnessConfig  # noqa: E402
from repro.obs.report import read_events  # noqa: E402
from repro.robustness.attacks import ATTACKS, generate_attack  # noqa: E402
from repro.robustness.sweep import run_sweep  # noqa: E402

BUDGET = 0.2


def payload(log: DeltaLog) -> list:
    return [json.dumps(delta.to_json(), sort_keys=True) for delta in log]


def assert_replay_matches_direct(graph, log: DeltaLog) -> None:
    attacked = log.replay(graph)
    assert attacked._normalized is not None, "replay dropped the incremental Â"
    src, dst = graph.edge_list()
    edges = set(zip(src.tolist(), dst.tolist()))
    for delta in log:
        for u, v in delta.removed_edges:
            edges.discard((min(u, v), max(u, v)))
        for u, v in delta.added_edges:
            edges.add((min(u, v), max(u, v)))
    direct = gcn_normalize(
        build_adjacency(graph.num_nodes, np.asarray(sorted(edges)))
    ).astype(attacked._normalized.dtype)
    incremental = attacked._normalized
    assert np.array_equal(incremental.indptr, direct.indptr)
    assert np.array_equal(incremental.indices, direct.indices)
    assert np.array_equal(incremental.data, direct.data)


def main() -> int:
    graph = cora_like(seed=0, scale=0.1)
    graph.normalized_adjacency()  # warm the cache: replay goes incremental

    for name in sorted(ATTACKS):
        one = generate_attack(graph, name, BUDGET, seed=7, batches=2)
        two = generate_attack(graph, name, BUDGET, seed=7, batches=2)
        assert payload(one) == payload(two), f"{name}: same seed, different log"
        with tempfile.TemporaryDirectory() as tmp:
            loaded = DeltaLog.load(one.save(Path(tmp) / "attack.jsonl"))
        assert payload(loaded) == payload(one), f"{name}: JSONL round trip drifted"

    dice_log = generate_attack(graph, "dice", BUDGET, seed=7, batches=2)
    assert_replay_matches_direct(graph, dice_log)

    with tempfile.TemporaryDirectory() as tmp:
        obs_dir = Path(tmp) / "obs"
        report = run_sweep(
            HarnessConfig(
                scale=0.1,
                seeds=(0,),
                num_base_models=2,
                max_epochs=6,
                patience=4,
                obs_dir=obs_dir,
            ),
            attacks=("dice",),
            budgets=(BUDGET,),
            methods=("rdd",),
        )
        events = read_events(obs_dir)
    applied = [
        e for e in events if e.get("kind") == "point" and e.get("name") == "attack_applied"
    ]
    assert applied and applied[0]["attack"] == "dice", "attack_applied event missing"
    assert applied[0]["homophily_after"] < applied[0]["homophily_before"]
    epochs = [
        e for e in events if e.get("kind") == "point" and e.get("name") == "rdd_epoch"
    ]
    assert epochs, "no per-epoch rdd_epoch events recorded under attack"
    for key in ("num_reliable", "num_distill", "num_reliable_edges"):
        assert all(key in e for e in epochs), f"rdd_epoch events missing {key}"

    attacked_row = next(r for r in report.rows if r["attack"] == "dice")
    assert attacked_row["reliable_nodes"] != ""

    print(
        f"robustness smoke OK: {len(ATTACKS)} attacks deterministic + replay "
        f"bitwise-identical to direct Â; sweep recorded {len(epochs)} "
        f"rdd_epoch events and {len(applied)} attack_applied event(s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
