#!/usr/bin/env python
"""Regenerate the golden regression fixtures under ``tests/fixtures/``.

Runs a small, fully seeded RDD fit on the tiny DC-SBM citation stand-in
(``cora_like`` at scale 0.05) with per-epoch history recording enabled,
and freezes the observable trajectory — per-student losses and
validation accuracies, base/ensemble test accuracies, the α-weights, and
the reliable-set sizes — as JSON.

``tests/test_golden_regression.py`` replays the identical configuration
and compares against this file with tight tolerances, so any silent
numerical drift in the trainer, the loss, the reliability pipeline, or
the ensemble turns into a loud test failure.

Run from the repo root after an *intentional* behavior change::

    PYTHONPATH=src python scripts/make_golden_fixtures.py
"""

from __future__ import annotations

import json
import pathlib
import sys

SEED = 0
SCALE = 0.05

FIXTURE = pathlib.Path(__file__).resolve().parents[1] / "tests" / "fixtures" / "golden_rdd_sbm.json"


def golden_config():
    from repro.core.config import RDDConfig

    return RDDConfig(
        num_base_models=3,
        max_epochs=6,
        patience=6,
        hidden=8,
        record_history=True,
    )


def run_golden():
    """The exact run the fixture freezes (shared with the test)."""
    from repro.core.rdd import RDDTrainer
    from repro.datasets.citation import cora_like

    graph = cora_like(seed=SEED, scale=SCALE)
    result = RDDTrainer(golden_config()).fit(graph, seed=SEED)
    return graph, result


def snapshot(graph, result) -> dict:
    return {
        "dataset": {
            "generator": "cora_like",
            "seed": SEED,
            "scale": SCALE,
            "num_nodes": int(graph.num_nodes),
            "num_edges": int(graph.num_edges),
            "num_features": int(graph.num_features),
            "num_classes": int(graph.num_classes),
        },
        "ensemble_test_accuracy": result.ensemble_test_accuracy,
        "ensemble_val_accuracy": result.ensemble_val_accuracy,
        "base_test_accuracies": list(result.base_test_accuracies),
        "ensemble_curve": list(result.ensemble_curve),
        "ensemble_weights": [float(w) for w in result.ensemble_weights],
        "reliability_history": result.reliability_history,
        "students": [
            {
                "train_accuracy": r.train_accuracy,
                "val_accuracy": r.val_accuracy,
                "test_accuracy": r.test_accuracy,
                "epochs_run": r.epochs_run,
                "best_epoch": r.best_epoch,
                "history": r.history,
            }
            for r in result.base_results
        ],
    }


def main() -> int:
    graph, result = run_golden()
    data = snapshot(graph, result)
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")
    print(
        f"  {len(data['students'])} students, "
        f"ensemble test accuracy {data['ensemble_test_accuracy']:.6f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
