#!/usr/bin/env python
"""CI smoke test: streaming deltas end to end under concurrent load.

Covers the train→export→stream→verify path in a few seconds:

1. train a tiny GCN on a scaled-down Cora stand-in and export it,
2. open a streaming :class:`PredictionEngine` with a
   :class:`BackgroundRefresher`,
3. apply a deterministic :class:`DeltaLog` (edge removals, re-adds, a
   node append) while client threads hammer ``predict_many_versioned``,
4. assert no client ever saw a row that does not bitwise match its
   reported version's reference table, and that the final table is
   bitwise identical to a fresh streaming engine built on the fully
   updated graph.

Exit status 0 on success; any assertion is fatal.
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import numpy as np  # noqa: E402
import scipy.sparse as sp  # noqa: E402

from repro.datasets import cora_like  # noqa: E402
from repro.graph import DeltaLog, GraphDelta, apply_delta  # noqa: E402
from repro.models.gcn import GCN  # noqa: E402
from repro.serving import (  # noqa: E402
    BackgroundRefresher,
    ModelSpec,
    PredictionEngine,
    export_model_artifact,
)
from repro.training.trainer import Trainer  # noqa: E402


def make_delta_log(graph) -> DeltaLog:
    """Deterministic removals, re-adds, and one node append."""
    coo = sp.triu(graph.adjacency, k=1).tocoo()
    pairs = list(zip(coo.row.tolist(), coo.col.tolist()))
    features = np.zeros((1, graph.num_features))
    features[0, :5] = 1.0
    if sp.issparse(graph.features):
        features = sp.csr_matrix(features)
    return DeltaLog(
        [
            GraphDelta(removed_edges=[pairs[3], pairs[17]]),
            GraphDelta(added_edges=[pairs[3]]),
            GraphDelta(
                added_edges=[[7, graph.num_nodes]], new_features=features
            ),
            GraphDelta(removed_edges=[pairs[29]], added_edges=[pairs[17]]),
        ]
    )


def main() -> int:
    graph = cora_like(seed=0, scale=0.1)
    model = GCN(graph.num_features, graph.num_classes, np.random.default_rng(0))
    Trainer(max_epochs=20, patience=10).fit(model, graph)

    log = make_delta_log(graph)
    with tempfile.TemporaryDirectory() as tmp:
        path = export_model_artifact(
            Path(tmp) / "gcn.rddart", model, ModelSpec("gcn", {}), graph
        )

        # Per-version references: a fresh streaming engine on each graph.
        references, state = [], graph
        references.append(
            PredictionEngine(path, state, streaming=True).logits_table().copy()
        )
        for delta in log:
            state = apply_delta(state, delta)
            fresh = PredictionEngine(path, state, streaming=True, verify_graph=False)
            references.append(fresh.logits_table().copy())

        engine = PredictionEngine(path, graph, streaming=True)
        engine.logits_table()
        violations = []
        stop = threading.Event()

        def client(worker: int) -> None:
            rng = np.random.default_rng(worker)
            while not stop.is_set():
                nodes = rng.integers(0, graph.num_nodes, size=4)
                rows, version = engine.predict_many_versioned([nodes])
                if not np.array_equal(rows[0], references[version][nodes]):
                    violations.append((worker, version, nodes.tolist()))
                    return

        threads = [
            threading.Thread(target=client, args=(w,), daemon=True) for w in range(3)
        ]
        with BackgroundRefresher(engine, interval_s=0.005):
            for thread in threads:
                thread.start()
            for delta in log:
                engine.apply_delta(delta)
                time.sleep(0.02)
            time.sleep(0.05)
            stop.set()
            for thread in threads:
                thread.join(timeout=10)

        assert not violations, f"unattributable reads: {violations[:5]}"
        assert engine.version == len(log), (engine.version, len(log))
        final = references[-1]
        np.testing.assert_array_equal(
            engine.predict_nodes(np.arange(final.shape[0])), final
        )
        assert engine.graph.num_nodes == graph.num_nodes + 1

    print(
        f"streaming smoke OK: {len(log)} deltas, {len(threads)} clients, "
        f"final table bitwise-identical to a fresh engine "
        f"({final.shape[0]} rows)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
