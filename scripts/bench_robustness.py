#!/usr/bin/env python
"""Run the robustness benchmark and write ``BENCH_robustness.json``.

Thin launcher for :mod:`benchmarks.bench_robustness` (kept under
``scripts/`` next to the other bench entry points)."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.bench_robustness import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
