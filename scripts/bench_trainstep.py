#!/usr/bin/env python
"""Run the train-step benchmark and write ``BENCH_trainstep.json`` at
the repo root.

Usage::

    python scripts/bench_trainstep.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.bench_trainstep import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
