"""Reproduction of "Reliable Data Distillation on Graph Convolutional
Network" (Zhang et al., SIGMOD 2020).

Quick start::

    from repro import cora_like, RDDConfig, train_rdd

    graph = cora_like(seed=0, scale=0.25)
    result = train_rdd(graph, RDDConfig(num_base_models=3))
    print(result.summary())

Package map:

* :mod:`repro.tensor`   — numpy autodiff engine (PyTorch stand-in)
* :mod:`repro.nn`       — layers, optimizers, schedules
* :mod:`repro.graph`    — graph container, normalizations, PageRank
* :mod:`repro.datasets` — calibrated synthetic citation networks
* :mod:`repro.models`   — GCN / ResGCN / DenseGCN / JK-Net / GAT / APPNP / MLP
* :mod:`repro.baselines`— LP, Self/Co-Training, Bagging, BANs, Mean Teacher
* :mod:`repro.core`     — Reliable Data Distillation (the contribution)
* :mod:`repro.training` — trainer loop, metrics, records, seeding
* :mod:`repro.evaluation` — one harness per paper table/figure
* :mod:`repro.serving`  — model artifacts, micro-batched prediction, HTTP API
"""

from repro.core import (
    EnsembleModel,
    RDDConfig,
    RDDResult,
    RDDTrainer,
    edge_reliability,
    node_reliability,
    train_rdd,
)
from repro.datasets import (
    citeseer_like,
    cora_like,
    load_dataset,
    nell_like,
    pubmed_like,
)
from repro.graph import Graph
from repro.models import GCN
from repro.training import Trainer

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Graph",
    "GCN",
    "Trainer",
    "RDDConfig",
    "RDDTrainer",
    "RDDResult",
    "train_rdd",
    "node_reliability",
    "edge_reliability",
    "EnsembleModel",
    "cora_like",
    "citeseer_like",
    "pubmed_like",
    "nell_like",
    "load_dataset",
]
