"""Training observability: spans, per-run event logs, unified metrics.

The subsystem that turns an RDD run from a black box into a timeline::

    import repro.obs as obs

    obs.enable("runs/cora-0")            # or --obs-dir / HarnessConfig.obs_dir
    with obs.span("epoch", epoch=3):
        ...                               # timed on the monotonic clock
    obs.event("rdd_epoch", num_reliable=412, gamma=0.71)

Everything lands in ``<obs_dir>/events.jsonl`` — thread- and
process-aware (forked ``parallel_map`` workers append to the same log) —
and ``repro report <obs_dir>`` renders the end-of-run summary.  The
:class:`MetricRegistry` here also backs the serving stack's metrics
(:class:`repro.serving.metrics.ServingMetrics` subclasses it), and
:func:`prometheus_text` is the one exporter behind both
``GET /metrics?format=prometheus`` and the report CLI.

Disabled (the default) the layer costs one global read per call site.
"""

from repro.obs.metrics import MetricRegistry, WindowHistogram, prometheus_text
from repro.obs.trace import (
    EVENT_LOG_NAME,
    EventRecorder,
    disable,
    enable,
    enabled,
    event,
    recorder,
    span,
)

__all__ = [
    "EVENT_LOG_NAME",
    "EventRecorder",
    "MetricRegistry",
    "WindowHistogram",
    "disable",
    "enable",
    "enabled",
    "event",
    "prometheus_text",
    "recorder",
    "span",
]
