"""Unified metrics: counters, windowed histograms, Prometheus export.

One :class:`MetricRegistry` serves every subsystem that counts things —
the serving stack (request/error/batch totals, latency percentiles), the
training observability layer (span durations, event totals), and the
``repro report`` CLI (which reconstructs a registry from a run's event
log).  Two signal kinds:

* **counters** — monotonically increasing totals.  Open-ended by name so
  every layer can count what it sees without schema changes.
* **histograms** — bounded sliding windows over recent observations
  summarized as count/mean/min/max and p50/p90/p99 percentiles.  A ring
  buffer keeps memory constant under unbounded traffic; the percentiles
  describe the recent window, which is what an operator watching a live
  run wants anyway.

Everything is guarded by one lock — observations are a few appends, so
contention is negligible next to a forward pass.  ``snapshot()`` returns
plain JSON-ready dicts (what ``GET /metrics`` serves) and
:func:`prometheus_text` renders any snapshot in the Prometheus text
exposition format (what ``GET /metrics?format=prometheus`` and
``repro report`` serve).
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Optional

import numpy as np


class WindowHistogram:
    """Fixed-capacity ring buffer with percentile summaries.

    Not internally locked: callers (:class:`MetricRegistry`) must hold
    their own lock across *both* ``add`` and ``summary`` — ``summary``
    reads the ring-buffer list that ``add`` mutates.
    """

    def __init__(self, window: int = 8192):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = window
        self._values: List[float] = []
        self._next = 0
        self._count = 0  # total observations ever, not just the window

    def add(self, value: float) -> None:
        self._count += 1
        if len(self._values) < self._window:
            self._values.append(float(value))
        else:
            self._values[self._next] = float(value)
            self._next = (self._next + 1) % self._window

    def summary(self) -> dict:
        if not self._values:
            return {"count": 0}
        window = np.asarray(self._values, dtype=np.float64)
        p50, p90, p99 = np.percentile(window, [50.0, 90.0, 99.0])
        return {
            "count": self._count,
            "window": len(self._values),
            "mean": float(window.mean()),
            "min": float(window.min()),
            "max": float(window.max()),
            "p50": float(p50),
            "p90": float(p90),
            "p99": float(p99),
        }


class MetricRegistry:
    """Thread-safe counters + histograms for one process."""

    def __init__(self, window: int = 8192):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._window = window
        self._histograms: Dict[str, WindowHistogram] = {}

    # -- counters ------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # -- histograms ----------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = WindowHistogram(self._window)
            histogram.add(value)

    # -- export --------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view of every counter and histogram summary."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "histograms": {
                    name: histogram.summary()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def percentile(self, name: str, key: str = "p50") -> Optional[float]:
        """One percentile of one histogram, or ``None`` before any data.

        The summary is taken *under the lock*: a concurrent ``observe``
        mutates the histogram's ring-buffer list, and summarizing it
        unlocked races that mutation (numpy materializes the list while
        it grows).
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                return None
            summary = histogram.summary()
        return summary.get(key)

    def prometheus(self, prefix: str = "repro") -> str:
        """This registry's state in Prometheus text exposition format."""
        return prometheus_text(self.snapshot(), prefix=prefix)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_]")

_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def _metric_name(prefix: str, name: str) -> str:
    sanitized = _INVALID_METRIC_CHARS.sub("_", name)
    full = f"{prefix}_{sanitized}" if prefix else sanitized
    if not re.match(r"[a-zA-Z_]", full):
        full = f"_{full}"
    return full


def prometheus_text(snapshot: dict, prefix: str = "repro") -> str:
    """Render a :meth:`MetricRegistry.snapshot` (or any dict shaped like
    one) in the Prometheus text exposition format.

    Counters become ``counter`` samples; histograms become ``summary``
    metrics with p50/p90/p99 quantile samples plus ``_count`` (total
    observations ever) and ``_sum`` (over the retained window only —
    ring-buffer histograms do not keep the full-history sum).
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {int(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} summary")
        if summary.get("count"):
            for quantile, key in _QUANTILES:
                lines.append(f'{metric}{{quantile="{quantile}"}} {summary[key]:g}')
            lines.append(f"{metric}_sum {summary['mean'] * summary['window']:g}")
        else:
            lines.append(f"{metric}_sum 0")
        lines.append(f"{metric}_count {int(summary.get('count', 0))}")
    return "\n".join(lines) + "\n"
