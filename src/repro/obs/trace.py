"""Span/timer tracing with a structured JSONL event log per run.

The training observability layer answers "where did this run spend its
time, and what did the RDD reliability machinery decide each epoch?"
without a daemon or a dependency: one process-global
:class:`EventRecorder` appends JSON lines to ``<obs_dir>/events.jsonl``.

Three primitives::

    obs.enable(run_dir)                  # idempotent per directory
    with obs.span("epoch", epoch=3) as sp:
        ...work...
        sp.set(loss=0.41)                # attrs attached before exit
    obs.event("rdd_epoch", gamma=0.7, num_reliable=412)

* **spans** time a block on the monotonic clock; they nest (a
  thread-local stack tracks parent/depth) and emit one ``span`` record
  on exit carrying ``dur_s``, ``parent``, ``depth``, an ``ok``/``error``
  status, and any attributes.  Span durations also feed the recorder's
  :class:`~repro.obs.metrics.MetricRegistry` (histogram
  ``span_<name>_s``), so a live process can be scraped mid-run.
* **events** are point-in-time records — the per-epoch RDD reliability
  diagnostics ride on these.
* every record is stamped with wall-clock ``ts``, ``pid``, and thread
  name — the log is **thread- and process-aware**.  Forked workers
  (:func:`repro.training.parallel.parallel_map` pools) inherit the
  enabled recorder; on the first emit in a new process the file is
  reopened in append mode, so worker events land in the parent's log
  (O_APPEND line writes, flushed per record).

**Zero overhead when disabled**: ``span()``/``event()`` read one module
global; disabled they return a shared no-op span (falsy, so callers can
skip computing attribute values) or return immediately.  No file handle,
no allocation beyond the kwargs dict.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import IO, Optional

import numpy as np

from repro.obs.metrics import MetricRegistry

EVENT_LOG_NAME = "events.jsonl"


def _json_default(value):
    """Coerce numpy scalars/arrays so diagnostics never kill a run."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return repr(value)


class EventRecorder:
    """Appends structured events for one run to ``<run_dir>/events.jsonl``."""

    def __init__(self, run_dir):
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.run_dir / EVENT_LOG_NAME
        self.metrics = MetricRegistry()
        self._local = threading.local()
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._file: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")

    # -- span stack (per thread) ---------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- emission ------------------------------------------------------
    def emit(self, kind: str, name: str, fields: dict) -> None:
        record = {
            "ts": time.time(),
            "kind": kind,
            "name": name,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
        }
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=_json_default)
        if os.getpid() != self._pid:
            self._reopen_after_fork()
        with self._lock:
            if self._file is None:  # closed concurrently; drop the event
                return
            self._file.write(line + "\n")
            self._file.flush()

    def _reopen_after_fork(self) -> None:
        """First emit in a forked worker: fresh handle, lock, span stack.

        The inherited buffered handle (and a possibly-held lock) belong
        to the parent; appending through a new O_APPEND handle keeps the
        parent log as the single destination without sharing state.
        """
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._file = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class _Span:
    """Context manager timing one block; emits a ``span`` record on exit."""

    __slots__ = ("_recorder", "name", "attrs", "_started")

    def __init__(self, recorder: EventRecorder, name: str, attrs: dict):
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self._started = 0.0

    def __bool__(self) -> bool:
        return True

    def set(self, **fields) -> "_Span":
        """Attach attributes to the span record emitted at exit."""
        self.attrs.update(fields)
        return self

    def __enter__(self) -> "_Span":
        stack = self._recorder._stack()
        stack.append(self.name)
        self._started = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.monotonic() - self._started
        stack = self._recorder._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        depth = len(stack)
        fields = {
            "dur_s": duration,
            "depth": depth,
            "parent": stack[-1] if stack else None,
            "status": "ok" if exc_type is None else "error",
        }
        if exc_type is not None:
            fields["exception"] = exc_type.__name__
        fields.update(self.attrs)
        self._recorder.metrics.observe(f"span_{self.name}_s", duration)
        self._recorder.emit("span", self.name, fields)
        return False


class _NullSpan:
    """Shared no-op span handed out while observability is disabled.

    Stateless, so one instance is safely reused across threads and
    nesting levels.  Falsy: ``if sp: sp.set(expensive())`` skips the
    attribute computation entirely when disabled.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def set(self, **fields) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_RECORDER: Optional[EventRecorder] = None


def enable(run_dir) -> EventRecorder:
    """Start recording events under ``run_dir`` (idempotent per directory).

    Re-enabling the currently active directory returns the live recorder
    unchanged, so the CLI, ``HarnessConfig.obs_dir``, and library callers
    can all point at the same run without clobbering each other.
    Switching directories closes the old recorder and starts a new log.
    """
    global _RECORDER
    resolved = Path(run_dir)
    if _RECORDER is not None:
        if _RECORDER.run_dir == resolved:
            return _RECORDER
        _RECORDER.close()
    _RECORDER = EventRecorder(resolved)
    _RECORDER.emit("run", "start", {"argv_pid": os.getpid()})
    return _RECORDER


def disable() -> None:
    """Stop recording and close the event log (no-op when disabled)."""
    global _RECORDER
    if _RECORDER is not None:
        _RECORDER.close()
        _RECORDER = None


def enabled() -> bool:
    """Whether an event recorder is currently active."""
    return _RECORDER is not None


def recorder() -> Optional[EventRecorder]:
    """The active :class:`EventRecorder`, or ``None`` when disabled."""
    return _RECORDER


def span(name: str, **attrs):
    """Time a block: ``with obs.span("epoch", epoch=3): ...``.

    Returns a no-op (falsy) span while observability is disabled.
    """
    active = _RECORDER
    if active is None:
        return _NULL_SPAN
    return _Span(active, name, attrs)


def event(name: str, **fields) -> None:
    """Emit one point-in-time record (no-op while disabled)."""
    active = _RECORDER
    if active is not None:
        active.emit("point", name, fields)
