"""End-of-run summaries from a run's JSONL event log.

``repro report <run_dir>`` reads the ``events.jsonl`` written by
:mod:`repro.obs.trace` and renders:

* a **span table** — count / total / mean / max wall time per span name,
  the "where did the run go" view;
* a **reliability table** — per student, the first→last-epoch trajectory
  of the RDD diagnostics (``|V_r|``, ``|V_b|``, reliable edges,
  teacher/student agreement, γ) plus the final-epoch loss components
  ``L1``/``L2``/``Lreg``;
* the run's aggregate metrics in **Prometheus text format**, rendered by
  the same :func:`repro.obs.metrics.prometheus_text` exporter the
  serving stack uses for ``GET /metrics?format=prometheus``.

The log is the source of truth: worker processes append to the same
file, so a report over a parallel run covers every worker's spans.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.obs.metrics import MetricRegistry, prometheus_text
from repro.obs.trace import EVENT_LOG_NAME

#: The per-epoch diagnostics event name emitted by RDDTrainer.
RDD_EPOCH_EVENT = "rdd_epoch"


class ReportError(ReproError):
    """A run directory has no readable event log."""


def read_events(run_dir) -> List[dict]:
    """Parse ``<run_dir>/events.jsonl`` (tolerating a torn final line).

    A run killed mid-write leaves at most one partial trailing line;
    anything unparseable is skipped rather than fatal, so a crashed
    run's log is still reportable.
    """
    path = Path(run_dir)
    if path.is_dir():
        path = path / EVENT_LOG_NAME
    if not path.exists():
        raise ReportError(f"no event log at {path}; run with --obs-dir to record one")
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events


def registry_from_events(events: List[dict]) -> MetricRegistry:
    """Rebuild a :class:`MetricRegistry` from a run's event stream.

    Span durations feed ``span_<name>_s`` histograms and
    ``spans_<name>_total`` counters; point events feed
    ``events_<name>_total`` counters.  This is the same shape a live
    recorder's in-process registry has, so one Prometheus exporter
    serves both.
    """
    registry = MetricRegistry()
    for record in events:
        kind, name = record.get("kind"), record.get("name")
        if kind == "span":
            registry.inc(f"spans_{name}_total")
            registry.observe(f"span_{name}_s", float(record.get("dur_s", 0.0)))
            if record.get("status") == "error":
                registry.inc(f"span_errors_{name}_total")
        elif kind == "point":
            registry.inc(f"events_{name}_total")
    return registry


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _table(title: str, rows: List[Dict[str, object]]) -> str:
    if not rows:
        return f"== {title} ==\n(no data)"
    columns = list(rows[0].keys())
    rendered = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)) for r in rendered
    )
    return f"== {title} ==\n{header}\n{separator}\n{body}"


def span_rows(events: List[dict]) -> List[Dict[str, object]]:
    """Aggregate span records into per-name timing rows."""
    totals: Dict[str, List[float]] = {}
    for record in events:
        if record.get("kind") != "span":
            continue
        totals.setdefault(record["name"], []).append(float(record.get("dur_s", 0.0)))
    rows = []
    for name in sorted(totals, key=lambda n: -sum(totals[n])):
        durations = totals[name]
        rows.append(
            {
                "span": name,
                "count": len(durations),
                "total_s": sum(durations),
                "mean_s": sum(durations) / len(durations),
                "max_s": max(durations),
            }
        )
    return rows


def reliability_rows(events: List[dict]) -> List[Dict[str, object]]:
    """Per-student first→last trajectory of the RDD epoch diagnostics."""
    by_student: Dict[int, List[dict]] = {}
    for record in events:
        if record.get("kind") == "point" and record.get("name") == RDD_EPOCH_EVENT:
            by_student.setdefault(int(record.get("student", 0)), []).append(record)
    rows = []
    for student in sorted(by_student):
        trajectory = sorted(by_student[student], key=lambda r: r.get("epoch", 0))
        first, last = trajectory[0], trajectory[-1]

        def arrow(key):
            return f"{_format_cell(first.get(key))}->{_format_cell(last.get(key))}"

        rows.append(
            {
                "student": student,
                "epochs": len(trajectory),
                "num_reliable": arrow("num_reliable"),
                "num_distill": arrow("num_distill"),
                "reliable_edges": arrow("num_reliable_edges"),
                "agreement": arrow("agreement"),
                "gamma": arrow("gamma"),
                "L1": float(last.get("L1", 0.0)),
                "L2": float(last.get("L2", 0.0)),
                "Lreg": float(last.get("Lreg", 0.0)),
            }
        )
    return rows


def render_report(run_dir, events: Optional[List[dict]] = None) -> str:
    """The full text report for one run directory."""
    if events is None:
        events = read_events(run_dir)
    points = sum(1 for record in events if record.get("kind") == "point")
    spans = sum(1 for record in events if record.get("kind") == "span")
    pids = sorted({record.get("pid") for record in events if "pid" in record})
    header = (
        f"run: {run_dir}\n"
        f"events: {len(events)} ({spans} spans, {points} point events) "
        f"from {len(pids)} process(es)"
    )
    sections = [header, _table("spans", span_rows(events))]
    reliability = reliability_rows(events)
    if reliability:
        sections.append(_table("RDD reliability diagnostics (first->last epoch)", reliability))
    else:
        sections.append("== RDD reliability diagnostics ==\n(no rdd_epoch events in this run)")
    sections.append(
        "== metrics (prometheus) ==\n" + prometheus_text(registry_from_events(events).snapshot())
    )
    return "\n\n".join(sections)
