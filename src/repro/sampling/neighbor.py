"""Vectorized CSR neighbor sampling.

The kernel at the bottom of every sampled path — training block
construction, serving's inductive context expansion, and the legacy
:func:`repro.graph.sampling.sample_neighbors` API — is
:func:`sample_adjacent`: without-replacement fanout sampling over a CSR
adjacency with **no Python-level loop over seed nodes**.  The per-node
work is expressed as batched index arithmetic over ``indptr``/``indices``
(``np.repeat``/``cumsum`` offset expansion, one key-sort for the rows
that exceed the fanout), so a 10k-seed batch costs a handful of ndarray
passes instead of 10k Python iterations.

Sampling semantics
------------------
* a node with ``degree <= fanout`` keeps **all** its neighbors — and,
  crucially, consumes **no randomness**, so full-fanout sampling is a
  deterministic function of the graph alone;
* a node with ``degree > fanout`` gets a uniform (or weighted) sample of
  exactly ``fanout`` distinct neighbors, drawn via random keys: each
  candidate edge receives an independent key and the ``fanout`` smallest
  keys per row win.  With exponential keys scaled by ``1/w`` this is
  exactly weighted sampling without replacement (the A-ExpJ scheme), and
  uniform keys recover the unweighted case.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError


def check_node_ids(nodes, num_nodes: int, name: str = "nodes") -> np.ndarray:
    """Validate and canonicalize an array of node ids to int64.

    Accepts any integer dtype (or a Python int sequence); rejects
    floating-point inputs and out-of-range ids with a :class:`GraphError`
    instead of letting a raw ``IndexError`` (or a silently wrapped
    negative index) escape from the CSR arithmetic.
    """
    nodes = np.asarray(nodes)
    if nodes.dtype == object or not np.issubdtype(nodes.dtype, np.integer):
        try:
            converted = nodes.astype(np.int64)
        except (TypeError, ValueError):
            raise GraphError(f"{name} must be integers, got dtype {nodes.dtype}") from None
        if not np.array_equal(converted, nodes):
            raise GraphError(f"{name} must be integers, got dtype {nodes.dtype}")
        nodes = converted
    else:
        nodes = nodes.astype(np.int64, copy=False)
    if nodes.size and (nodes.min() < 0 or nodes.max() >= num_nodes):
        raise GraphError(
            f"{name} ids must be in [0, {num_nodes}), got range "
            f"[{nodes.min()}, {nodes.max()}]"
        )
    return nodes


def _expand_positions(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat positions ``[starts[i], starts[i]+counts[i])`` for every row.

    The standard loop-free ragged expansion: a global ``arange`` minus
    each row's cumulative offset plus its start.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    row_offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]])
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(row_offsets, counts)
        + np.repeat(starts, counts)
    )


def sample_adjacent(
    indptr: np.ndarray,
    indices: np.ndarray,
    nodes: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
    weights: Optional[np.ndarray] = None,
    isolated_self_edges: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample up to ``fanout`` distinct neighbors for each node, vectorized.

    Parameters
    ----------
    indptr / indices:
        CSR structure of the (symmetric) adjacency.
    nodes:
        Seed node ids (int64, already validated).
    fanout:
        Maximum neighbors kept per node (>= 1).
    weights:
        Optional per-*global-node* positive sampling weights; rows whose
        degree exceeds the fanout draw neighbors with probability
        proportional to their weight (without replacement).  ``None``
        samples uniformly.
    isolated_self_edges:
        When True, zero-degree nodes contribute a ``node -> node`` self
        edge so every seed receives at least one message (the historical
        :func:`repro.graph.sampling.sample_neighbors` contract).

    Returns
    -------
    (src, dst, counts):
        Sampled directed edges ``neighbor -> node``, grouped by seed in
        ``nodes`` order, plus the per-seed count of *sampled* neighbors
        (self edges excluded — an isolated node reports count 0 even
        though it emits a self edge).
    """
    if fanout < 1:
        raise GraphError(f"fanout must be >= 1, got {fanout}")
    starts = indptr[nodes]
    degrees = indptr[nodes + 1] - starts
    take = np.minimum(degrees, fanout)

    out_counts = take
    if isolated_self_edges:
        out_counts = np.where(degrees == 0, 1, take)
    out_total = int(out_counts.sum())
    src = np.empty(out_total, dtype=np.int64)
    out_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(out_counts)[:-1]]
    )

    full = degrees <= fanout
    if isolated_self_edges:
        isolated = degrees == 0
        if isolated.any():
            src[out_offsets[isolated]] = nodes[isolated]
        full = full & ~isolated

    if full.any():
        # Under-fanout rows copy their whole neighbor list — no RNG.
        positions = _expand_positions(starts[full], degrees[full])
        slots = _expand_positions(out_offsets[full], degrees[full])
        src[slots] = indices[positions]

    over = degrees > fanout
    if over.any():
        o_starts = starts[over]
        o_degrees = degrees[over]
        candidates = indices[_expand_positions(o_starts, o_degrees)]
        o_rows = np.repeat(np.arange(int(over.sum()), dtype=np.int64), o_degrees)
        if weights is None:
            keys = rng.random(len(candidates))
        else:
            # Exponential keys scaled by 1/w: taking the smallest keys
            # per row is weighted sampling without replacement.  Map the
            # unbounded keys monotonically into [0, 1) so the composite
            # sort below stays row-grouped.
            raw = rng.exponential(size=len(candidates)) / weights[candidates]
            keys = raw / (raw + 1.0)
        # Single composite-key argsort (row id + key-in-[0,1)) orders by
        # row then key — ~8x faster than the equivalent np.lexsort.
        order = np.argsort(o_rows + keys)
        o_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(o_degrees)[:-1]]
        )
        ranks = np.arange(len(candidates), dtype=np.int64) - np.repeat(o_offsets, o_degrees)
        winners = candidates[order[ranks < fanout]]
        slots = _expand_positions(out_offsets[over], np.full(int(over.sum()), fanout, dtype=np.int64))
        src[slots] = winners

    dst = np.repeat(nodes, out_counts)
    return src, dst, take


class NeighborSampler:
    """Reusable fanout sampler bound to one graph's CSR adjacency.

    Caches the CSR structure arrays (and, for block building, the
    self-loop-augmented degree vector) so repeated per-batch sampling
    touches no scipy container machinery.  Deterministic: the instance
    owns a seeded :class:`numpy.random.Generator`, and full-fanout calls
    never consume randomness.

    Parameters
    ----------
    adjacency:
        Symmetric scipy sparse adjacency (zero diagonal).
    seed:
        Seed for the sampling stream (ignored when ``rng`` is given).
    rng:
        Explicit generator to draw from instead of a fresh seeded one.
    weights:
        Optional per-node positive sampling weights (see
        :meth:`set_weights`).
    """

    def __init__(
        self,
        adjacency: sp.spmatrix,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
        weights: Optional[np.ndarray] = None,
    ):
        csr = adjacency.tocsr()
        self.num_nodes = csr.shape[0]
        self.indptr = csr.indptr.astype(np.int64, copy=False)
        self.indices = csr.indices.astype(np.int64, copy=False)
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self._weights: Optional[np.ndarray] = None
        if weights is not None:
            self.set_weights(weights)

    def set_weights(self, weights: Optional[np.ndarray]) -> None:
        """Install (or clear, with ``None``) per-node sampling weights.

        RDD's reliability-prioritized sampling updates these every epoch:
        reliable nodes get a larger weight, so over-fanout rows keep them
        preferentially.
        """
        if weights is None:
            self._weights = None
            return
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.num_nodes,):
            raise GraphError(
                f"weights must have shape ({self.num_nodes},), got {weights.shape}"
            )
        if weights.size and weights.min() <= 0.0:
            raise GraphError("sampling weights must be strictly positive")
        self._weights = weights

    def sample(
        self,
        nodes: np.ndarray,
        fanout: int,
        isolated_self_edges: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized fanout sample; see :func:`sample_adjacent`."""
        nodes = check_node_ids(nodes, self.num_nodes)
        return sample_adjacent(
            self.indptr,
            self.indices,
            nodes,
            fanout,
            self.rng,
            weights=self._weights,
            isolated_self_edges=isolated_self_edges,
        )


def layerwise_neighborhood(
    adjacency: sp.spmatrix,
    seeds: np.ndarray,
    fanout: int,
    num_hops: int,
    rng: np.random.Generator,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Layer-wise sampled k-hop context of ``seeds`` (sorted global ids).

    Expands hop by hop: each frontier node keeps at most ``fanout``
    neighbors, newly-reached nodes form the next frontier, and the union
    of everything reached is returned.  This is the shared machinery
    behind the serving engine's inductive query subgraphs and any other
    consumer that needs a bounded receptive field rather than per-layer
    blocks.  Deterministic for a given ``rng`` state.
    """
    sampler = NeighborSampler(adjacency, rng=rng, weights=weights)
    context = check_node_ids(np.unique(np.asarray(seeds)), sampler.num_nodes, "seeds")
    frontier = context
    for _ in range(num_hops):
        if frontier.size == 0:
            break
        src, _, _ = sampler.sample(frontier, fanout)
        reached = np.unique(src)
        new = reached[np.isin(reached, context, assume_unique=True, invert=True)]
        if new.size == 0:
            break
        context = np.union1d(context, new)
        frontier = new
    return context
