"""Seed-node batching for mini-batch training.

An :class:`ItemSampler` owns a label-split index (typically
``graph.train_index``) and yields shuffled batches of seed nodes each
epoch.  The shuffle can be *reliability-weighted*: given positive
per-node weights, each item draws an independent exponential key scaled
by ``1/w`` and batches are formed in ascending key order — a weighted
shuffle without replacement, so high-weight (reliable) seeds front-load
the epoch while every seed still appears exactly once.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.errors import GraphError


class ItemSampler:
    """Shuffled (optionally weighted) seed batches over a node index.

    Parameters
    ----------
    index:
        Node ids to batch over (e.g. the training split).  Deduplicated
        order is **not** imposed; the caller's index order is the
        identity permutation.
    batch_size:
        Seeds per batch; the final batch of an epoch may be smaller
        (never dropped — every seed is visited exactly once per epoch).
    seed / rng:
        Shuffle stream, independent of neighbor-sampling randomness.
    """

    def __init__(
        self,
        index: np.ndarray,
        batch_size: int,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        if batch_size < 1:
            raise GraphError(f"batch_size must be >= 1, got {batch_size}")
        self.index = np.asarray(index, dtype=np.int64)
        if self.index.ndim != 1 or self.index.size == 0:
            raise GraphError("ItemSampler needs a non-empty 1-D node index")
        self.batch_size = int(batch_size)
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def __len__(self) -> int:
        return -(-len(self.index) // self.batch_size)

    def epoch(self, weights: Optional[np.ndarray] = None) -> List[np.ndarray]:
        """One epoch's batches: a shuffled partition of ``index``.

        ``weights`` (aligned with ``index``, strictly positive) biases
        the shuffle so heavier seeds land in earlier batches; ``None``
        shuffles uniformly.
        """
        if weights is None:
            shuffled = self.rng.permutation(self.index)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != self.index.shape:
                raise GraphError(
                    f"weights must align with index {self.index.shape}, got {weights.shape}"
                )
            if weights.min() <= 0.0:
                raise GraphError("seed weights must be strictly positive")
            # Exponential keys scaled by 1/w: ascending-key order is a
            # weighted shuffle without replacement.
            keys = self.rng.exponential(size=len(self.index)) / weights
            shuffled = self.index[np.argsort(keys, kind="stable")]
        return [
            shuffled[i : i + self.batch_size]
            for i in range(0, len(shuffled), self.batch_size)
        ]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.epoch())
