"""Per-batch normalized Â blocks for layer-wise sampled training.

A :class:`BlockBuilder` turns a batch of seed nodes into a chain of
:class:`Block` objects, one per GCN layer, each carrying a *rectangular*
normalized adjacency slice ``Â_block`` of shape
``(len(output_nodes), len(input_nodes))`` in local (block-relative)
indices.  The forward pass then runs ``h_out = Â_block @ h_in @ W`` layer
by layer — the same contract as full-batch GCN, restricted to the
sampled receptive field.

Value semantics (the full-fanout parity contract)
-------------------------------------------------
Entries mirror :func:`repro.graph.normalize.gcn_normalize` exactly:

* self loop of output node ``v``:      ``inv_sqrt[v] * inv_sqrt[v]``
* sampled neighbor edge ``u -> v``:    ``(inv_sqrt[u] * inv_sqrt[v]) * (deg_v / s_v)``

where ``inv_sqrt = 1 / sqrt(degree + 1)`` over the **global** graph and
``deg_v / s_v`` is the GraphSAGE-style estimator rescale (full neighbor
count over sampled count), restricted to the block.  When the fanout
covers every neighbor the rescale is exactly ``1.0`` — an exact float
multiplication — so each block row is **bitwise equal** to the
corresponding row of the global ``gcn_normalize`` output under
renumbering.  That identity is what makes the differential tests
(full-fanout sampled training == full-batch training) meaningful.

Memory
------
The three CSR arrays of every block (``data``/``indices``/``indptr``)
are leased from a grow-only scratch pool owned by the builder — the same
idiom as PR 3's gradient-buffer arena — so steady-state batch
construction allocates nothing proportional to the block size.  The
flip side of the lease: **blocks are valid only until the next**
``build()`` **call on the same builder.**
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError
from repro.sampling.neighbor import NeighborSampler, check_node_ids


@dataclass
class Block:
    """One layer's sampled computation block.

    ``output_nodes`` is always a prefix of ``input_nodes`` (every output
    node feeds itself through its self loop), and ``adjacency`` is the
    normalized rectangular slice mapping input activations to output
    activations: local row ``i`` aggregates for global node
    ``output_nodes[i]``, local column ``j`` reads global node
    ``input_nodes[j]``.
    """

    input_nodes: np.ndarray
    output_nodes: np.ndarray
    adjacency: sp.csr_matrix


@dataclass
class MiniBatch:
    """A batch of seeds plus its layer blocks, input layer first.

    ``blocks[0].input_nodes`` are the nodes whose raw features enter the
    network; ``blocks[-1].output_nodes`` equal ``seeds`` (sorted,
    deduplicated).
    """

    seeds: np.ndarray
    blocks: List[Block]

    @property
    def input_nodes(self) -> np.ndarray:
        return self.blocks[0].input_nodes


class _ScratchPool:
    """Grow-only keyed buffer pool (arena idiom, sans gradient machinery).

    ``take`` returns a view of a persistent buffer, growing it only when
    a batch needs more room than any previous one.  Lease discipline is
    the caller's job: views are valid until the next ``take`` with the
    same key.
    """

    def __init__(self):
        self._buffers: Dict[object, np.ndarray] = {}

    def take(self, key: object, size: int, dtype) -> np.ndarray:
        buf = self._buffers.get(key)
        if buf is None or buf.size < size or buf.dtype != np.dtype(dtype):
            buf = np.empty(size, dtype=dtype)
            self._buffers[key] = buf
        return buf[:size]


def _raw_csr(data: np.ndarray, indices: np.ndarray, indptr: np.ndarray,
             shape: Tuple[int, int]) -> sp.csr_matrix:
    # The arrays are constructed sorted and in-range, so re-validating
    # them in __init__ is pure overhead on the per-batch hot path; build
    # the container directly around them (same idiom as the fused
    # Dropout path in nn/layers.py).
    out = sp.csr_matrix.__new__(sp.csr_matrix)
    out.data = data
    out.indices = indices
    out.indptr = indptr
    out._shape = shape
    return out


def _local_ids(input_nodes: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Positions of ``queries`` within ``input_nodes`` (vectorized).

    ``input_nodes`` is unique but *not* sorted (outputs occupy the
    prefix), so map through its argsort instead of a Python dict.
    """
    order = np.argsort(input_nodes, kind="stable")
    return order[np.searchsorted(input_nodes[order], queries)]


class BlockBuilder:
    """Builds per-batch normalized Â blocks by layer-wise fanout sampling.

    Parameters
    ----------
    adjacency:
        Global symmetric adjacency (unweighted, zero diagonal) — the
        same matrix :func:`gcn_normalize` consumes.
    fanouts:
        Per-layer fanouts ordered from the *output* layer inward
        (``fanouts[0]`` samples the last layer's neighbors), matching
        the :func:`repro.graph.sampling.build_blocks` convention.
    seed / rng:
        Sampling stream; full-fanout builds consume no randomness.
    weights:
        Optional per-node neighbor-selection weights (RDD reliability
        prioritization); see :meth:`NeighborSampler.set_weights`.
    """

    def __init__(
        self,
        adjacency: sp.spmatrix,
        fanouts: Sequence[int],
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
        weights: Optional[np.ndarray] = None,
    ):
        fanouts = tuple(int(f) for f in fanouts)
        if len(fanouts) == 0:
            raise GraphError("need at least one fanout")
        if any(f < 1 for f in fanouts):
            raise GraphError(f"fanouts must all be >= 1, got {fanouts}")
        self.fanouts = fanouts
        self.sampler = NeighborSampler(adjacency, seed=seed, rng=rng, weights=weights)
        # Global D̂^{-1/2} with d̂ = degree + 1, computed with the same
        # float expression as gcn_normalize so block entries can be
        # bitwise equal to the global Â at full fanout.  Row sums equal
        # structural degrees because repo adjacencies are unweighted.
        self.degrees = np.diff(self.sampler.indptr)
        self.inv_sqrt = 1.0 / np.sqrt(self.degrees + 1.0)
        self._pool = _ScratchPool()

    def set_weights(self, weights: Optional[np.ndarray]) -> None:
        self.sampler.set_weights(weights)

    def build(self, seeds: np.ndarray) -> MiniBatch:
        """Sample blocks for ``seeds``; valid until the next ``build``."""
        seeds = check_node_ids(seeds, self.sampler.num_nodes, "seeds")
        current = np.unique(seeds)
        blocks: List[Block] = []
        for layer, fanout in enumerate(self.fanouts):
            blocks.append(self._build_layer(layer, current, fanout))
            current = blocks[-1].input_nodes
        blocks.reverse()  # input layer first
        return MiniBatch(seeds=blocks[-1].output_nodes, blocks=blocks)

    def _build_layer(self, layer: int, current: np.ndarray, fanout: int) -> Block:
        src, _, counts = self.sampler.sample(current, fanout)
        num_out = len(current)

        # Input frontier: outputs first, then newly reached sources.
        new = np.unique(src)
        new = new[np.isin(new, current, invert=True)]
        input_nodes = np.concatenate([current, new])

        # Estimator rescale deg/s per output row; exactly 1.0 when the
        # fanout covered every neighbor, so full-fanout entries reproduce
        # the global Â bitwise.
        deg = self.degrees[current].astype(np.float64)
        rescale = np.divide(deg, counts, out=np.zeros(num_out), where=counts > 0)

        # Flat COO triplets: one self loop per output row + sampled edges.
        num_edges = len(src)
        total = num_out + num_edges
        rows = np.concatenate(
            [np.arange(num_out, dtype=np.int64),
             np.repeat(np.arange(num_out, dtype=np.int64), counts)]
        )
        cols = np.concatenate(
            [np.arange(num_out, dtype=np.int64), _local_ids(input_nodes, src)]
        )
        inv_cur = self.inv_sqrt[current]
        vals = np.concatenate(
            [inv_cur * inv_cur,
             (self.inv_sqrt[src] * np.repeat(inv_cur, counts)) * np.repeat(rescale, counts)]
        )

        # Canonical CSR (row-major, sorted columns) into leased buffers.
        order = np.lexsort((cols, rows))
        data = self._pool.take((layer, "data"), total, np.float64)
        indices = self._pool.take((layer, "indices"), total, np.int64)
        indptr = self._pool.take((layer, "indptr"), num_out + 1, np.int64)
        np.take(vals, order, out=data)
        np.take(cols, order, out=indices)
        indptr[0] = 0
        np.cumsum(counts + 1, out=indptr[1:])
        adjacency = _raw_csr(data, indices, indptr, (num_out, len(input_nodes)))
        return Block(input_nodes=input_nodes, output_nodes=current, adjacency=adjacency)
