"""Shared neighbor-sampling subsystem.

One vectorized CSR sampling kernel (:mod:`repro.sampling.neighbor`)
feeds every sampled code path: mini-batch training blocks
(:mod:`repro.sampling.blocks`), seed batching
(:mod:`repro.sampling.items`), the legacy
:func:`repro.graph.sampling.sample_neighbors` API, and the serving
engine's inductive context expansion
(:func:`~repro.sampling.neighbor.layerwise_neighborhood`).
"""

from repro.sampling.blocks import Block, BlockBuilder, MiniBatch
from repro.sampling.items import ItemSampler
from repro.sampling.neighbor import (
    NeighborSampler,
    check_node_ids,
    layerwise_neighborhood,
    sample_adjacent,
)

__all__ = [
    "Block",
    "BlockBuilder",
    "MiniBatch",
    "ItemSampler",
    "NeighborSampler",
    "check_node_ids",
    "layerwise_neighborhood",
    "sample_adjacent",
]
