"""Stdlib HTTP front end for the prediction engine or replica tier.

A :class:`PredictionServer` wires the pieces of the serving subsystem
together: a compute backend — either a single in-process
:class:`~repro.serving.engine.PredictionEngine` (optionally behind a
:class:`~repro.serving.batching.MicroBatcher`) or a multi-process
:class:`~repro.serving.frontend.ReplicaFrontend` — plus a
:class:`~repro.serving.metrics.ServingMetrics` sink.  The API is JSON
over ``http.server.ThreadingHTTPServer`` with keep-alive (HTTP/1.1;
every response carries ``Content-Length``) and these routes:

``POST /predict``
    ``{"nodes": [0, 5, 9]}`` → transductive logits/labels for known
    nodes, or ``{"features": [...], "neighbors": [3, 4]}`` → an
    inductive prediction for one unseen node.  ``"return_probs": true``
    adds softmax probabilities.
``POST /admin/reload``
    ``{"artifact": "/path/to/v2.rddart"}`` → rolling zero-downtime
    artifact swap (replica serving only).
``GET /healthz``
    Liveness + model identity (used by load balancers and CI smoke).
``GET /metrics``
    The metrics snapshot: request/error/batch/shed counters plus
    latency and batch-size percentile summaries.

Failure modes are typed, bounded, and observable:

* client errors (bad JSON, unknown ids, wrong shapes) → 400;
* **overload** — the bounded admission queue is full — → 429 with a
  ``Retry-After`` header (and the ``http_429`` counter), so saturation
  sheds excess load instead of queueing without bound;
* a request exceeding ``request_timeout_s`` (e.g. a wedged worker) →
  503 ``{"error": "timed out"}`` and the handler thread is released —
  no request can hang a thread forever;
* a client that disconnects mid-write is counted
  (``http_disconnects_total``) and the thread stays clean, never a
  traceback;
* other server-side failures — including injected ``serving:request``
  faults — → 500, and never take the batching loop down with them.
"""

from __future__ import annotations

import json
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.errors import ReproError
from repro.models.base import softmax_rows
from repro.serving.batching import MicroBatcher, Overloaded
from repro.serving.engine import PredictionEngine, ServingError
from repro.serving.frontend import ReplicaFrontend
from repro.serving.metrics import ServingMetrics, prometheus_text


class PredictionServer:
    """An HTTP prediction service around one engine or replica tier.

    Parameters
    ----------
    engine:
        A loaded :class:`PredictionEngine` for single-process serving.
        Exactly one of ``engine`` and ``frontend`` must be given.
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    frontend:
        A :class:`ReplicaFrontend` for multi-process serving.  The
        server adopts its metrics registry (one ``/metrics`` view) and
        closes it on :meth:`close`.
    batching:
        Route transductive requests through a :class:`MicroBatcher`
        (engine mode only — the frontend does its own IPC batching);
        when off, handler threads call the engine on a small compute
        pool so timeouts still apply.
    max_batch_size / max_wait_s / max_queue:
        Micro-batching and admission-control knobs, forwarded to the
        batcher.
    request_timeout_s:
        Deadline for any single prediction; expiry returns 503 and
        frees the handler thread.
    metrics:
        Metrics sink; defaults to the frontend's registry (frontend
        mode) or a fresh one.
    """

    def __init__(
        self,
        engine: Optional[PredictionEngine] = None,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        frontend: Optional[ReplicaFrontend] = None,
        batching: bool = True,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        max_queue: int = 1024,
        request_timeout_s: float = 30.0,
        metrics: Optional[ServingMetrics] = None,
    ):
        if (engine is None) == (frontend is None):
            raise ReproError("pass exactly one of engine= and frontend=")
        if request_timeout_s <= 0:
            raise ReproError(f"request_timeout_s must be > 0, got {request_timeout_s}")
        self.engine = engine
        self.frontend = frontend
        self.request_timeout_s = float(request_timeout_s)
        if metrics is not None:
            self.metrics = metrics
        elif frontend is not None:
            self.metrics = frontend.metrics
        else:
            self.metrics = ServingMetrics()
        self.batcher: Optional[MicroBatcher] = None
        self._compute: Optional[ThreadPoolExecutor] = None
        if engine is not None:
            if batching:
                self.batcher = MicroBatcher(
                    engine.predict_many,
                    max_batch_size=max_batch_size,
                    max_wait_s=max_wait_s,
                    max_queue=max_queue,
                    metrics=self.metrics,
                )
            # Direct engine calls (inductive, and transductive with
            # batching off) run on this pool so the handler can abandon
            # them at the deadline instead of blocking forever.
            self._compute = ThreadPoolExecutor(
                max_workers=4, thread_name_prefix="serving-compute"
            )
        handler = _make_handler(self)
        self.httpd = _Server((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> "PredictionServer":
        """Serve in a background thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="prediction-server", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self.batcher is not None:
            self.batcher.close()
        if self._compute is not None:
            self._compute.shutdown(wait=False, cancel_futures=True)
        if self.frontend is not None:
            self.frontend.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "PredictionServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Request handling (called from handler threads)
    # ------------------------------------------------------------------
    def handle_predict(self, body: dict) -> dict:
        if not isinstance(body, dict):
            raise ServingError("request body must be a JSON object")
        if "nodes" in body:
            return self._predict_nodes(body)
        if "features" in body:
            return self._predict_inductive(body)
        raise ServingError('request must contain "nodes" or "features"')

    def _predict_nodes(self, body: dict) -> dict:
        nodes = body["nodes"]
        if isinstance(nodes, int):
            nodes = [nodes]
        timeout = self.request_timeout_s
        if self.frontend is not None:
            logits = self.frontend.predict_nodes(nodes, timeout=timeout)
        elif self.batcher is not None:
            logits = self.batcher.predict(nodes, timeout=timeout)
        else:
            self.metrics.inc("requests_total")
            logits = self._compute.submit(self.engine.predict_nodes, nodes).result(
                timeout=timeout
            )
        response = {
            "nodes": [int(n) for n in nodes],
            "labels": logits.argmax(axis=1).tolist(),
        }
        if body.get("return_probs"):
            response["probs"] = softmax_rows(logits).tolist()
        if body.get("return_logits"):
            response["logits"] = logits.tolist()
        return response

    def _predict_inductive(self, body: dict) -> dict:
        self.metrics.inc("inductive_requests_total")
        neighbors = body.get("neighbors")
        if neighbors is None:
            raise ServingError('inductive requests need "neighbors" (known node ids)')
        timeout = self.request_timeout_s
        if self.frontend is not None:
            # The frontend's submit() counts requests_total itself.
            logits = self.frontend.predict_inductive(
                body["features"], neighbors, timeout=timeout
            )
        else:
            self.metrics.inc("requests_total")
            logits = self._compute.submit(
                self.engine.predict_inductive, body["features"], neighbors
            ).result(timeout=timeout)
        response = {"label": int(np.argmax(logits))}
        if body.get("return_probs"):
            response["probs"] = softmax_rows(logits[None, :])[0].tolist()
        if body.get("return_logits"):
            response["logits"] = logits.tolist()
        return response

    def handle_reload(self, body: dict) -> dict:
        """``POST /admin/reload``: zero-downtime artifact swap."""
        if not isinstance(body, dict):
            raise ServingError("request body must be a JSON object")
        if self.frontend is None:
            raise ServingError("rolling reload requires replica serving (--replicas)")
        path = body.get("artifact")
        if not path:
            raise ServingError('reload needs "artifact" (path to the new .rddart)')
        version = self.frontend.reload(path)
        return {"status": "reloaded", "artifact_version": version}

    def health(self) -> dict:
        backend = self.frontend if self.frontend is not None else self.engine
        info = {
            "status": "ok",
            "model": backend.model_kind,
            "nodes": backend.num_nodes,
            "batching": self.batcher is not None,
        }
        if self.frontend is not None:
            info["replicas"] = self.frontend.replicas
            info["artifact_version"] = self.frontend.artifact_version
        return info


class _Server(ThreadingHTTPServer):
    # TCPServer's default listen backlog is 5 — at open-loop arrival
    # rates (hundreds of fresh connections/s) the accept queue overflows
    # and the kernel refuses connections before admission control ever
    # sees them.  Overload policy belongs to the bounded request queue
    # (429), not to the TCP layer.
    request_queue_size = 128


def _make_handler(server: PredictionServer):
    """A handler class bound to one :class:`PredictionServer`."""

    class Handler(BaseHTTPRequestHandler):
        # Keep-alive: one TCP connection serves many requests.  Safe
        # because every response sets Content-Length explicitly.
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # request logging would swamp test output; metrics cover it

        # -- client-disconnect containment -----------------------------
        def handle_one_request(self) -> None:
            # Loadgen clients time out and close mid-response; the write
            # (or the keep-alive flush) then raises.  That is the
            # client's failure, not ours: count it, drop the connection,
            # keep the handler thread clean.
            try:
                super().handle_one_request()
            except (BrokenPipeError, ConnectionResetError):
                server.metrics.inc("http_disconnects_total")
                self.close_connection = True

        # -- helpers ---------------------------------------------------
        def _send_blob(
            self, status: int, blob: bytes, content_type: str, headers: Optional[dict]
        ) -> None:
            try:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(blob)))
                for name, value in (headers or {}).items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(blob)
            except (BrokenPipeError, ConnectionResetError):
                server.metrics.inc("http_disconnects_total")
                self.close_connection = True
                return
            server.metrics.inc(f"http_{status}")

        def _send_json(
            self, status: int, payload: dict, headers: Optional[dict] = None
        ) -> None:
            blob = json.dumps(payload).encode("utf-8")
            self._send_blob(status, blob, "application/json", headers)

        def _send_text(
            self, status: int, text: str, content_type: str
        ) -> None:
            self._send_blob(status, text.encode("utf-8"), content_type, None)

        # -- routes ----------------------------------------------------
        def do_GET(self) -> None:
            parsed = urlparse(self.path)
            if parsed.path == "/healthz":
                self._send_json(200, server.health())
            elif parsed.path == "/metrics":
                # JSON snapshot by default (the original contract);
                # ?format=prometheus serves the text exposition format
                # via the shared repro.obs.metrics exporter.
                formats = parse_qs(parsed.query).get("format", [])
                if formats and formats[-1] == "prometheus":
                    self._send_text(
                        200,
                        prometheus_text(server.metrics.snapshot()),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                else:
                    self._send_json(200, server.metrics.snapshot())
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})

        def do_POST(self) -> None:
            if self.path == "/predict":
                route = server.handle_predict
            elif self.path == "/admin/reload":
                route = server.handle_reload
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                body = json.loads(self.rfile.read(length) or b"")
            except (ValueError, json.JSONDecodeError) as error:
                self._send_json(400, {"error": f"invalid JSON body: {error}"})
                return
            try:
                response = route(body)
            except Overloaded as error:
                # Admission control: the queue is full.  Shed fast with
                # a retry hint — graceful-degradation beats collapse.
                self._send_json(
                    429,
                    {"error": str(error)},
                    headers={"Retry-After": str(max(1, math.ceil(error.retry_after_s)))},
                )
            except TimeoutError:
                # The deadline passed (wedged worker, overlong queue
                # wait).  The handler thread is released; the stale
                # result, if it ever lands, is discarded with its future.
                server.metrics.inc("http_timeouts_total")
                self._send_json(503, {"error": "timed out"})
            except (ServingError, KeyError, TypeError) as error:
                server.metrics.inc("http_client_errors_total")
                self._send_json(400, {"error": str(error)})
            except ReproError as error:
                # Includes injected faults surfacing through a request's
                # future: the request fails cleanly, the server lives on.
                self._send_json(500, {"error": str(error)})
            except Exception as error:  # pragma: no cover - defensive
                self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
            else:
                self._send_json(200, response)

    return Handler
