"""Stdlib HTTP front end for the prediction engine.

A :class:`PredictionServer` wires the pieces of the serving subsystem
together: a :class:`~repro.serving.engine.PredictionEngine` for compute,
a :class:`~repro.serving.batching.MicroBatcher` so concurrent HTTP
callers share forward passes, and a
:class:`~repro.serving.metrics.ServingMetrics` sink.  The API is JSON
over ``http.server.ThreadingHTTPServer`` — one request per handler
thread, batching happening behind the queue — with three routes:

``POST /predict``
    ``{"nodes": [0, 5, 9]}`` → transductive logits/labels for known
    nodes, or ``{"features": [...], "neighbors": [3, 4]}`` → an
    inductive prediction for one unseen node.  ``"return_probs": true``
    adds softmax probabilities.
``GET /healthz``
    Liveness + model identity (used by load balancers and CI smoke).
``GET /metrics``
    The metrics snapshot: request/error/batch counters plus latency and
    batch-size percentile summaries.

Client errors (bad JSON, unknown ids, wrong shapes) return 400 with
``{"error": ...}``; server-side failures — including injected
``serving:request`` faults — return 500 the same way, and never take the
batching loop down with them.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.errors import ReproError
from repro.models.base import softmax_rows
from repro.serving.batching import MicroBatcher
from repro.serving.engine import PredictionEngine, ServingError
from repro.serving.metrics import ServingMetrics, prometheus_text


class PredictionServer:
    """An HTTP prediction service around one engine.

    Parameters
    ----------
    engine:
        The loaded :class:`PredictionEngine`.
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    batching:
        Route transductive requests through a :class:`MicroBatcher`
        (recommended); when off, every handler thread calls the engine
        directly.
    max_batch_size / max_wait_s:
        Micro-batching knobs, forwarded to the batcher.
    metrics:
        Metrics sink; a fresh one is created when omitted.
    """

    def __init__(
        self,
        engine: PredictionEngine,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        batching: bool = True,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        metrics: Optional[ServingMetrics] = None,
    ):
        self.engine = engine
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.batcher: Optional[MicroBatcher] = None
        if batching:
            self.batcher = MicroBatcher(
                engine.predict_many,
                max_batch_size=max_batch_size,
                max_wait_s=max_wait_s,
                metrics=self.metrics,
            )
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> "PredictionServer":
        """Serve in a background thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="prediction-server", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self.batcher is not None:
            self.batcher.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "PredictionServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Request handling (called from handler threads)
    # ------------------------------------------------------------------
    def handle_predict(self, body: dict) -> dict:
        if not isinstance(body, dict):
            raise ServingError("request body must be a JSON object")
        if "nodes" in body:
            return self._predict_nodes(body)
        if "features" in body:
            return self._predict_inductive(body)
        raise ServingError('request must contain "nodes" or "features"')

    def _predict_nodes(self, body: dict) -> dict:
        nodes = body["nodes"]
        if isinstance(nodes, int):
            nodes = [nodes]
        if self.batcher is not None:
            logits = self.batcher.predict(nodes)
        else:
            self.metrics.inc("requests_total")
            logits = self.engine.predict_nodes(nodes)
        response = {
            "nodes": [int(n) for n in nodes],
            "labels": logits.argmax(axis=1).tolist(),
        }
        if body.get("return_probs"):
            response["probs"] = softmax_rows(logits).tolist()
        if body.get("return_logits"):
            response["logits"] = logits.tolist()
        return response

    def _predict_inductive(self, body: dict) -> dict:
        self.metrics.inc("requests_total")
        self.metrics.inc("inductive_requests_total")
        neighbors = body.get("neighbors")
        if neighbors is None:
            raise ServingError('inductive requests need "neighbors" (known node ids)')
        logits = self.engine.predict_inductive(body["features"], neighbors)
        response = {"label": int(np.argmax(logits))}
        if body.get("return_probs"):
            response["probs"] = softmax_rows(logits[None, :])[0].tolist()
        if body.get("return_logits"):
            response["logits"] = logits.tolist()
        return response

    def health(self) -> dict:
        return {
            "status": "ok",
            "model": self.engine.model_kind,
            "nodes": self.engine.num_nodes,
            "batching": self.batcher is not None,
        }


def _make_handler(server: PredictionServer):
    """A handler class bound to one :class:`PredictionServer`."""

    class Handler(BaseHTTPRequestHandler):
        # Keep connections simple: one request per connection.
        protocol_version = "HTTP/1.0"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # request logging would swamp test output; metrics cover it

        # -- helpers ---------------------------------------------------
        def _send_json(self, status: int, payload: dict) -> None:
            blob = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(blob)))
            self.end_headers()
            self.wfile.write(blob)
            server.metrics.inc(f"http_{status}")

        def _send_text(self, status: int, text: str, content_type: str) -> None:
            blob = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(blob)))
            self.end_headers()
            self.wfile.write(blob)
            server.metrics.inc(f"http_{status}")

        # -- routes ----------------------------------------------------
        def do_GET(self) -> None:
            parsed = urlparse(self.path)
            if parsed.path == "/healthz":
                self._send_json(200, server.health())
            elif parsed.path == "/metrics":
                # JSON snapshot by default (the original contract);
                # ?format=prometheus serves the text exposition format
                # via the shared repro.obs.metrics exporter.
                formats = parse_qs(parsed.query).get("format", [])
                if formats and formats[-1] == "prometheus":
                    self._send_text(
                        200,
                        prometheus_text(server.metrics.snapshot()),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                else:
                    self._send_json(200, server.metrics.snapshot())
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})

        def do_POST(self) -> None:
            if self.path != "/predict":
                self._send_json(404, {"error": f"unknown path {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                body = json.loads(self.rfile.read(length) or b"")
            except (ValueError, json.JSONDecodeError) as error:
                self._send_json(400, {"error": f"invalid JSON body: {error}"})
                return
            try:
                response = server.handle_predict(body)
            except (ServingError, KeyError, TypeError) as error:
                server.metrics.inc("http_client_errors_total")
                self._send_json(400, {"error": str(error)})
            except ReproError as error:
                # Includes injected faults surfacing through a request's
                # future: the request fails cleanly, the server lives on.
                self._send_json(500, {"error": str(error)})
            except Exception as error:  # pragma: no cover - defensive
                self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
            else:
                self._send_json(200, response)

    return Handler
