"""Incremental logits-table maintenance for delta-aware serving.

When a :class:`~repro.graph.delta.GraphDelta` lands, only the rows of
the logits table within the model's receptive field of the edit can
change — for an L-layer GCN, the L-hop closure of the dirty nodes.  The
two classes here turn that observation into a serving primitive:

* :class:`RowRefresher` — a **row-pure** GCN forward: a per-layer
  decomposition (support ``S_l = H_{l-1} W_l``, aggregate
  ``H_l = Â S_l + b_l``, ReLU) in which every output row is a pure
  function of its own inputs, independent of which other rows are
  computed alongside it.  Sparse products already have this property
  (CSR kernels iterate rows independently); dense supports get it from a
  fixed-shape zero-padded block GEMM (:data:`BLOCK` rows per call, same
  shape whether rebuilding everything or one block).  Because full
  rebuilds and partial refreshes run the *same* routine, refreshing the
  k-hop-affected rows after a delta reproduces, bitwise, the table a
  from-scratch rebuild on the updated graph would produce — the parity
  property ``tests/serving/test_refresh.py`` enforces.

  Note the one deliberate divergence: an unstreamed engine's table comes
  from :meth:`GCN._inference`, whose hidden-layer GEMMs are single BLAS
  calls whose blocking depends on the matrix shape.  Those are *not*
  row-pure, so streaming engines use this routine for full builds too;
  streaming and non-streaming tables can differ in the last ulp (both
  are valid float orderings of the same sums).

* :class:`BackgroundRefresher` — the eager half of the freshness story:
  a daemon thread that wakes on every applied delta (plus a periodic
  heartbeat) and calls :meth:`PredictionEngine.refresh`, so queries
  rarely pay the recompute inline.  Each cycle passes the
  ``serving:refresh`` fault point and is traced as a
  ``serving:refresh`` span; a crashed cycle is counted and swallowed —
  the engine simply stays in lazy mode until the next cycle or query,
  bounded staleness instead of a wedged server.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph
from repro.tensor.sparse import sparse_dense_matmul
from repro.testing.faults import fault_point
import repro.obs as obs

__all__ = ["RowRefresher", "BackgroundRefresher", "BLOCK"]

# Rows per dense-support GEMM call.  Every call multiplies a zero-padded
# (BLOCK, in_dim) block, so the kernel — and therefore each row's float
# summation order — never depends on how many rows are actually live.
BLOCK = 256


class RowRefresher:
    """Row-pure GCN forward with stored per-layer state for partial refresh.

    Holds, per layer ``l``, the support ``S_l`` and the activation
    ``H_l`` over the whole graph (``H_last`` is the logits table).
    :meth:`rebuild` recomputes everything; :meth:`refresh` recomputes
    only the given per-layer row closures, growing the arrays when the
    delta appended nodes.  Not thread-safe — callers (the engine)
    serialize access.
    """

    def __init__(self, model, dtype):
        self._weights = [layer.weight.data for layer in model.layers]
        self._biases = [
            None if layer.bias is None else layer.bias.data for layer in model.layers
        ]
        self.dtype = np.dtype(dtype)
        self._supports: Optional[List[np.ndarray]] = None
        self._hidden: Optional[List[np.ndarray]] = None

    @property
    def num_layers(self) -> int:
        return len(self._weights)

    @property
    def table(self) -> Optional[np.ndarray]:
        """The maintained logits table (``H_last``), or None before rebuild."""
        return None if self._hidden is None else self._hidden[-1]

    # ------------------------------------------------------------------
    def _dense_support_block(self, h: np.ndarray, weight: np.ndarray, start: int) -> np.ndarray:
        stop = min(start + BLOCK, h.shape[0])
        block = np.zeros((BLOCK, h.shape[1]), dtype=h.dtype)
        block[: stop - start] = h[start:stop]
        return (block @ weight)[: stop - start]

    def _support_full(self, h, weight: np.ndarray) -> np.ndarray:
        if sp.issparse(h):
            return sparse_dense_matmul(h.tocsr(), weight)
        out = np.empty((h.shape[0], weight.shape[1]), dtype=weight.dtype)
        for start in range(0, h.shape[0], BLOCK):
            stop = min(start + BLOCK, h.shape[0])
            out[start:stop] = self._dense_support_block(h, weight, start)
        return out

    def _support_rows(self, h, weight: np.ndarray, target: np.ndarray, rows: np.ndarray) -> None:
        """Update ``target[rows]`` (and, dense, their whole blocks) in place.

        Dense refreshes recompute every block a changed row lives in; the
        block's unchanged rows reproduce their prior values bitwise (row
        purity), so overwriting the whole block is safe and keeps the
        per-call GEMM shape fixed.
        """
        if sp.issparse(h):
            target[rows] = sparse_dense_matmul(h[rows].tocsr(), weight)
            return
        for start in np.unique(rows // BLOCK) * BLOCK:
            stop = min(start + BLOCK, h.shape[0])
            target[start:stop] = self._dense_support_block(h, weight, start)

    def _aggregate_rows(
        self, adjacency: sp.csr_matrix, support: np.ndarray, bias, relu: bool, rows=None
    ) -> np.ndarray:
        matrix = adjacency if rows is None else adjacency[rows]
        out = sparse_dense_matmul(matrix, support)
        if bias is not None:
            out += bias
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    # ------------------------------------------------------------------
    def rebuild(self, graph: Graph) -> np.ndarray:
        """Recompute every layer over the whole graph; returns the table."""
        adjacency = graph.normalized_adjacency()
        h = graph.features
        supports, hidden = [], []
        last = self.num_layers - 1
        for i, (weight, bias) in enumerate(zip(self._weights, self._biases)):
            support = self._support_full(h, weight)
            supports.append(support)
            h = self._aggregate_rows(adjacency, support, bias, relu=i < last)
            hidden.append(h)
        self._supports, self._hidden = supports, hidden
        return self.table

    def refresh(self, graph: Graph, closures: Sequence[np.ndarray]) -> int:
        """Recompute the rows in ``closures`` against ``graph``.

        ``closures[l]`` is the l-hop closure of the dirty set over the
        union of the last-consistent and current adjacencies: layer
        ``l``'s support is recomputed at ``closures[l]`` (the rows whose
        input could have changed) and its activation at
        ``closures[l + 1]``.  Appended nodes must be in every closure —
        their fresh rows are written before anything reads them.
        Returns the number of table rows recomputed.
        """
        if self._hidden is None:
            raise RuntimeError("refresh() before rebuild()")
        if len(closures) != self.num_layers + 1:
            raise ValueError(
                f"need {self.num_layers + 1} closures for {self.num_layers} layers, "
                f"got {len(closures)}"
            )
        adjacency = graph.normalized_adjacency()
        n = graph.num_nodes
        self._grow(n)
        h = graph.features
        last = self.num_layers - 1
        for i, (weight, bias) in enumerate(zip(self._weights, self._biases)):
            rows_in, rows_out = closures[i], closures[i + 1]
            if len(rows_in):
                self._support_rows(h, weight, self._supports[i], rows_in)
            if len(rows_out):
                self._hidden[i][rows_out] = self._aggregate_rows(
                    adjacency, self._supports[i], bias, relu=i < last, rows=rows_out
                )
            h = self._hidden[i]
        return len(closures[-1])

    def _grow(self, num_rows: int) -> None:
        """Extend stored arrays for appended nodes (new rows start as
        garbage; the caller's closures always include them, so every new
        row is overwritten before it is read)."""
        for arrays in (self._supports, self._hidden):
            for i, array in enumerate(arrays):
                if array.shape[0] < num_rows:
                    grown = np.empty((num_rows, array.shape[1]), dtype=array.dtype)
                    grown[: array.shape[0]] = array
                    arrays[i] = grown


class BackgroundRefresher:
    """Eagerly refresh a streaming engine from a daemon thread.

    Wakes whenever the engine applies a delta (registered as a delta
    listener) and additionally every ``interval_s`` as a heartbeat.  A
    cycle that raises — including an injected ``serving:refresh`` fault —
    increments ``refresh_errors_total`` on the engine's metrics and is
    otherwise swallowed: queries fall back to lazy refresh, and the next
    cycle tries again.  Use as a context manager or call
    :meth:`start`/:meth:`stop`.
    """

    def __init__(self, engine, interval_s: float = 0.05):
        self._engine = engine
        self._interval_s = float(interval_s)
        self._wake = threading.Event()
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._cycle = 0
        self.cycles_run = 0
        self.errors = 0

    # ------------------------------------------------------------------
    def start(self) -> "BackgroundRefresher":
        if self._thread is not None:
            raise RuntimeError("refresher already started")
        self._stopping.clear()
        self._engine.add_delta_listener(self._on_delta)
        self._thread = threading.Thread(
            target=self._run, name="background-refresher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._engine.remove_delta_listener(self._on_delta)
        self._stopping.set()
        self._wake.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "BackgroundRefresher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _on_delta(self, version: int) -> None:
        self._wake.set()

    def _run(self) -> None:
        while True:
            self._wake.wait(timeout=self._interval_s)
            if self._stopping.is_set():
                return
            self._wake.clear()
            cycle = self._cycle
            self._cycle += 1
            try:
                with obs.span("serving:refresh", cycle=cycle):
                    fault_point("serving:refresh", key=cycle)
                    self._engine.refresh()
                self.cycles_run += 1
                self._engine.metrics.inc("refresh_cycles_total")
            except Exception:
                # Degrade to lazy recompute: the table stays stale until
                # the next cycle or the next query touching a stale row.
                self.errors += 1
                self._engine.metrics.inc("refresh_errors_total")
