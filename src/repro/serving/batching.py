"""Micro-batching: concurrent callers share one forward pass.

A full-batch GCN computes *every* node's logits in one forward, so ten
concurrent prediction requests answered independently cost ten forwards
of which nine are pure waste.  The :class:`MicroBatcher` turns that
waste into throughput: requests land on a queue, a worker drains up to
``max_batch_size`` of them (waiting at most ``max_wait_s`` for
stragglers once the first request of a batch arrives), and hands the
whole batch to a single ``batch_fn`` call — for the prediction engine,
:meth:`~repro.serving.engine.PredictionEngine.predict_many`, which pays
one shared logits-table computation.

Correctness contract:

* **ordering / identity** — each request's result is routed back on its
  own future; batching can never hand caller A caller B's rows.
* **bitwise parity** — ``batch_fn`` must be deterministic per request
  (the engine's eval-mode forwards are), so a batched response is
  bitwise identical to the unbatched one.
* **fault isolation** — a request that fails (including via the
  ``serving:request`` fault point, see :mod:`repro.testing.faults`)
  errors *its own* future; the rest of the batch completes and the
  worker loop survives to serve the next batch.
* **admission control** — the queue is *bounded* (``max_queue``).  A
  submit against a full queue raises :class:`Overloaded` immediately
  instead of growing the queue without bound: overload sheds the excess
  (HTTP maps it to 429) while the accepted requests keep their latency,
  rather than every request's p99 collapsing together.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.serving.metrics import ServingMetrics
from repro.testing.faults import fault_point


class BatcherClosed(ReproError):
    """A request was submitted to a batcher that has been shut down."""


class Overloaded(ReproError):
    """A request was shed: the serving queue is at capacity.

    Raised by :meth:`MicroBatcher.submit` (and the replica frontend's
    admission queue) instead of enqueueing past the bound.  HTTP maps it
    to ``429 Too Many Requests`` with a ``Retry-After`` hint of
    :attr:`retry_after_s` (rounded up to whole seconds).
    """

    def __init__(self, message: str, retry_after_s: float = 0.05):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


@dataclass
class _Pending:
    """One enqueued request: payload + routing info."""

    key: int  # arrival sequence number (also the fault-point key)
    payload: object
    future: Future = field(default_factory=Future)
    submitted: float = field(default_factory=time.monotonic)


_SHUTDOWN = object()


class MicroBatcher:
    """Queue requests; execute them in shared batches on worker threads.

    Parameters
    ----------
    batch_fn:
        ``batch_fn(payloads) -> results`` executing a whole batch in one
        call; must return exactly one result per payload, in order.
    max_batch_size:
        Largest batch handed to ``batch_fn``.
    max_wait_s:
        How long a worker holds the first request of a batch while
        waiting for more to coalesce.  Bounds the latency cost of
        batching; 0 batches only what is already queued.
    workers:
        Worker threads draining the queue.  One worker maximizes
        coalescing; more help when ``batch_fn`` releases the GIL.
    max_queue:
        Admission bound: requests queued (not yet picked up by a worker)
        beyond this are shed with :class:`Overloaded` instead of
        enqueued.  Sizes the worst-case queueing delay — under overload
        the queue holds at most ``max_queue`` requests, so accepted
        requests keep a bounded p99 while the excess is rejected fast.
    metrics:
        Optional :class:`ServingMetrics` receiving request counts,
        per-request latency, batch sizes, shed and error counts.
    """

    def __init__(
        self,
        batch_fn: Callable[[Sequence[object]], Sequence[object]],
        *,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        workers: int = 1,
        max_queue: int = 1024,
        metrics: Optional[ServingMetrics] = None,
    ):
        if max_batch_size < 1:
            raise ReproError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0:
            raise ReproError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ReproError(f"max_queue must be >= 1, got {max_queue}")
        self.batch_fn = batch_fn
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.max_queue = int(max_queue)
        self.metrics = metrics
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.max_queue)
        self._lock = threading.Lock()
        self._closed = False
        self._sequence = 0
        self._threads = [
            threading.Thread(target=self._worker, name=f"microbatcher-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, payload: object) -> Future:
        """Enqueue one request; returns a future resolving to its result.

        The closed check and the enqueue happen under one lock: checking,
        releasing, and then enqueuing would let a request racing
        :meth:`close` land *behind* the shutdown sentinels, where no
        worker would ever resolve its future.

        Raises :class:`Overloaded` (without consuming an arrival
        sequence number) when the queue is at ``max_queue``.
        """
        with self._lock:
            if self._closed:
                raise BatcherClosed("batcher is closed")
            pending = _Pending(key=self._sequence, payload=payload)
            try:
                self._queue.put_nowait(pending)
            except queue.Full:
                if self.metrics is not None:
                    self.metrics.inc("shed_total")
                raise Overloaded(
                    f"serving queue is full ({self.max_queue} requests queued)"
                ) from None
            self._sequence += 1
        if self.metrics is not None:
            self.metrics.inc("requests_total")
        return pending.future

    def predict(self, payload: object, timeout: Optional[float] = None) -> object:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(payload).result(timeout=timeout)

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop accepting requests; drain workers; fail leftovers.

        Workers batch whatever precedes their shutdown sentinel, but a
        request enqueued between one worker's sentinel and another's (or
        left behind by a worker that died or timed out) would otherwise
        sit on the queue forever with its future unresolved — a
        ``predict()`` caller with no timeout hangs for good.  After the
        joins, everything still queued is failed with
        :class:`BatcherClosed`, so every future ever returned by
        :meth:`submit` resolves.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            # Under the same lock as submit's enqueue: nothing can land
            # behind these sentinels.  The queue is bounded and may be
            # full of shed-worthy requests at shutdown, so sentinel
            # placement evicts (and fails) queued requests rather than
            # blocking close() behind a wedged worker.
            for _ in self._threads:
                self._put_sentinel()
        for thread in self._threads:
            thread.join(timeout=timeout)
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            self._fail(item, BatcherClosed("batcher closed before the request ran"))
        # A worker that outlived its join (wedged in a slow batch_fn) may
        # have had its sentinel swallowed by the drain; repost one per
        # survivor so it can still exit once its batch returns.  The
        # drain just emptied the queue, so these never block for long.
        for thread in self._threads:
            if thread.is_alive():
                self._put_sentinel()

    def _put_sentinel(self) -> None:
        """Place one shutdown sentinel without ever blocking.

        A full queue at close time holds requests that are doomed anyway
        (the post-join drain would fail them); evicting one to make room
        for the sentinel just fails it earlier.  Bounded attempts: if a
        sentinel evicts another sentinel (tiny queue, several workers)
        the shortfall is repaired by close()'s post-join repost loop.
        """
        for _ in range(self.max_queue + len(self._threads) + 1):
            try:
                self._queue.put_nowait(_SHUTDOWN)
                return
            except queue.Full:
                try:
                    evicted = self._queue.get_nowait()
                except queue.Empty:
                    continue
                if evicted is _SHUTDOWN:
                    # Keep the sibling's sentinel; count ours as placed —
                    # a deficit is repaired after the joins.
                    try:
                        self._queue.put_nowait(evicted)
                    except queue.Full:
                        pass
                    return
                self._fail(evicted, BatcherClosed("batcher closed before the request ran"))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _collect(self, first: _Pending) -> Tuple[List[_Pending], bool]:
        """Coalesce queued requests behind ``first`` until size or deadline.

        Returns ``(batch, shutdown)``; a sentinel drained mid-batch is
        consumed by *this* worker (it runs the batch, then exits) rather
        than reposted — a repost against a full bounded queue would
        block the worker behind the very backlog it should be draining.
        """
        batch = [first]
        deadline = time.monotonic() + self.max_wait_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            try:
                item = self._queue.get(block=remaining > 0, timeout=max(remaining, 0) or None)
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return batch, True
            batch.append(item)
        return batch, False

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch, shutdown = self._collect(item)
            self._run_batch(batch)
            if shutdown:
                return

    def _run_batch(self, batch: List[_Pending]) -> None:
        if self.metrics is not None:
            self.metrics.observe_batch_size(len(batch))
        live: List[_Pending] = []
        for pending in batch:
            try:
                fault_point("serving:request", key=pending.key, payload=pending.payload)
            except Exception as error:
                self._fail(pending, error)
            else:
                live.append(pending)
        if not live:
            return
        try:
            results = self.batch_fn([pending.payload for pending in live])
            if len(results) != len(live):
                raise ReproError(
                    f"batch_fn returned {len(results)} results for {len(live)} requests"
                )
        except Exception as error:
            # Batch-level failure.  With several coalesced requests the
            # culprit may be a single malformed payload, so isolate: run
            # each request alone and fail only the ones that fail alone.
            # (Deterministic batch_fns make the retry bitwise-equal.)
            if len(live) == 1:
                self._fail(live[0], error)
            else:
                for pending in live:
                    self._run_isolated(pending)
            return
        now = time.monotonic()
        for pending, result in zip(live, results):
            if self.metrics is not None:
                self.metrics.observe_latency(now - pending.submitted)
            pending.future.set_result(result)

    def _run_isolated(self, pending: _Pending) -> None:
        """Retry one already-fault-checked request alone (error isolation)."""
        try:
            (result,) = self.batch_fn([pending.payload])
        except Exception as error:
            self._fail(pending, error)
            return
        if self.metrics is not None:
            self.metrics.observe_latency(time.monotonic() - pending.submitted)
        pending.future.set_result(result)

    def _fail(self, pending: _Pending, error: Exception) -> None:
        if self.metrics is not None:
            self.metrics.inc("errors_total")
        pending.future.set_exception(error)
