"""Tiered caching for inductive serving queries.

The inductive path is the expensive half of serving — every miss samples
a neighborhood, carves a subgraph, and runs a forward — and real query
streams are heavily skewed: a few hot entities (health probes, popular
nodes) dominate.  A single LRU handles recency but lets one burst of
cold one-off queries evict the whole hot set.  The
:class:`TieredCache` here keeps two tiers instead (the hot/cold split
idiom of dgl's ``frame_cache``):

* a **cold tier** — a plain LRU of size ``cold_size``, the admission
  buffer every new entry lands in;
* a **hot tier** — size ``hot_size``, only reachable by *promotion*: an
  entry whose cold-tier hit count reaches ``promote_after`` moves up.
  Scan bursts churn the cold tier but cannot displace the hot set,
  because a single touch is never enough to promote.

An entry evicted from the hot tier (to make room for a newer promotion)
is *demoted* back to the cold tier's fresh end rather than dropped — it
was hot until a moment ago and likely recurs.

Keys are opaque bytes (the engine's query digests, which already fold in
the graph version, so delta-driven invalidation needs no cooperation
from the cache).  All operations take one internal lock; values are
treated as immutable (the engine stores freshly computed logits rows and
never mutates them).

When a :class:`~repro.obs.metrics.MetricRegistry` is attached, the cache
counts ``<prefix>_hot_hits_total`` / ``<prefix>_cold_hits_total`` /
``<prefix>_misses_total`` / ``<prefix>_promotions_total`` /
``<prefix>_evictions_total`` so ``GET /metrics`` shows tier behavior
live.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.errors import ReproError


class TieredCache:
    """Hot/cold two-tier cache with frequency-based promotion.

    Parameters
    ----------
    hot_size:
        Entries in the promotion-guarded hot tier (0 disables the tier;
        the cache degenerates to the cold LRU).
    cold_size:
        Entries in the cold LRU tier.  ``cold_size=0`` disables the
        cache entirely: :meth:`get` always misses, :meth:`put` is a
        no-op — the switch the engine uses for stateless deployments.
    promote_after:
        Cold-tier hits (including the insert-time miss-then-put, counted
        as zero) required before an entry is promoted.  ``1`` promotes
        on the first re-hit.
    metrics / prefix:
        Optional metric registry + counter name prefix.
    """

    def __init__(
        self,
        *,
        hot_size: int = 32,
        cold_size: int = 128,
        promote_after: int = 2,
        metrics=None,
        prefix: str = "cache",
    ):
        if hot_size < 0 or cold_size < 0:
            raise ReproError(
                f"cache sizes must be >= 0, got hot={hot_size} cold={cold_size}"
            )
        if promote_after < 1:
            raise ReproError(f"promote_after must be >= 1, got {promote_after}")
        self.hot_size = int(hot_size)
        self.cold_size = int(cold_size)
        self.promote_after = int(promote_after)
        self.metrics = metrics
        self.prefix = prefix
        self._lock = threading.Lock()
        self._hot: "OrderedDict[bytes, object]" = OrderedDict()
        # cold maps key -> [value, hits-since-insert]
        self._cold: "OrderedDict[bytes, list]" = OrderedDict()

    # ------------------------------------------------------------------
    def _inc(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(f"{self.prefix}_{name}", amount)

    @property
    def enabled(self) -> bool:
        return self.cold_size > 0 or self.hot_size > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._hot) + len(self._cold)

    def __contains__(self, key: bytes) -> bool:
        with self._lock:
            return key in self._hot or key in self._cold

    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[object]:
        """The cached value, or ``None`` on a miss.

        A hot hit refreshes the entry's hot-LRU position; a cold hit
        counts toward promotion and moves the entry to the hot tier once
        it has recurred ``promote_after`` times.
        """
        with self._lock:
            value = self._hot.get(key)
            if value is not None:
                self._hot.move_to_end(key)
                self._inc("hot_hits_total")
                return value
            entry = self._cold.get(key)
            if entry is None:
                self._inc("misses_total")
                return None
            self._cold.move_to_end(key)
            entry[1] += 1
            self._inc("cold_hits_total")
            if entry[1] >= self.promote_after and self.hot_size > 0:
                del self._cold[key]
                self._hot[key] = entry[0]
                self._inc("promotions_total")
                while len(self._hot) > self.hot_size:
                    demoted_key, demoted_value = self._hot.popitem(last=False)
                    # Hot a moment ago: demote to the cold fresh end with
                    # its promotion progress reset, don't drop outright.
                    self._cold[demoted_key] = [demoted_value, 0]
                self._trim_cold()
            return entry[0]

    def put(self, key: bytes, value: object) -> None:
        """Insert (or refresh) ``key``; new entries land in the cold tier."""
        if not self.enabled:
            return
        with self._lock:
            if key in self._hot:
                self._hot[key] = value
                self._hot.move_to_end(key)
                return
            if key in self._cold:
                self._cold[key][0] = value
                self._cold.move_to_end(key)
                return
            self._cold[key] = [value, 0]
            self._trim_cold()

    def _trim_cold(self) -> None:
        while len(self._cold) > max(self.cold_size, 0):
            self._cold.popitem(last=False)
            self._inc("evictions_total")

    # ------------------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._hot.clear()
            self._cold.clear()

    def stats(self) -> dict:
        """Current occupancy (counters live on the attached registry)."""
        with self._lock:
            return {
                "hot_entries": len(self._hot),
                "cold_entries": len(self._cold),
                "hot_size": self.hot_size,
                "cold_size": self.cold_size,
                "promote_after": self.promote_after,
            }
