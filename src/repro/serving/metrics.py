"""Serving observability: counters and windowed histograms.

The serving stack records three kinds of signal:

* **counters** — monotonically increasing totals (requests, errors,
  batches, HTTP statuses).  Open-ended by name so every layer can count
  what it sees without schema changes.
* **histograms** — bounded sliding windows over recent observations
  (request latency, batch size) summarized as count/mean/min/max and
  p50/p90/p99 percentiles.  A ring buffer keeps memory constant under
  unbounded traffic; the percentiles describe the recent window, which
  is what an operator watching a live service wants anyway.

Everything is guarded by one lock — observations are a few appends, so
contention is negligible next to a forward pass.  ``snapshot()`` returns
plain JSON-ready dicts and is what ``/metrics`` serves.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np


class WindowHistogram:
    """Fixed-capacity ring buffer with percentile summaries."""

    def __init__(self, window: int = 8192):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = window
        self._values: List[float] = []
        self._next = 0
        self._count = 0  # total observations ever, not just the window

    def add(self, value: float) -> None:
        self._count += 1
        if len(self._values) < self._window:
            self._values.append(float(value))
        else:
            self._values[self._next] = float(value)
            self._next = (self._next + 1) % self._window

    def summary(self) -> dict:
        if not self._values:
            return {"count": 0}
        window = np.asarray(self._values, dtype=np.float64)
        p50, p90, p99 = np.percentile(window, [50.0, 90.0, 99.0])
        return {
            "count": self._count,
            "window": len(self._values),
            "mean": float(window.mean()),
            "min": float(window.min()),
            "max": float(window.max()),
            "p50": float(p50),
            "p90": float(p90),
            "p99": float(p99),
        }


class ServingMetrics:
    """Thread-safe counters + histograms for one serving process."""

    def __init__(self, window: int = 8192):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._window = window
        self._histograms: Dict[str, WindowHistogram] = {}

    # -- counters ------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # -- histograms ----------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = WindowHistogram(self._window)
            histogram.add(value)

    def observe_latency(self, seconds: float) -> None:
        """Record one request's end-to-end latency (stored in ms)."""
        self.observe("latency_ms", seconds * 1000.0)

    def observe_batch_size(self, size: int) -> None:
        self.observe("batch_size", size)
        self.inc("batches_total")

    # -- export --------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view of every counter and histogram summary."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "histograms": {
                    name: histogram.summary()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def percentile(self, name: str, key: str = "p50") -> Optional[float]:
        """One percentile of one histogram, or ``None`` before any data."""
        with self._lock:
            histogram = self._histograms.get(name)
        if histogram is None:
            return None
        return histogram.summary().get(key)
