"""Serving observability: counters and windowed latency/batch histograms.

The primitives live in :mod:`repro.obs.metrics` — one
:class:`~repro.obs.metrics.MetricRegistry` implementation shared by the
serving stack and the training observability layer, with one Prometheus
exporter behind both ``GET /metrics?format=prometheus`` and
``repro report``.  This module keeps the serving-flavoured surface:
:class:`ServingMetrics` adds the latency/batch-size conveniences the
batcher and HTTP server record, and ``WindowHistogram`` /
``prometheus_text`` are re-exported for compatibility with existing
imports.
"""

from __future__ import annotations

from repro.obs.metrics import MetricRegistry, WindowHistogram, prometheus_text

__all__ = [
    "MetricRegistry",
    "ServingMetrics",
    "WindowHistogram",
    "merge_counter_snapshots",
    "prometheus_text",
]


class ServingMetrics(MetricRegistry):
    """Thread-safe counters + histograms for one serving process."""

    def observe_latency(self, seconds: float) -> None:
        """Record one request's end-to-end latency (stored in ms)."""
        self.observe("latency_ms", seconds * 1000.0)

    def observe_batch_size(self, size: int) -> None:
        self.observe("batch_size", size)
        self.inc("batches_total")


def merge_counter_snapshots(snapshots) -> dict:
    """Sum the ``counters`` sections of several registry snapshots.

    The replica tier keeps one registry per process; a fleet-wide view
    (bench reports, the scaling-curve tooling) sums the counters —
    histograms are windowed per process and are deliberately not merged.
    """
    merged: dict = {}
    for snapshot in snapshots:
        for name, value in (snapshot or {}).get("counters", {}).items():
            merged[name] = merged.get(name, 0) + value
    return merged
