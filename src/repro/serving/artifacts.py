"""Versioned model artifacts: the train→serve handoff format.

Training produces a model; serving needs everything required to answer
queries without re-deriving it: the weights, the recipe to rebuild the
module, the identity of the graph the weights were trained against, and
the propagation constants the forward pass depends on.  An **artifact**
bundles all of that in one file:

* the constructor spec (:class:`ModelSpec`) naming a registered model
  kind plus its hyperparameter options, so the exact module can be
  rebuilt on load;
* the ``Module.state_dict()`` (or, for RDD teachers, the full
  ``EnsembleModel.state()`` with per-member α-weights, optionally plus
  each member's weights for inductive queries);
* a structural fingerprint of the training graph, so an engine refuses
  to serve the weights against the wrong data;
* the cached GCN-normalized adjacency ``Â``, so the serving process
  skips the normalization pass entirely;
* the compute dtype, preserved bitwise — a ``float32`` artifact loads
  back as ``float32`` parameters.

On disk an artifact *is* a checkpoint: it reuses
:func:`repro.training.checkpoint.write_checkpoint`'s magic/format/
SHA-256 framing and temp+fsync+rename atomicity, with its own payload
schema versioned by :data:`ARTIFACT_VERSION`.  Like checkpoints, the
payload is pickled — load artifacts only from trusted paths.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.ensemble import EnsembleModel
from repro.errors import ReproError
from repro.graph.graph import Graph
from repro.nn.module import Module
from repro.tensor.tensor import default_dtype
from repro.training.checkpoint import read_checkpoint, write_checkpoint

PathLike = Union[str, Path]

ARTIFACT_KIND = "rdd-model-artifact"
ARTIFACT_VERSION = 1


class ArtifactError(ReproError):
    """An artifact file is malformed, or its contents don't fit the request."""


# ----------------------------------------------------------------------
# Model-kind registry: spec name -> constructor
# ----------------------------------------------------------------------
def _builtin_kinds() -> Dict[str, Callable]:
    # Imported lazily so the artifact module doesn't pull the whole model
    # zoo at import time.
    from repro.models.gcn import GCN
    from repro.models.mlp import MLP
    from repro.models.sgc import SGC

    return {"gcn": GCN, "mlp": MLP, "sgc": SGC}


_MODEL_KINDS: Dict[str, Callable] = {}


def model_kinds() -> List[str]:
    """Names accepted as :attr:`ModelSpec.kind`."""
    if not _MODEL_KINDS:
        _MODEL_KINDS.update(_builtin_kinds())
    return sorted(_MODEL_KINDS)


def register_model_kind(name: str, factory: Callable) -> None:
    """Register ``factory(num_features, num_classes, rng, **options)``
    under ``name`` so artifacts exported with that kind can be rebuilt."""
    model_kinds()  # ensure builtins are present before overlaying
    _MODEL_KINDS[name.lower()] = factory


def _resolve_kind(name: str) -> Callable:
    model_kinds()
    try:
        return _MODEL_KINDS[name.lower()]
    except KeyError:
        raise ArtifactError(
            f"unknown model kind {name!r}; registered: {', '.join(model_kinds())}"
        ) from None


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """How to rebuild a served module: a registered kind + constructor options.

    ``options`` are the keyword arguments beyond the data-derived ones —
    the constructor is always called as
    ``factory(num_features, num_classes, rng, **options)``.
    """

    kind: str
    options: dict = dataclasses.field(default_factory=dict)

    def build(self, graph: Graph, dtype=None) -> Module:
        """Construct the module (fresh weights) for ``graph``.

        The weight values are placeholders — callers load a state dict on
        top — but the construction dtype matters: parameters are created
        at ``dtype`` so a stored state dict loads back bitwise.
        """
        factory = _resolve_kind(self.kind)
        with default_dtype(dtype):
            return factory(
                graph.num_features, graph.num_classes, np.random.default_rng(0), **self.options
            )


# ----------------------------------------------------------------------
# Graph identity + sparse-matrix (de)hydration
# ----------------------------------------------------------------------
def graph_fingerprint(graph: Graph) -> dict:
    """Structural identity of a graph: counts plus an adjacency digest.

    The digest covers the CSR structure arrays only, so it is invariant
    under dtype casts (:meth:`Graph.astype`) but changes whenever an edge
    moves — the property serving needs to refuse wrong-graph artifacts.
    """
    adjacency = graph.adjacency
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(adjacency.indptr).tobytes())
    digest.update(np.ascontiguousarray(adjacency.indices).tobytes())
    return {
        "name": graph.name,
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
        "num_features": int(graph.num_features),
        "num_classes": int(graph.num_classes),
        "structure_sha256": digest.hexdigest(),
    }


def _csr_state(matrix: sp.csr_matrix) -> dict:
    matrix = sp.csr_matrix(matrix)
    return {
        "data": matrix.data,
        "indices": matrix.indices,
        "indptr": matrix.indptr,
        "shape": tuple(matrix.shape),
    }


def _csr_from_state(state: dict) -> sp.csr_matrix:
    return sp.csr_matrix(
        (state["data"], state["indices"], state["indptr"]), shape=state["shape"]
    )


def _state_dtype(arrays: Sequence[np.ndarray]) -> str:
    dtypes = {np.asarray(a).dtype for a in arrays}
    floats = {d for d in dtypes if d.kind == "f"}
    if len(floats) > 1:
        raise ArtifactError(f"mixed float dtypes in artifact state: {sorted(map(str, floats))}")
    return str(next(iter(floats))) if floats else "float64"


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def export_model_artifact(
    path: PathLike,
    model: Module,
    spec: ModelSpec,
    graph: Graph,
    dataset: Optional[dict] = None,
    metadata: Optional[dict] = None,
) -> Path:
    """Write a single-module serving artifact for ``model`` trained on ``graph``.

    ``dataset``, when given, records how to rebuild the serving graph
    (e.g. ``{"name": "cora", "kwargs": {"seed": 0, "scale": 1.0}}``) so
    ``repro serve`` can run from the artifact alone.
    """
    _resolve_kind(spec.kind)  # fail at export time, not at load time
    state = model.state_dict()
    payload = {
        "kind": ARTIFACT_KIND,
        "artifact_version": ARTIFACT_VERSION,
        "spec": {"kind": spec.kind, "options": dict(spec.options)},
        "state_dict": state,
        "dtype": _state_dtype(list(state.values())),
        "graph": graph_fingerprint(graph),
        "normalized_adjacency": _csr_state(graph.normalized_adjacency()),
        "dataset": dataset,
        "metadata": metadata or {},
        "ensemble": None,
        "members": None,
    }
    path = Path(path)
    write_checkpoint(path, payload)
    return path


def export_ensemble_artifact(
    path: PathLike,
    ensemble: EnsembleModel,
    graph: Graph,
    members: Optional[Sequence[Tuple[ModelSpec, Dict[str, np.ndarray]]]] = None,
    dataset: Optional[dict] = None,
    metadata: Optional[dict] = None,
) -> Path:
    """Write an RDD-teacher serving artifact.

    The :meth:`EnsembleModel.state` tables (per-member probs/logits and
    α-weights) fully determine transductive predictions.  ``members`` —
    optional ``(spec, state_dict)`` pairs, one per base model in order —
    additionally enable inductive queries, which must re-run the member
    forward passes on a query subgraph.
    """
    state = ensemble.state()
    if members is not None and len(members) != len(state["weights"]):
        raise ArtifactError(
            f"{len(members)} member specs for an ensemble of {len(state['weights'])}"
        )
    payload = {
        "kind": ARTIFACT_KIND,
        "artifact_version": ARTIFACT_VERSION,
        "spec": None,
        "state_dict": None,
        "dtype": _state_dtype(list(state["probs"]) + list(state["logits"])),
        "graph": graph_fingerprint(graph),
        "normalized_adjacency": _csr_state(graph.normalized_adjacency()),
        "dataset": dataset,
        "metadata": metadata or {},
        "ensemble": state,
        "members": (
            None
            if members is None
            else [
                {"spec": {"kind": spec.kind, "options": dict(spec.options)}, "state_dict": sd}
                for spec, sd in members
            ]
        ),
    }
    for member in payload["members"] or []:
        _resolve_kind(member["spec"]["kind"])
    path = Path(path)
    write_checkpoint(path, payload)
    return path


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------
class ModelArtifact:
    """A loaded serving artifact; see :func:`load_artifact`."""

    def __init__(self, payload: dict, path: Optional[Path] = None):
        self.path = path
        self.spec = (
            None
            if payload["spec"] is None
            else ModelSpec(payload["spec"]["kind"], dict(payload["spec"]["options"]))
        )
        self.state_dict: Optional[Dict[str, np.ndarray]] = payload["state_dict"]
        self.ensemble_state: Optional[dict] = payload["ensemble"]
        self.members: Optional[List[dict]] = payload["members"]
        self.dtype = np.dtype(payload["dtype"])
        self.graph_fingerprint: dict = payload["graph"]
        self._normalized_state: dict = payload["normalized_adjacency"]
        self.dataset: Optional[dict] = payload["dataset"]
        self.metadata: dict = payload["metadata"]

    # -- identity ------------------------------------------------------
    @property
    def is_ensemble(self) -> bool:
        return self.ensemble_state is not None

    @property
    def model_kind(self) -> str:
        if self.is_ensemble:
            return f"ensemble[{len(self.ensemble_state['weights'])}]"
        return self.spec.kind

    def check_graph(self, graph: Graph) -> None:
        """Raise :class:`ArtifactError` unless ``graph`` structurally
        matches the graph this artifact was exported from."""
        expected = self.graph_fingerprint
        actual = graph_fingerprint(graph)
        mismatched = sorted(
            key for key in expected if key != "name" and expected[key] != actual[key]
        )
        if mismatched:
            detail = ", ".join(
                f"{key}: artifact={expected[key]!r} graph={actual[key]!r}" for key in mismatched
            )
            raise ArtifactError(
                f"graph does not match the artifact's training graph ({detail})"
            )

    # -- hydration -----------------------------------------------------
    def normalized_adjacency(self, dtype=None) -> sp.csr_matrix:
        """The exported ``Â`` cache, optionally cast to ``dtype``."""
        matrix = _csr_from_state(self._normalized_state)
        if dtype is not None and matrix.dtype != np.dtype(dtype):
            matrix = matrix.astype(dtype)
        return matrix

    def build_model(self, graph: Graph) -> Module:
        """Rebuild the single served module, in eval mode, weights loaded
        bitwise (the module is constructed at the artifact's dtype)."""
        if self.is_ensemble:
            raise ArtifactError("this is an ensemble artifact; use ensemble()/member_models()")
        model = self.spec.build(graph, dtype=self.dtype)
        model.load_state_dict(self.state_dict)
        model.eval()
        return model

    def ensemble(self) -> EnsembleModel:
        """Rebuild the RDD teacher (transductive prediction tables)."""
        if not self.is_ensemble:
            raise ArtifactError("this is a single-model artifact; use build_model()")
        return EnsembleModel.from_state(self.ensemble_state)

    def member_models(self, graph: Graph) -> List[Module]:
        """Rebuild every ensemble member module (for inductive queries)."""
        if not self.is_ensemble:
            raise ArtifactError("this is a single-model artifact; use build_model()")
        if self.members is None:
            raise ArtifactError(
                "this ensemble artifact stores only transductive prediction tables; "
                "re-export with members=[(spec, state_dict), ...] for inductive serving"
            )
        models = []
        for member in self.members:
            spec = ModelSpec(member["spec"]["kind"], dict(member["spec"]["options"]))
            model = spec.build(graph, dtype=self.dtype)
            model.load_state_dict(member["state_dict"])
            model.eval()
            models.append(model)
        return models


def load_artifact(path: PathLike) -> ModelArtifact:
    """Read and validate a serving artifact written by the exporters.

    Checksum/framing violations surface as
    :class:`repro.training.checkpoint.CheckpointError`; a valid checkpoint
    that is not a serving artifact (or is from a newer artifact schema)
    raises :class:`ArtifactError`.
    """
    path = Path(path)
    payload = read_checkpoint(path)
    if not isinstance(payload, dict) or payload.get("kind") != ARTIFACT_KIND:
        raise ArtifactError(f"{path} is a checkpoint but not a model artifact")
    if payload.get("artifact_version") != ARTIFACT_VERSION:
        raise ArtifactError(
            f"{path} has artifact version {payload.get('artifact_version')!r}, "
            f"expected {ARTIFACT_VERSION}"
        )
    return ModelArtifact(payload, path=path)
