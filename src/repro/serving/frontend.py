"""The replica frontend: admission control + fan-out over worker processes.

:class:`ReplicaFrontend` is the in-parent half of the replica tier
(:mod:`repro.serving.replica` is the worker half).  It owns:

* the **one** shared-memory logits table — computed by a parent-side
  engine at construction, placed in a
  :class:`~repro.serving.replica.SharedLogitsTable`, attached read-only
  by every replica;
* a **bounded admission queue** — the single overload valve for the
  whole tier.  ``submit()`` against a full queue raises
  :class:`~repro.serving.batching.Overloaded` immediately (HTTP 429),
  so saturation sheds the excess instead of growing latency without
  bound;
* one **dispatcher thread per replica**, each pulling from the shared
  admission queue, coalescing up to ``max_batch_size`` requests, and
  doing one blocking IPC round trip to its replica.  Pulling from a
  shared queue is natural least-loaded balancing: a replica stuck in a
  slow batch simply stops taking work while its siblings drain the
  queue;
* **self-healing** — a replica that dies or stops answering
  (``reply_timeout_s``) is terminated and re-forked with fresh queues,
  and the in-flight batch is retried once on the revived replica
  (predictions are pure, so the retry is safe and bitwise-identical);
* **rolling reload** — :meth:`reload` computes the new artifact's table
  into a fresh shared segment, then swaps replicas one at a time under
  their per-replica locks.  The other replicas keep answering
  throughout, so an artifact upgrade is zero-downtime by construction.

Determinism: each replica holds an identical engine attached to the
same physical table, and inductive sampling is seeded from query
content, so fan-out answers are bitwise-equal to a single-process
engine's — the property the replica parity tests check.

Streaming engines are out of scope here: a delta-mutated table cannot
live in a read-only shared segment.  Use a single-process
:class:`~repro.serving.engine.PredictionEngine` with
``streaming=True`` for that deployment shape.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ReproError
from repro.graph.graph import Graph
from repro.serving.artifacts import ModelArtifact
from repro.serving.batching import BatcherClosed, Overloaded, _Pending
from repro.serving.engine import PredictionEngine, ServingError
from repro.serving.metrics import ServingMetrics
from repro.serving.replica import ReplicaError, SharedLogitsTable, replica_main
from repro.testing.faults import fault_point

_STOP = object()


class _Replica:
    """Parent-side handle on one worker process (mutated in place by revive)."""

    def __init__(self, index: int, process, request_queue, response_queue):
        self.index = index
        self.process = process
        self.request_queue = request_queue
        self.response_queue = response_queue
        # Serializes the strictly-paired send/recv protocol; reload and
        # revive take the same lock to swap the replica out safely.
        self.lock = threading.Lock()


class ReplicaFrontend:
    """Serve one artifact from N worker processes sharing one logits table.

    Parameters
    ----------
    artifact / graph:
        What to serve, exactly as :class:`PredictionEngine` takes them.
    replicas:
        Worker processes.  Each holds a full engine but shares the
        transductive table, so marginal memory per replica is the model
        weights, not the table.
    engine_kwargs:
        Forwarded to every engine construction (parent and replicas);
        ``streaming=True`` is rejected — see the module docstring.
    max_queue:
        Admission bound across the whole tier; excess submits raise
        :class:`Overloaded`.
    max_batch_size / max_wait_s:
        IPC batch coalescing knobs (same meaning as the micro-batcher's).
    reply_timeout_s:
        How long a dispatcher waits for its replica's answer before
        declaring it wedged and re-forking it.
    spawn_timeout_s:
        How long to wait for a replica's ready handshake at fork time.
    """

    def __init__(
        self,
        artifact: Union[ModelArtifact, str, Path],
        graph: Graph,
        *,
        replicas: int = 2,
        engine_kwargs: Optional[dict] = None,
        max_queue: int = 1024,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        reply_timeout_s: float = 30.0,
        spawn_timeout_s: float = 30.0,
        metrics: Optional[ServingMetrics] = None,
    ):
        if replicas < 1:
            raise ReproError(f"replicas must be >= 1, got {replicas}")
        if max_queue < 1:
            raise ReproError(f"max_queue must be >= 1, got {max_queue}")
        self._engine_kwargs = dict(engine_kwargs or {})
        if self._engine_kwargs.get("streaming"):
            raise ServingError(
                "the replica tier serves a static shared table; "
                "streaming engines must run single-process"
            )
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.max_queue = int(max_queue)
        self.reply_timeout_s = float(reply_timeout_s)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.artifact_version = 0

        # Parent engine: computes the table once, then serves as the
        # metadata source for /healthz (model kind, node/class counts).
        self._engine = PredictionEngine(artifact, graph, **self._engine_kwargs)
        self._shared = SharedLogitsTable.create(self._engine.logits_table())
        # The parent, too, serves from the shared copy — its private
        # table is dropped, leaving one physical table for the machine.
        self._engine.install_logits_table(self._shared.table)

        # fork: replicas inherit the loaded artifact + graph as
        # copy-on-write memory, no pickling of model state.  Platforms
        # without fork fall back to the default (spawn) context, which
        # pickles the constructor args instead.
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            self._ctx = multiprocessing.get_context()

        self._admission: "queue.Queue" = queue.Queue(maxsize=self.max_queue)
        self._lock = threading.Lock()
        self._closed = False
        self._sequence = 0

        self._replicas: List[_Replica] = []
        try:
            for index in range(replicas):
                self._replicas.append(self._spawn(index))
        except Exception:
            self._teardown_replicas()
            self._shared.close()
            self._shared.unlink()
            raise
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch,
                args=(replica,),
                name=f"replica-dispatch-{replica.index}",
                daemon=True,
            )
            for replica in self._replicas
        ]
        for thread in self._dispatchers:
            thread.start()

    # ------------------------------------------------------------------
    # Introspection (for /healthz)
    # ------------------------------------------------------------------
    @property
    def replicas(self) -> int:
        return len(self._replicas)

    @property
    def model_kind(self) -> str:
        return self._engine.model_kind

    @property
    def num_nodes(self) -> int:
        return self._engine.num_nodes

    @property
    def num_classes(self) -> int:
        return self._engine.num_classes

    @property
    def graph(self) -> Graph:
        return self._engine.graph

    def ping(self) -> List[dict]:
        """One info dict per live replica (served counts, pids, versions)."""
        infos = []
        for replica in self._replicas:
            with replica.lock:
                if not replica.process.is_alive():
                    infos.append({"replica": replica.index, "alive": False})
                    continue
                replica.request_queue.put(("ping",))
                try:
                    kind, info = replica.response_queue.get(timeout=self.reply_timeout_s)
                except queue.Empty:
                    infos.append({"replica": replica.index, "alive": False})
                    continue
            info = dict(info) if kind == "pong" else {"replica": replica.index}
            info["alive"] = True
            infos.append(info)
        return infos

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, payload: Tuple) -> "np.ndarray":
        """Enqueue one payload; returns a future resolving to its logits.

        Payloads are the replica protocol's: ``("nodes", ids)`` or
        ``("inductive", features, neighbor_ids)``.  Raises
        :class:`Overloaded` when the admission queue is full and
        :class:`BatcherClosed` after :meth:`close`.
        """
        with self._lock:
            if self._closed:
                raise BatcherClosed("replica frontend is closed")
            pending = _Pending(key=self._sequence, payload=payload)
            try:
                self._admission.put_nowait(pending)
            except queue.Full:
                self.metrics.inc("shed_total")
                raise Overloaded(
                    f"serving queue is full ({self.max_queue} requests queued)"
                ) from None
            self._sequence += 1
        self.metrics.inc("requests_total")
        return pending.future

    def predict_nodes(self, node_ids: Sequence[int], timeout: Optional[float] = None) -> np.ndarray:
        return self.submit(("nodes", list(node_ids))).result(timeout=timeout)

    def predict_inductive(
        self, features, neighbor_ids: Sequence[int], timeout: Optional[float] = None
    ) -> np.ndarray:
        features = np.asarray(features)
        return self.submit(("inductive", features, list(neighbor_ids))).result(timeout=timeout)

    def predict(self, payload: Tuple, timeout: Optional[float] = None):
        return self.submit(payload).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Rolling reload
    # ------------------------------------------------------------------
    def reload(self, artifact_path: Union[str, Path]) -> int:
        """Swap every replica to a new artifact with zero downtime.

        The new table is computed parent-side into a fresh shared
        segment first; then each replica rebuilds from ``artifact_path``
        one at a time, under its own lock, while the others keep
        serving.  Returns the new :attr:`artifact_version`.  A replica
        that fails to reload keeps serving the old artifact and the
        error propagates after the loop (partial swaps are visible in
        :meth:`ping`'s per-replica ``artifact_version``).
        """
        artifact_path = str(artifact_path)
        fresh_engine = PredictionEngine(artifact_path, self._engine.graph, **self._engine_kwargs)
        fresh_shared = SharedLogitsTable.create(fresh_engine.logits_table())
        fresh_engine.install_logits_table(fresh_shared.table)

        failures = []
        for replica in self._replicas:
            if not replica.process.is_alive():
                # A dead replica whose dispatcher has not picked up work
                # yet (healing is lazy) would fail the swap; re-fork it
                # now — it comes up on the old artifact and reloads like
                # its siblings.
                try:
                    self._revive(replica)
                except Exception as error:
                    failures.append(f"replica {replica.index} is dead ({error})")
                    continue
            with replica.lock:
                replica.request_queue.put(("reload", artifact_path, fresh_shared.descriptor))
                try:
                    kind, info = replica.response_queue.get(timeout=self.reply_timeout_s)
                except queue.Empty:
                    failures.append(f"replica {replica.index} reload timed out")
                    continue
                if kind != "reloaded":
                    failures.append(f"replica {replica.index}: {info}")
        if failures:
            fresh_shared.close()
            fresh_shared.unlink()
            raise ReplicaError("rolling reload failed: " + "; ".join(failures))

        old_engine, old_shared = self._engine, self._shared
        self._engine, self._shared = fresh_engine, fresh_shared
        self.artifact_version += 1
        self.metrics.inc("reloads_total")
        del old_engine
        old_shared.close()
        old_shared.unlink()
        return self.artifact_version

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: Optional[float] = 5.0) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._dispatchers:
                self._put_stop()
        for thread in self._dispatchers:
            thread.join(timeout=timeout)
        while True:
            try:
                item = self._admission.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                continue
            self._fail(item, BatcherClosed("frontend closed before the request ran"))
        for thread in self._dispatchers:
            if thread.is_alive():
                self._put_stop()
        self._teardown_replicas()
        self._shared.close()
        self._shared.unlink()

    def _teardown_replicas(self) -> None:
        for replica in self._replicas:
            if replica.process.is_alive():
                try:
                    replica.request_queue.put_nowait(("shutdown",))
                except Exception:
                    pass
        for replica in self._replicas:
            replica.process.join(timeout=2.0)
            if replica.process.is_alive():
                replica.process.terminate()
                replica.process.join(timeout=1.0)

    def _put_stop(self) -> None:
        """Place one dispatcher stop without blocking (mirrors the
        micro-batcher's sentinel eviction: a full queue at close holds
        doomed requests, so evicting one just fails it earlier)."""
        for _ in range(self.max_queue + len(self._dispatchers) + 1):
            try:
                self._admission.put_nowait(_STOP)
                return
            except queue.Full:
                try:
                    evicted = self._admission.get_nowait()
                except queue.Empty:
                    continue
                if evicted is _STOP:
                    try:
                        self._admission.put_nowait(evicted)
                    except queue.Full:
                        pass
                    return
                self._fail(evicted, BatcherClosed("frontend closed before the request ran"))

    def __enter__(self) -> "ReplicaFrontend":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Replica management
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> _Replica:
        request_queue = self._ctx.Queue()
        response_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=replica_main,
            args=(
                index,
                self._engine.artifact,
                self._engine.graph,
                self._engine_kwargs,
                self._shared.descriptor,
                request_queue,
                response_queue,
            ),
            name=f"serving-replica-{index}",
            daemon=True,
        )
        process.start()
        try:
            kind, info = response_queue.get(timeout=self.spawn_timeout_s)
        except queue.Empty:
            process.terminate()
            raise ReplicaError(f"replica {index} did not come up") from None
        if kind != "ready":
            process.join(timeout=1.0)
            raise ReplicaError(f"replica {index} failed to start: {info}")
        return _Replica(index, process, request_queue, response_queue)

    def _revive(self, replica: _Replica) -> None:
        """Re-fork a dead or wedged replica with fresh queues.

        Fresh queues matter: a *wedged* (not dead) old process may emit
        its answer eventually, and it must land on an abandoned queue
        rather than desynchronize the new process's request/reply pairing.
        """
        with replica.lock:
            if replica.process.is_alive():
                replica.process.terminate()
            replica.process.join(timeout=2.0)
            fresh = self._spawn(replica.index)
            replica.process = fresh.process
            replica.request_queue = fresh.request_queue
            replica.response_queue = fresh.response_queue
        self.metrics.inc("replica_restarts_total")

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------
    def _collect(self, first: _Pending) -> Tuple[List[_Pending], bool]:
        batch = [first]
        deadline = time.monotonic() + self.max_wait_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            try:
                item = self._admission.get(
                    block=remaining > 0, timeout=max(remaining, 0) or None
                )
            except queue.Empty:
                break
            if item is _STOP:
                return batch, True
            batch.append(item)
        return batch, False

    def _dispatch(self, replica: _Replica) -> None:
        while True:
            item = self._admission.get()
            if item is _STOP:
                return
            batch, stop = self._collect(item)
            self._run_batch(replica, batch)
            if stop:
                return

    def _run_batch(self, replica: _Replica, batch: List[_Pending]) -> None:
        self.metrics.observe_batch_size(len(batch))
        live: List[_Pending] = []
        for pending in batch:
            try:
                fault_point("serving:request", key=pending.key, payload=pending.payload)
            except Exception as error:
                self._fail(pending, error)
            else:
                live.append(pending)
        if not live:
            return
        payloads = [pending.payload for pending in live]
        try:
            results = self._roundtrip(replica, payloads)
        except ReplicaError:
            # Dead or wedged replica: re-fork it and retry the batch
            # once.  Predictions are pure, so the retry is safe — and
            # bitwise-identical, per the engine's determinism contract.
            try:
                self._revive(replica)
                results = self._roundtrip(replica, payloads)
            except Exception as retry_error:
                for pending in live:
                    self._fail(pending, retry_error)
                return
        now = time.monotonic()
        for pending, (ok, value) in zip(live, results):
            if ok:
                self.metrics.observe_latency(now - pending.submitted)
                pending.future.set_result(value)
            else:
                self._fail(pending, value)

    def _roundtrip(self, replica: _Replica, payloads: List[Tuple]) -> List[Tuple[bool, object]]:
        with replica.lock:
            if not replica.process.is_alive():
                raise ReplicaError(f"replica {replica.index} died")
            replica.request_queue.put(("predict", payloads))
            try:
                kind, results = replica.response_queue.get(timeout=self.reply_timeout_s)
            except queue.Empty:
                raise ReplicaError(
                    f"replica {replica.index} did not answer within "
                    f"{self.reply_timeout_s}s"
                ) from None
        if kind != "results" or len(results) != len(payloads):
            raise ReplicaError(f"replica {replica.index} answered out of protocol")
        return results

    def _fail(self, pending: _Pending, error: Exception) -> None:
        self.metrics.inc("errors_total")
        pending.future.set_exception(error)
