"""Replica worker processes sharing one logits table.

One GIL-bound process caps serving throughput no matter how well it
batches.  The replica tier runs N worker **processes**, each holding a
:class:`~repro.serving.engine.PredictionEngine`, behind the in-parent
:class:`~repro.serving.frontend.ReplicaFrontend`.  The expensive shared
state — the precomputed transductive logits table — lives in
``multiprocessing.shared_memory``: the parent computes it once, every
replica attaches a read-only view, so N replicas cost one table, not N.

Two pieces live here:

* :class:`SharedLogitsTable` — lifecycle wrapper around one shared
  segment: ``create`` (parent; copies the table in), ``attach``
  (worker; read-only zero-copy view), ``close``/``unlink``.  Attaching
  skips resource-tracker registration — the parent owns the segment
  and unlinks it; a worker exiting must not tear it down under its
  siblings.
* :func:`replica_main` — the worker process body: build the engine,
  attach the shared table, then answer framed messages off a request
  queue (``predict`` batches, ``ping``, ``reload``, ``shutdown``).  One
  message in, one reply out, strictly sequential — the frontend's
  per-replica dispatcher enforces the pairing, so no correlation ids
  are needed.

The worker is **fork-spawned**: the parent's loaded artifact and graph
ride into the child as inherited (copy-on-write) memory, so boot costs
milliseconds and no pickling of model state happens on the spawn path.
A ``reload`` message carries an artifact *path* plus the name of a fresh
shared segment; the worker builds the new engine from disk, attaches the
new table, and drops the old — the frontend swaps replicas one at a time
so the tier as a whole never stops serving (rolling reload).
"""

from __future__ import annotations

import signal
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.serving.engine import PredictionEngine


class ReplicaError(ReproError):
    """A replica worker failed, timed out, or answered out of protocol."""


_ATTACH_LOCK = threading.Lock()


# ----------------------------------------------------------------------
# Shared-memory logits table
# ----------------------------------------------------------------------
class SharedLogitsTable:
    """One logits table in a named shared-memory segment.

    The parent calls :meth:`create` (copying the computed table in) and
    eventually :meth:`unlink`; workers call :meth:`attach` with the
    ``(name, shape, dtype)`` descriptor and get a read-only ndarray view
    at :attr:`table` — zero copies, one physical table for the fleet.
    """

    def __init__(self, shm: shared_memory.SharedMemory, table: np.ndarray, owner: bool):
        self._shm = shm
        self.table = table
        self._owner = owner

    @classmethod
    def create(cls, table: np.ndarray) -> "SharedLogitsTable":
        table = np.ascontiguousarray(table)
        shm = shared_memory.SharedMemory(create=True, size=table.nbytes)
        view = np.ndarray(table.shape, dtype=table.dtype, buffer=shm.buf)
        view[:] = table
        view.flags.writeable = False
        return cls(shm, view, owner=True)

    @classmethod
    def attach(cls, name: str, shape: Tuple[int, ...], dtype: str) -> "SharedLogitsTable":
        # Python 3.11's SharedMemory registers with the resource tracker
        # on *attach* too, and the tracker (shared with the parent after
        # fork) keeps one flat set of names — a second attacher's
        # unregister would race the first's into a tracker KeyError, and
        # not unregistering makes the tracker destroy the segment under
        # the parent when a worker exits.  Attach without registering:
        # the creating parent is the sole owner of cleanup.
        with _ATTACH_LOCK:
            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        view = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf)
        view.flags.writeable = False
        return cls(shm, view, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def descriptor(self) -> Tuple[str, Tuple[int, ...], str]:
        """``(name, shape, dtype)`` — everything :meth:`attach` needs."""
        return self._shm.name, tuple(self.table.shape), str(self.table.dtype)

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self.table = None
        try:
            self._shm.close()
        except BufferError:
            # A live numpy view still references the buffer somewhere;
            # the mapping is reclaimed when the process exits.
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after every close)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass


# ----------------------------------------------------------------------
# Worker process body
# ----------------------------------------------------------------------
def _answer(engine: PredictionEngine, payload) -> np.ndarray:
    """One request payload -> logits; raises ServingError on bad input."""
    kind = payload[0]
    if kind == "nodes":
        return engine.predict_nodes(payload[1])
    if kind == "inductive":
        return engine.predict_inductive(payload[1], payload[2])
    raise ReplicaError(f"unknown payload kind {kind!r}")


def replica_main(
    index: int,
    artifact,
    graph,
    engine_kwargs: Optional[dict],
    table_descriptor: Tuple[str, Tuple[int, ...], str],
    request_queue,
    response_queue,
) -> None:
    """Run one replica: build the engine, attach the table, serve the queue.

    Message protocol (one reply per message, in order):

    ==================================  =================================
    ``("predict", [payload, ...])``     ``("results", [(ok, value), ...])``
                                        — per-payload isolation: a bad
                                        payload errors alone, the rest
                                        of the batch answers normally
    ``("ping",)``                       ``("pong", info_dict)``
    ``("reload", path, descriptor)``    ``("reloaded", info)`` or
                                        ``("error", message)``
    ``("shutdown",)``                   ``("bye",)`` then return
    ==================================  =================================
    """
    # Ctrl-C in a terminal signals the whole foreground process group;
    # shutdown is the parent's job (the shutdown message, or terminate),
    # so the worker ignoring SIGINT turns ^C into a clean exit instead
    # of N interleaved KeyboardInterrupt tracebacks.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main thread (in-process tests)
        pass
    shared = None
    try:
        engine = PredictionEngine(artifact, graph, **(engine_kwargs or {}))
        shared = SharedLogitsTable.attach(*table_descriptor)
        engine.install_logits_table(shared.table)
    except Exception as error:  # fail fast: the frontend awaits this handshake
        response_queue.put(("error", f"{type(error).__name__}: {error}"))
        return
    response_queue.put(("ready", {"replica": index, "pid": __import__("os").getpid()}))

    served = 0
    artifact_version = 0
    while True:
        message = request_queue.get()
        op = message[0]
        if op == "shutdown":
            shared.close()
            response_queue.put(("bye",))
            return
        if op == "ping":
            response_queue.put(
                ("pong", {"replica": index, "served": served, "artifact_version": artifact_version})
            )
            continue
        if op == "reload":
            _, path, descriptor = message
            try:
                fresh_engine = PredictionEngine(path, engine.graph, **(engine_kwargs or {}))
                fresh_shared = SharedLogitsTable.attach(*descriptor)
                fresh_engine.install_logits_table(fresh_shared.table)
            except Exception as error:
                # Keep serving the old artifact: a bad reload must not
                # take the replica down mid-swap.
                response_queue.put(("error", f"{type(error).__name__}: {error}"))
                continue
            old = shared
            engine, shared = fresh_engine, fresh_shared
            artifact_version += 1
            old.close()
            response_queue.put(
                ("reloaded", {"replica": index, "artifact_version": artifact_version})
            )
            continue
        if op == "predict":
            results = []
            for payload in message[1]:
                try:
                    results.append((True, _answer(engine, payload)))
                except Exception as error:
                    results.append((False, error))
            served += len(results)
            response_queue.put(("results", results))
            continue
        response_queue.put(("error", f"unknown op {op!r}"))
