"""The prediction engine: one loaded artifact answering node queries.

A :class:`PredictionEngine` is the compute half of the serving stack —
no sockets, no queues, just "artifact + graph in, logits out":

* **transductive** queries (nodes the training graph contains) are
  served from a logits *table* — one eval-mode, tape-free forward pass
  over the whole graph (the full-batch models compute every node's
  logits in one shot anyway), cached after the first computation.  For
  RDD ensemble artifacts the table is the α-weighted average of the
  stored member logits, exactly :meth:`EnsembleModel.embeddings`.
* **inductive** queries (nodes unseen at training time, given as a
  feature vector plus edges into the known graph) build a query
  subgraph around the attachment points — sampled layer-wise
  neighborhoods in the style of ``minibatch_sage``, carved out with
  :func:`repro.graph.subgraph.induced_subgraph` — run the model on that
  small graph, and read off the query node's row.  Results are memoized
  in a :class:`~repro.serving.cache.TieredCache` keyed by the query's
  content: a cold LRU admission tier under a frequency-promoted hot
  tier, so repeated queries (health probes, hot entities) cost a dict
  lookup and cold scan bursts cannot evict the hot set.

In a multi-replica deployment the transductive table is computed once
and placed in ``multiprocessing.shared_memory``; worker processes call
:meth:`install_logits_table` to serve from the shared copy instead of
paying one table (and one forward) per process — see
:mod:`repro.serving.replica`.

Both paths run under ``no_grad`` and are deterministic: the same query
against the same artifact returns bitwise-identical logits, which is the
contract the micro-batcher's "batched == unbatched" guarantee rests on.

**Streaming mode** (``streaming=True``, single-model GCN artifacts only)
makes the engine delta-aware: :meth:`PredictionEngine.apply_delta`
installs an updated graph (CSR and cached ``Â`` maintained incrementally
by :func:`repro.graph.delta.apply_delta`), bumps a monotonic graph
version, and marks stale exactly the logits rows within the model's
receptive field — the k-hop closure of the dirty nodes, k = the layer
count — of everything edited since the table was last consistent.
Stale rows are recomputed lazily (the first query touching one triggers
a refresh) or eagerly by a
:class:`~repro.serving.refresh.BackgroundRefresher`.  The table itself
is maintained by the row-pure :class:`~repro.serving.refresh.RowRefresher`
forward, so a refreshed table is bitwise identical to a from-scratch
streaming rebuild on the updated graph.  All public query and delta
entry points serialize on one reentrant lock; the inductive LRU key
includes the graph version, so a pre-delta neighborhood can never be
served after the graph changed.
"""

from __future__ import annotations

import hashlib
import threading
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

import repro.obs as obs
from repro.errors import ReproError
from repro.graph.delta import GraphDelta, apply_delta, k_hop_rows
from repro.graph.graph import Graph
from repro.graph.subgraph import induced_subgraph
from repro.models.base import softmax_rows
from repro.obs.metrics import MetricRegistry
from repro.sampling import layerwise_neighborhood
from repro.serving.artifacts import ModelArtifact, graph_fingerprint, load_artifact
from repro.serving.cache import TieredCache
from repro.serving.refresh import RowRefresher

NodeIds = Sequence[int]


class ServingError(ReproError):
    """A serving request is malformed or unanswerable by this engine."""


class PredictionEngine:
    """Load an artifact once; answer node queries forever after.

    Parameters
    ----------
    artifact:
        A :class:`~repro.serving.artifacts.ModelArtifact` or a path to one.
    graph:
        The serving graph.  Must structurally match the artifact's
        training graph (checked via the stored fingerprint unless
        ``verify_graph=False``); it is cast to the artifact's compute
        dtype and seeded with the artifact's cached ``Â``.
    cache_logits:
        Keep the full logits table after the first forward (the
        transductive fast path).  Disable for benchmark/stateless modes
        where every batch should pay its own forward.
    fanout:
        Neighbors sampled per hop when building inductive query
        subgraphs.
    num_hops:
        Receptive-field depth of the query subgraph; defaults to the
        model's layer count (2 when it cannot be inferred).
    inductive_cache_size:
        Entries kept in the inductive cache's cold LRU tier (0 disables
        memoization entirely, hot tier included).
    hot_cache_size:
        Entries in the frequency-promoted hot tier sitting above the
        LRU; queries recurring ``promote_after=2`` times move up and
        are shielded from cold-scan eviction.
    seed:
        Base seed for the deterministic per-query neighbor sampling.
    streaming:
        Accept :meth:`apply_delta` and maintain the logits table
        incrementally (single-model GCN artifacts with
        ``cache_logits=True`` only).  The table is then computed by the
        row-pure streaming forward, which can differ from the static
        table in the last ulp — compare streaming engines with streaming
        engines.
    """

    def __init__(
        self,
        artifact: Union[ModelArtifact, str, Path],
        graph: Graph,
        *,
        verify_graph: bool = True,
        cache_logits: bool = True,
        fanout: int = 10,
        num_hops: Optional[int] = None,
        inductive_cache_size: int = 128,
        hot_cache_size: int = 32,
        seed: int = 0,
        streaming: bool = False,
    ):
        if not isinstance(artifact, ModelArtifact):
            artifact = load_artifact(artifact)
        self.artifact = artifact
        graph = graph.astype(artifact.dtype)
        if verify_graph:
            artifact.check_graph(graph)
        if graph._normalized is None and (
            graph_fingerprint(graph)["structure_sha256"]
            == artifact.graph_fingerprint["structure_sha256"]
        ):
            # The artifact ships the propagation matrix; installing it
            # skips the normalization pass in the serving process.  Only
            # when the structures match — an engine built on an *updated*
            # graph (post-delta rebuild parity checks) must normalize its
            # own adjacency, not inherit the training graph's.
            graph._normalized = artifact.normalized_adjacency(dtype=artifact.dtype)
        self.graph = graph
        self.cache_logits = cache_logits
        self.fanout = int(fanout)
        self.seed = int(seed)
        self._table: Optional[np.ndarray] = None
        self.metrics = MetricRegistry()
        # 0 cold entries disables the cache outright (hot tier included):
        # the stateless-deployment contract of inductive_cache_size=0.
        self._inductive_cache = TieredCache(
            hot_size=int(hot_cache_size) if int(inductive_cache_size) > 0 else 0,
            cold_size=int(inductive_cache_size),
            metrics=self.metrics,
            prefix="inductive_cache",
        )

        if artifact.is_ensemble:
            self._model = None
            self._ensemble = artifact.ensemble()
            self._member_models = None  # built lazily on first inductive query
        else:
            self._model = artifact.build_model(graph)
            self._ensemble = None
            self._member_models = None
        self._num_hops = int(num_hops) if num_hops is not None else self._infer_hops()

        self.streaming = bool(streaming)
        self._version = 0
        self._lock = threading.RLock()
        self._delta_listeners: List[Callable[[int], None]] = []
        self._refresher: Optional[RowRefresher] = None
        self._stale: Optional[np.ndarray] = None
        self._base_adjacency: Optional[sp.csr_matrix] = None
        self._pending_dirty = np.empty(0, dtype=np.int64)
        if self.streaming:
            if artifact.is_ensemble or artifact.spec is None or artifact.spec.kind != "gcn":
                raise ServingError(
                    f"streaming mode needs a single-model GCN artifact, "
                    f"got {self.model_kind!r}"
                )
            if not cache_logits:
                raise ServingError("streaming mode maintains the logits table; "
                                   "it requires cache_logits=True")
            self._refresher = RowRefresher(self._model, artifact.dtype)
            self._stale = np.zeros(graph.num_nodes, dtype=bool)
            self._base_adjacency = graph.adjacency

    # ------------------------------------------------------------------
    # Introspection (for /healthz)
    # ------------------------------------------------------------------
    @property
    def model_kind(self) -> str:
        return self.artifact.model_kind

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_classes(self) -> int:
        table = self.logits_table()
        return int(table.shape[1])

    def _infer_hops(self) -> int:
        spec = self.artifact.spec
        if spec is not None:
            if "num_layers" in spec.options:
                return int(spec.options["num_layers"])
            if "k_hops" in spec.options:
                return int(spec.options["k_hops"])
        return 2

    # ------------------------------------------------------------------
    # Streaming: graph deltas, versioning, refresh
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic graph version (0 at construction, +1 per delta)."""
        return self._version

    def add_delta_listener(self, listener: Callable[[int], None]) -> None:
        """Register ``listener(version)`` to run after every applied delta
        (outside the engine lock)."""
        self._delta_listeners.append(listener)

    def remove_delta_listener(self, listener: Callable[[int], None]) -> None:
        if listener in self._delta_listeners:
            self._delta_listeners.remove(listener)

    def apply_delta(self, delta: GraphDelta) -> int:
        """Install a graph delta; returns the new graph version.

        The updated graph (incrementally-maintained ``Â`` included)
        replaces :attr:`graph` atomically under the engine lock, and the
        rows of the logits table within the model's receptive field of
        *everything* edited since the last refresh are marked stale.
        Nothing is recomputed here — that happens lazily on the next
        query touching a stale row, or eagerly in a
        :class:`~repro.serving.refresh.BackgroundRefresher` cycle.
        """
        if not self.streaming:
            raise ServingError(
                "apply_delta on a static engine; construct with streaming=True"
            )
        with self._lock:
            with obs.span("serving:apply_delta", version=self._version + 1):
                dirty = delta.dirty_nodes(self.graph.num_nodes)
                updated = apply_delta(self.graph, delta)
                self.graph = updated
                self._version += 1
                self._pending_dirty = np.union1d(self._pending_dirty, dirty)
                stale_rows = k_hop_rows(
                    [self._base_adjacency, updated.adjacency],
                    self._pending_dirty,
                    self._refresher.num_layers,
                )
                stale = np.zeros(updated.num_nodes, dtype=bool)
                stale[stale_rows] = True
                self._stale = stale
                self.metrics.inc("deltas_total")
                self.metrics.inc("rows_invalidated_total", int(stale.sum()))
                version = self._version
        for listener in list(self._delta_listeners):
            listener(version)
        return version

    def refresh(self) -> int:
        """Bring every stale logits row up to date; returns rows recomputed.

        After this the table matches, bitwise, what a fresh streaming
        engine on the current graph would compute, and the engine's
        "last consistent" baseline advances to the current graph.
        """
        if not self.streaming:
            raise ServingError("refresh on a static engine; construct with streaming=True")
        with self._lock:
            graph = self.graph
            if self._refresher.table is None:
                self._table = self._refresher.rebuild(graph)
                refreshed = graph.num_nodes
            elif self._stale.any():
                hops = self._refresher.num_layers
                closures = [
                    k_hop_rows(
                        [self._base_adjacency, graph.adjacency], self._pending_dirty, l
                    )
                    for l in range(hops + 1)
                ]
                refreshed = self._refresher.refresh(graph, closures)
                self._table = self._refresher.table
                self.metrics.inc("rows_refreshed_total", refreshed)
            else:
                return 0
            self._base_adjacency = graph.adjacency
            self._pending_dirty = np.empty(0, dtype=np.int64)
            self._stale = np.zeros(graph.num_nodes, dtype=bool)
            return refreshed

    def _ensure_fresh(self, nodes: Optional[np.ndarray]) -> None:
        """Lazy-refresh guard (call with the lock held): refresh if the
        table is missing or any requested row is stale.  Queries that
        touch only clean rows cost a mask lookup and nothing else."""
        if self._refresher.table is None:
            self.refresh()
        elif self._stale.any() and (nodes is None or self._stale[nodes].any()):
            self.metrics.inc("stale_row_hits_total")
            self.refresh()

    # ------------------------------------------------------------------
    # Transductive path
    # ------------------------------------------------------------------
    def install_logits_table(self, table: np.ndarray) -> None:
        """Serve transductive queries from a precomputed logits table.

        The replica tier's entry point: worker processes attach the one
        shared-memory copy of the table (computed once by the parent)
        instead of each paying a full forward pass and holding a private
        copy.  The array is installed as-is — zero-copy for a
        shared-memory view; callers pass read-only views so a bug in one
        replica cannot corrupt its siblings.
        """
        if self.streaming:
            raise ServingError(
                "streaming engines maintain their own table; "
                "install_logits_table is for static replicas"
            )
        table = np.asarray(table)
        if table.ndim != 2 or table.shape[0] != self.graph.num_nodes:
            raise ServingError(
                f"logits table must have shape ({self.graph.num_nodes}, k), "
                f"got {table.shape}"
            )
        with self._lock:
            self._table = table
            self.cache_logits = True

    def logits_table(self) -> np.ndarray:
        """Per-node logits over the whole serving graph (cached)."""
        if self.streaming:
            with self._lock:
                self._ensure_fresh(None)
                return self._table
        if self._table is not None:
            return self._table
        if self._ensemble is not None:
            table = self._ensemble.embeddings()
        else:
            table = self._model.predict_logits(self.graph)
        if self.cache_logits:
            self._table = table
        return table

    def _check_nodes(self, node_ids: NodeIds) -> np.ndarray:
        nodes = np.asarray(node_ids, dtype=np.int64)
        if nodes.ndim != 1 or nodes.size == 0:
            raise ServingError(f"nodes must be a nonempty 1-D id list, got shape {nodes.shape}")
        if nodes.min() < 0 or nodes.max() >= self.graph.num_nodes:
            raise ServingError(
                f"node ids must be in [0, {self.graph.num_nodes}), got "
                f"[{nodes.min()}, {nodes.max()}]"
            )
        return nodes

    def predict_nodes(self, node_ids: NodeIds) -> np.ndarray:
        """Logits rows for known nodes, shape ``(len(node_ids), k)``."""
        if self.streaming:
            return self.predict_nodes_versioned(node_ids)[0]
        return self.logits_table()[self._check_nodes(node_ids)]

    def predict_nodes_versioned(self, node_ids: NodeIds) -> Tuple[np.ndarray, int]:
        """Like :meth:`predict_nodes`, plus the graph version answered at.

        The rows and the version are read under one lock hold, so the
        pair is consistent even while deltas land concurrently — the
        attribution guarantee the chaos tests check.
        """
        with self._lock:
            nodes = self._check_nodes(node_ids)
            if self.streaming:
                self._ensure_fresh(nodes)
                return self._table[nodes], self._version
            return self.logits_table()[nodes], self._version

    def predict_many(self, requests: Sequence[NodeIds]) -> List[np.ndarray]:
        """Answer several node-id requests off **one** shared table.

        This is the micro-batcher's batch function: the forward pass (or
        table lookup) is paid once for the whole batch.  Id validation
        happens up front so one malformed request cannot waste the
        batch's forward.
        """
        return self.predict_many_versioned(requests)[0]

    def predict_many_versioned(
        self, requests: Sequence[NodeIds]
    ) -> Tuple[List[np.ndarray], int]:
        """Batched :meth:`predict_nodes_versioned`: one table, one version."""
        with self._lock:
            checked = [self._check_nodes(request) for request in requests]
            if self.streaming:
                self._ensure_fresh(np.concatenate(checked) if checked else None)
                table = self._table
            else:
                table = self.logits_table()
            return [table[nodes] for nodes in checked], self._version

    def predict_proba_nodes(self, node_ids: NodeIds) -> np.ndarray:
        return softmax_rows(self.predict_nodes(node_ids))

    # ------------------------------------------------------------------
    # Inductive path
    # ------------------------------------------------------------------
    def predict_inductive(self, features, neighbor_ids: NodeIds) -> np.ndarray:
        """Logits for one unseen node attached to known nodes.

        ``features`` is the query node's feature vector; ``neighbor_ids``
        are the known nodes it links to.  Deterministic for a given
        engine seed: the neighbor sampling RNG is derived from the query
        content, so the same query always sees the same subgraph.
        """
        with self._lock:
            graph = self.graph
            features = np.asarray(features, dtype=self.artifact.dtype)
            if features.shape != (graph.num_features,):
                raise ServingError(
                    f"features must have shape ({graph.num_features},), got {features.shape}"
                )
            neighbors = np.unique(self._check_nodes(neighbor_ids))

            key = self._inductive_key(features, neighbors)
            cached = self._inductive_cache.get(key)
            if cached is not None:
                return cached

            logits = self._run_inductive(graph, features, neighbors, key)
            self._inductive_cache.put(key, logits)
            return logits

    def _inductive_key(self, features: np.ndarray, neighbors: np.ndarray) -> bytes:
        digest = hashlib.sha256()
        # The graph version participates in the key: an entry computed
        # against a pre-delta neighborhood must never satisfy the same
        # query after the graph changed (static engines stay at 0, so
        # their keys are unchanged).
        digest.update(np.int64(self._version).tobytes())
        digest.update(features.tobytes())
        digest.update(neighbors.tobytes())
        return digest.digest()

    def _run_inductive(self, graph: Graph, features, neighbors, key: bytes) -> np.ndarray:
        context = self._sample_context(graph, neighbors, key)
        subgraph, mapping = induced_subgraph(graph, context, name="query")
        query_graph = _attach_query_node(subgraph, mapping, neighbors, features)
        # Cast so the query forward runs at the artifact's dtype end to end
        # (the fresh subgraph would otherwise normalize Â at float64).
        query_graph = query_graph.astype(self.artifact.dtype)
        if self._ensemble is not None:
            if self._member_models is None:
                self._member_models = self.artifact.member_models(graph)
            weights = self._ensemble.weights
            rows = np.stack(
                [model.predict_logits(query_graph)[-1] for model in self._member_models]
            )
            return np.einsum("t,tk->k", weights.astype(rows.dtype, copy=False), rows)
        return self._model.predict_logits(query_graph)[-1]

    def _sample_context(self, graph: Graph, neighbors: np.ndarray, key: bytes) -> np.ndarray:
        """Layer-wise sampled neighborhood of the attachment points.

        Seeded from ``(engine seed, query digest)`` so the subgraph — and
        therefore the prediction — is a pure function of the query (the
        digest already folds in the graph version, so post-delta queries
        resample against the updated structure).
        """
        rng = np.random.default_rng((self.seed, int.from_bytes(key[:8], "big")))
        context = layerwise_neighborhood(
            graph.adjacency, neighbors, self.fanout, self._num_hops, rng
        )
        if context.size < 2:
            # A single isolated attachment point: induced_subgraph needs
            # two nodes, so pull in a deterministic partner (mirroring
            # its own isolated-node patch rule).
            partner = (int(context[0]) + 1) % graph.num_nodes
            context = np.union1d(context, [partner])
        return context


def _attach_query_node(
    subgraph: Graph, mapping: np.ndarray, neighbors: np.ndarray, features: np.ndarray
) -> Graph:
    """Append the query node (last index) to an induced context subgraph."""
    local = np.searchsorted(mapping, neighbors)
    n = subgraph.num_nodes
    extra_src = np.concatenate([np.full(len(local), n, dtype=np.int64), local])
    extra_dst = np.concatenate([local, np.full(len(local), n, dtype=np.int64)])
    base = subgraph.adjacency.tocoo()
    adjacency = sp.csr_matrix(
        (
            np.concatenate([base.data, np.ones(len(extra_src), dtype=base.data.dtype)]),
            (
                np.concatenate([base.row, extra_src]),
                np.concatenate([base.col, extra_dst]),
            ),
        ),
        shape=(n + 1, n + 1),
    )
    if sp.issparse(subgraph.features):
        stacked = sp.vstack([subgraph.features, sp.csr_matrix(features[None, :])]).tocsr()
    else:
        stacked = np.vstack([subgraph.features, features[None, :]])
    empty = np.empty(0, dtype=np.int64)
    return Graph(
        adjacency,
        stacked,
        np.zeros(n + 1, dtype=np.int64),
        empty,
        empty,
        empty,
        name=f"{subgraph.name}+query",
    )
