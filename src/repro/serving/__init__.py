"""Inference serving: model artifacts, prediction engine, batching, HTTP.

The subsystem that takes a trained RDD student or teacher from training
to traffic::

    from repro.serving import (
        ModelSpec, export_model_artifact, load_artifact,
        PredictionEngine, MicroBatcher, PredictionServer,
    )

    export_model_artifact("model.rddart", model, ModelSpec("gcn"), graph)
    engine = PredictionEngine("model.rddart", graph)
    PredictionServer(engine, port=8080).serve_forever()

or, from the command line, ``repro export`` + ``repro serve``.
"""

from repro.serving.artifacts import (
    ArtifactError,
    ModelArtifact,
    ModelSpec,
    export_ensemble_artifact,
    export_model_artifact,
    graph_fingerprint,
    load_artifact,
    model_kinds,
    register_model_kind,
)
from repro.serving.batching import BatcherClosed, MicroBatcher
from repro.serving.engine import PredictionEngine, ServingError
from repro.serving.refresh import BackgroundRefresher, RowRefresher
from repro.serving.metrics import (
    MetricRegistry,
    ServingMetrics,
    WindowHistogram,
    prometheus_text,
)
from repro.serving.server import PredictionServer

__all__ = [
    "ArtifactError",
    "BackgroundRefresher",
    "BatcherClosed",
    "RowRefresher",
    "MetricRegistry",
    "MicroBatcher",
    "ModelArtifact",
    "ModelSpec",
    "PredictionEngine",
    "PredictionServer",
    "ServingError",
    "ServingMetrics",
    "WindowHistogram",
    "export_ensemble_artifact",
    "export_model_artifact",
    "graph_fingerprint",
    "load_artifact",
    "model_kinds",
    "prometheus_text",
    "register_model_kind",
]
