"""Inference serving: model artifacts, prediction engine, batching, HTTP.

The subsystem that takes a trained RDD student or teacher from training
to traffic::

    from repro.serving import (
        ModelSpec, export_model_artifact, load_artifact,
        PredictionEngine, MicroBatcher, PredictionServer,
    )

    export_model_artifact("model.rddart", model, ModelSpec("gcn"), graph)
    engine = PredictionEngine("model.rddart", graph)
    PredictionServer(engine, port=8080).serve_forever()

or, from the command line, ``repro export`` + ``repro serve``.  For
multi-process serving — N replica workers sharing one shared-memory
logits table behind a bounded admission queue — build a
:class:`ReplicaFrontend` instead of an engine and hand it to the server
(``repro serve --replicas N``)::

    frontend = ReplicaFrontend("model.rddart", graph, replicas=4)
    PredictionServer(frontend=frontend, port=8080).serve_forever()
"""

from repro.serving.artifacts import (
    ArtifactError,
    ModelArtifact,
    ModelSpec,
    export_ensemble_artifact,
    export_model_artifact,
    graph_fingerprint,
    load_artifact,
    model_kinds,
    register_model_kind,
)
from repro.serving.batching import BatcherClosed, MicroBatcher, Overloaded
from repro.serving.cache import TieredCache
from repro.serving.engine import PredictionEngine, ServingError
from repro.serving.frontend import ReplicaFrontend
from repro.serving.refresh import BackgroundRefresher, RowRefresher
from repro.serving.replica import ReplicaError, SharedLogitsTable
from repro.serving.metrics import (
    MetricRegistry,
    ServingMetrics,
    WindowHistogram,
    merge_counter_snapshots,
    prometheus_text,
)
from repro.serving.server import PredictionServer

__all__ = [
    "ArtifactError",
    "BackgroundRefresher",
    "BatcherClosed",
    "RowRefresher",
    "MetricRegistry",
    "MicroBatcher",
    "ModelArtifact",
    "ModelSpec",
    "Overloaded",
    "PredictionEngine",
    "PredictionServer",
    "ReplicaError",
    "ReplicaFrontend",
    "ServingError",
    "ServingMetrics",
    "SharedLogitsTable",
    "TieredCache",
    "WindowHistogram",
    "merge_counter_snapshots",
    "export_ensemble_artifact",
    "export_model_artifact",
    "graph_fingerprint",
    "load_artifact",
    "model_kinds",
    "prometheus_text",
    "register_model_kind",
]
