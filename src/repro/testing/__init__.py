"""Testing infrastructure shared by the runtime and the test suite.

:mod:`repro.testing.faults` provides the deterministic fault-injection
layer: the crash-safe runtime (checkpointing, the parallel executor, the
training loop) declares named *fault points*, and chaos tests activate
:class:`FaultPlan` rules to fire worker crashes, pickle errors, and
checkpoint corruption at exact, reproducible moments.
"""

from repro.testing.faults import (
    CheckpointFault,
    FaultPlan,
    InjectedFault,
    PickleFault,
    TransientFault,
    WorkerCrash,
    active_plan,
    fault_point,
    flip_byte,
    inject,
    truncate_file,
)

__all__ = [
    "CheckpointFault",
    "FaultPlan",
    "InjectedFault",
    "PickleFault",
    "TransientFault",
    "WorkerCrash",
    "active_plan",
    "fault_point",
    "flip_byte",
    "inject",
    "truncate_file",
]
