"""Deterministic fault injection for crash-safety testing.

The training runtime fails in a handful of well-understood ways: a
worker process dies mid-task, a task will not pickle, a checkpoint write
is interrupted, a transient error clears on retry.  Reproducing those
failures with real process kills and disk races makes tests flaky; this
module makes them *deterministic* instead.

The runtime declares named **fault points** — :func:`fault_point` calls
at the places where real deployments break (task execution, the harness
seed loop, the RDD student loop, checkpoint writes, training epochs).
In production the call is a no-op costing one ``None`` check.  A test
activates a :class:`FaultPlan` with :func:`inject`, and matching rules
fire an exception (or run an arbitrary action, e.g. corrupting a file)
at an exact hit index or context key — never at random — so every chaos
test reproduces bit-for-bit.

Registered sites (``site`` → where it fires):

====================  ====================================================
``parallel:task``     before each :func:`repro.training.parallel.parallel_map`
                      task runs (``key`` = task index)
``harness:seed``      before each harness seed cell (``key`` = seed index)
``rdd:student``       before each RDD student trains (``key`` = student t)
``grid:cell``         before each grid-search cell (``key`` = cell index)
``trainer:epoch``     top of each training epoch (``key`` = epoch)
``checkpoint:save``   before a checkpoint generation is written
                      (``key`` = checkpoint name)
``serving:request``   before a micro-batched serving request executes
                      (``key`` = request arrival sequence number); the
                      batching loop survives the failure, only that
                      request's future errors
``serving:refresh``   top of each :class:`BackgroundRefresher` cycle
                      (``key`` = cycle index); a failed cycle is counted
                      and swallowed — the engine degrades to lazy
                      refresh until the next cycle
====================  ====================================================

Plans are plain Python state in the parent process.  Fork-spawned
workers inherit the active plan at pool-creation time, so keyed rules
(``key=2`` fires for task 2) behave identically in serial and pooled
runs; hit-count based rules (``at=3``) are only deterministic in the
process that counts the hits — prefer keyed rules for worker-side sites.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Tuple, Union

from repro.errors import ReproError


class InjectedFault(ReproError):
    """Base class for all deliberately injected failures."""


class WorkerCrash(InjectedFault):
    """Simulates a worker process dying mid-task."""


class PickleFault(InjectedFault):
    """Simulates a payload that fails to serialize."""


class TransientFault(InjectedFault):
    """A failure expected to clear on retry."""


class CheckpointFault(InjectedFault):
    """Simulates a crash while persisting a checkpoint."""


@dataclass
class FaultRule:
    """One deterministic trigger: fire at ``site`` for matching hits.

    Attributes
    ----------
    site:
        Fault-point name this rule listens on.
    key:
        When not ``None``, only hits whose ``key`` equals this fire
        (e.g. a specific task index).  ``None`` matches every key.
    at:
        Hit indices (0-based, counted per rule over matching hits) at
        which the rule fires; ``None`` fires on every matching hit.
    exc:
        Exception type raised when the rule fires (ignored if ``action``
        is set).
    action:
        Optional callable ``action(context) -> None`` run instead of
        raising — used e.g. to corrupt a checkpoint file whose path the
        fault point passes as context.
    """

    site: str
    key: object = None
    at: Optional[Tuple[int, ...]] = (0,)
    exc: type = WorkerCrash
    action: Optional[Callable[[dict], None]] = None
    hits: int = field(default=0, init=False)
    fired: int = field(default=0, init=False)

    def matches(self, site: str, key: object) -> bool:
        return site == self.site and (self.key is None or self.key == key)

    def visit(self, context: dict) -> None:
        """Count one matching hit; fire if this hit index is armed."""
        index = self.hits
        self.hits += 1
        if self.at is not None and index not in self.at:
            return
        self.fired += 1
        if self.action is not None:
            self.action(context)
            return
        raise self.exc(
            f"injected fault at {self.site!r} (key={context.get('key')!r}, hit={index})"
        )


class FaultPlan:
    """An ordered collection of :class:`FaultRule` triggers."""

    def __init__(self) -> None:
        self.rules: List[FaultRule] = []

    def fail(
        self,
        site: str,
        key: object = None,
        at: Union[int, Iterable[int], None] = 0,
        exc: type = WorkerCrash,
        action: Optional[Callable[[dict], None]] = None,
    ) -> "FaultPlan":
        """Register a trigger; returns ``self`` so rules chain fluently."""
        if at is not None:
            at = (at,) if isinstance(at, int) else tuple(int(i) for i in at)
        self.rules.append(FaultRule(site=site, key=key, at=at, exc=exc, action=action))
        return self

    def visit(self, site: str, key: object, context: dict) -> None:
        for rule in self.rules:
            if rule.matches(site, key):
                rule.visit(context)

    def fired(self, site: Optional[str] = None) -> int:
        """Total number of fires, optionally restricted to one site."""
        return sum(rule.fired for rule in self.rules if site is None or rule.site == site)


# The plan consulted by fault_point; None = production (all points no-op).
_ACTIVE: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The currently injected plan (``None`` outside :func:`inject`)."""
    return _ACTIVE


def fault_point(site: str, key: object = None, **context) -> None:
    """Declare a named failure point; no-op unless a plan is injected."""
    plan = _ACTIVE
    if plan is not None:
        context["key"] = key
        plan.visit(site, key, context)


@contextmanager
def inject(plan: FaultPlan):
    """Activate ``plan`` for the duration of the ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# File-corruption helpers (simulate interrupted / bit-rotted writes)
# ----------------------------------------------------------------------
def truncate_file(path, keep_fraction: float = 0.5) -> None:
    """Truncate ``path`` to a fraction of its size (a half-written file)."""
    path = Path(path)
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(max(0, int(size * keep_fraction)))


def flip_byte(path, offset: int = -1) -> None:
    """XOR one byte of ``path`` (bit rot); negative offsets count from the end."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty file {path}")
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
