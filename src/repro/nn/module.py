"""Module/Parameter abstractions, mirroring the familiar torch.nn API.

A :class:`Module` owns :class:`Parameter` tensors and child modules, and
exposes recursive parameter collection, train/eval mode switching, and
state-dict save/load for ensembling and snapshotting.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as trainable state of a :class:`Module`."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for optimization,
    gradient clearing, and state serialization.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear gradients on every parameter.

        With ``set_to_none`` (the default) the grad arrays are dropped —
        the next backward allocates (or arena-recycles) fresh buffers —
        instead of being zero-filled in place.
        """
        for param in self.parameters():
            param.zero_grad(set_to_none=set_to_none)

    def num_parameters(self) -> int:
        """Total number of scalar trainable values."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Put this module (recursively) into training mode."""
        self.training = True
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        """Put this module (recursively) into evaluation mode."""
        self.training = False
        for child in self._modules.values():
            child.eval()
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.shape:
                raise ValueError(f"parameter {name!r}: shape {value.shape} != expected {param.shape}")
            param.data[...] = value

    # ------------------------------------------------------------------
    # Calling
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError("Module subclasses must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}(params={self.num_parameters()}, children=[{children}])"


class ModuleList(Module):
    """An indexable container that registers each element as a child."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
