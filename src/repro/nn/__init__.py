"""Minimal neural-network library on top of :mod:`repro.tensor`.

Provides modules/parameters, layers (dense, graph convolution, graph
attention, dropout), Glorot initializers, Adam/SGD optimizers, the cosine
γ schedule from the paper (Eq. 14), and validation early stopping.
"""

from repro.nn.init import glorot_normal, glorot_uniform, he_uniform, zeros
from repro.nn.layers import Dropout, GraphAttention, GraphConvolution, Linear
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.schedules import EarlyStopping, cosine_annealing_gamma, cosine_decay_lr, step_decay_lr

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "GraphConvolution",
    "GraphAttention",
    "Dropout",
    "Adam",
    "SGD",
    "Optimizer",
    "EarlyStopping",
    "cosine_annealing_gamma",
    "cosine_decay_lr",
    "step_decay_lr",
    "glorot_uniform",
    "glorot_normal",
    "he_uniform",
    "zeros",
]
