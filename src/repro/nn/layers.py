"""Neural-network layers: dense, graph convolution, attention, dropout.

The :class:`GraphConvolution` layer implements Kipf & Welling's propagation
rule (paper Eq. 1): ``H' = act(Â H W + b)`` where ``Â`` is the
symmetrically normalized adjacency with self-loops, supplied as a constant
scipy sparse matrix.  :class:`GraphAttention` implements a single-head GAT
layer on the edge list using segment-softmax attention.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import fused, ops
from repro.tensor.sparse import sparse_dense_matmul, sparse_feature_matmul, spmm
from repro.tensor.tensor import Tensor, as_tensor, is_grad_enabled

FeatureInput = Union[Tensor, np.ndarray, sp.spmatrix]


def _feature_matmul(features: FeatureInput, weight: Parameter) -> Tensor:
    """``features @ weight`` accepting dense tensors or constant sparse features."""
    if sp.issparse(features):
        return sparse_feature_matmul(features, weight)
    return ops.matmul(as_tensor(features), weight)


def _raw_data(x: FeatureInput):
    """Unwrap a dense/sparse feature input to its raw array for inference."""
    return x.data if isinstance(x, Tensor) else x


def _affine_inference(x: FeatureInput, weight: Parameter, bias) -> np.ndarray:
    """Raw-numpy ``x @ W (+ b)``; the product is fresh so the bias add is
    safe to do in place (bitwise identical to the ops path)."""
    data = _raw_data(x)
    if sp.issparse(data):
        out = sparse_dense_matmul(data.tocsr(), weight.data)
    else:
        out = data @ weight.data
    if bias is not None:
        out += bias.data
    return out


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform(rng, in_features, out_features), name="weight")
        self.bias = Parameter(init.zeros(out_features), name="bias") if bias else None

    def forward(self, x: FeatureInput) -> Tensor:
        if not is_grad_enabled():
            return Tensor._from_array(_affine_inference(x, self.weight, self.bias))
        if fused.fused_ops_enabled():
            return fused.linear(x, self.weight, self.bias)
        out = _feature_matmul(x, self.weight)
        if self.bias is not None:
            out = ops.add(out, self.bias)
        return out


class GraphConvolution(Module):
    """One GCN layer: ``Â (X W) + b`` with ``Â`` a constant sparse matrix."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform(rng, in_features, out_features), name="weight")
        self.bias = Parameter(init.zeros(out_features), name="bias") if bias else None

    def forward(self, adjacency: sp.spmatrix, x: FeatureInput) -> Tensor:
        if not is_grad_enabled():
            data = _raw_data(x)
            if sp.issparse(data):
                support = sparse_dense_matmul(data.tocsr(), self.weight.data)
            else:
                support = data @ self.weight.data
            out = sparse_dense_matmul(adjacency.tocsr(), support)
            if self.bias is not None:
                out += self.bias.data
            return Tensor._from_array(out)
        if fused.fused_ops_enabled():
            return fused.gcn_layer(adjacency, x, self.weight, self.bias)
        support = _feature_matmul(x, self.weight)
        out = spmm(adjacency, support)
        if self.bias is not None:
            out = ops.add(out, self.bias)
        return out


class GraphAttention(Module):
    """Single-head graph attention layer (Velickovic et al., 2018).

    Attention logits ``e_ij = LeakyReLU(a_src^T W h_i + a_dst^T W h_j)`` are
    computed per directed edge (including self loops), normalized with a
    per-destination segment softmax, and used to aggregate transformed
    neighbor features.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        negative_slope: float = 0.2,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.negative_slope = negative_slope
        self.weight = Parameter(init.glorot_uniform(rng, in_features, out_features), name="weight")
        self.attn_src = Parameter(init.glorot_uniform(rng, out_features, 1), name="attn_src")
        self.attn_dst = Parameter(init.glorot_uniform(rng, out_features, 1), name="attn_dst")

    def forward(self, edge_src: np.ndarray, edge_dst: np.ndarray, x: FeatureInput) -> Tensor:
        """Aggregate features along directed edges ``src -> dst``.

        ``edge_src`` / ``edge_dst`` must include self-loops so every node
        attends at least to itself.
        """
        num_nodes = x.shape[0]
        h = _feature_matmul(x, self.weight)
        score_src = ops.matmul(h, self.attn_src)  # (n, 1)
        score_dst = ops.matmul(h, self.attn_dst)
        logits = ops.leaky_relu(
            ops.add(ops.gather(score_src, edge_src), ops.gather(score_dst, edge_dst)),
            self.negative_slope,
        )
        weights = _segment_softmax(logits, edge_dst, num_nodes)
        messages = ops.mul(ops.gather(h, edge_src), weights)
        return ops.scatter_add_rows(messages, edge_dst, num_nodes)


def _segment_softmax(logits: Tensor, segments: np.ndarray, num_segments: int) -> Tensor:
    """Softmax over groups of rows sharing the same segment id.

    Implemented with differentiable ops: exponentiate shifted logits, sum
    per segment, and divide.  The shift uses per-segment maxima (constant
    w.r.t. gradients) for numerical stability.
    """
    segments = np.asarray(segments, dtype=np.int64)
    # Constant per-segment max for stability (gradient of a shift is zero-sum).
    seg_max = np.full((num_segments, 1), -np.inf)
    np.maximum.at(seg_max, segments, logits.data)
    shifted = ops.sub(logits, Tensor(seg_max[segments]))
    exps = ops.exp(shifted)
    seg_sum = ops.scatter_add_rows(exps, segments, num_segments)
    return ops.div(exps, ops.gather(seg_sum, segments))


class Dropout(Module):
    """Inverted dropout driven by an explicit random generator."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng

    def forward(self, x: FeatureInput) -> Tensor:
        if sp.issparse(x):
            if not self.training or self.rate <= 0.0:
                return x  # pass sparse features through untouched
            # Sparse dropout: mask the stored nonzeros and rescale.
            keep = 1.0 - self.rate
            if sp.isspmatrix_csr(x):
                # Masking keeps the sparsity structure, so reuse the
                # index arrays instead of round-tripping through COO
                # (same storage order, so the rng stream and the masked
                # values are bitwise identical to the COO path).  Draws
                # match the value dtype; float64 keeps the seed stream.
                if x.data.dtype == np.float32:
                    mask = self.rng.random(x.nnz, dtype=np.float32) < keep
                else:
                    mask = self.rng.random(x.nnz) < keep
                dropped = x.data * mask / keep
                if fused.fused_ops_enabled():
                    # The index arrays are reused verbatim from a valid
                    # CSR matrix, so re-validating them in __init__ is
                    # pure overhead on the train-step hot path; build
                    # the container directly around them.
                    out = sp.csr_matrix.__new__(sp.csr_matrix)
                    out.data = dropped
                    out.indices = x.indices
                    out.indptr = x.indptr
                    out._shape = x.shape
                    return out
                return sp.csr_matrix(
                    (dropped, x.indices, x.indptr),
                    shape=x.shape,
                    copy=False,
                )
            x = x.tocoo(copy=True)
            mask = self.rng.random(x.nnz) < keep
            x.data = x.data * mask / keep
            return x.tocsr()
        if fused.fused_ops_enabled():
            return fused.dropout(as_tensor(x), self.rate, self.rng, training=self.training)
        return ops.dropout(as_tensor(x), self.rate, self.rng, training=self.training)
