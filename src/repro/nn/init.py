"""Weight initialization schemes.

GCNs in the paper (following Kipf & Welling) use Glorot/Xavier
initialization; all initializers take an explicit ``numpy.random.Generator``
so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import get_default_dtype


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot (Xavier) uniform init for a ``(fan_in, fan_out)`` weight."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def glorot_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot (Xavier) normal init for a ``(fan_in, fan_out)`` weight."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def he_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He uniform init, appropriate for ReLU stacks."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(shape) -> np.ndarray:
    """All-zeros array (bias init) in the active compute dtype."""
    return np.zeros(shape, dtype=get_default_dtype())
