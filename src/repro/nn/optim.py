"""Gradient-based optimizers: SGD (with momentum) and Adam.

Both support decoupled L2 weight decay, which is how the paper's
``l2 regularization factor`` (5e-4 on the citation networks) is applied.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.setdefault(id(param), np.zeros_like(param.data))
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with L2 weight decay.

    This matches the paper's training setup: Adam with learning rate 0.01
    and an L2 factor folded into the gradient.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._first_moment.setdefault(id(param), np.zeros_like(param.data))
            v = self._second_moment.setdefault(id(param), np.zeros_like(param.data))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
