"""Gradient-based optimizers: SGD (with momentum) and Adam.

Both support decoupled L2 weight decay, which is how the paper's
``l2 regularization factor`` (5e-4 on the citation networks) is applied.

The update rules are written against per-parameter scratch buffers so a
step allocates nothing after the first call.  Every in-place expression
keeps the operand order and associativity of the textbook formulation,
so the trajectories are bitwise identical to the allocating version
(IEEE-754 addition and multiplication are commutative bitwise; only
reassociation would change results, and none is performed).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self._scratch: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def _buffers(self, param: Parameter) -> Tuple[np.ndarray, np.ndarray]:
        """Two reusable work arrays shaped like ``param`` (lazily built)."""
        buffers = self._scratch.get(id(param))
        if buffers is None:
            buffers = (np.empty_like(param.data), np.empty_like(param.data))
            self._scratch[id(param)] = buffers
        return buffers

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear gradients on all managed parameters.

        ``set_to_none=True`` (default) drops the grad arrays rather than
        zero-filling them; backward then writes into recycled arena
        buffers, so no time is spent zeroing memory that is about to be
        overwritten.
        """
        for param in self.parameters:
            param.zero_grad(set_to_none=set_to_none)

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            update, _ = self._buffers(param)
            if self.weight_decay:
                # grad + wd*p, written as wd*p + grad (addition commutes bitwise).
                np.multiply(param.data, self.weight_decay, out=update)
                update += grad
                grad = update
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = self._velocity[id(param)] = np.zeros_like(param.data)
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            np.multiply(grad, self.lr, out=update)
            param.data -= update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with L2 weight decay.

    This matches the paper's training setup: Adam with learning rate 0.01
    and an L2 factor folded into the gradient.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            buf_a, buf_b = self._buffers(param)
            if self.weight_decay:
                # grad + wd*p, written as wd*p + grad (addition commutes bitwise).
                np.multiply(param.data, self.weight_decay, out=buf_a)
                buf_a += grad
                grad = buf_a
            m = self._first_moment.get(id(param))
            if m is None:
                m = self._first_moment[id(param)] = np.zeros_like(param.data)
            v = self._second_moment.get(id(param))
            if v is None:
                v = self._second_moment[id(param)] = np.zeros_like(param.data)
            # m = beta1*m + (1-beta1)*grad
            np.multiply(grad, 1.0 - self.beta1, out=buf_b)
            m *= self.beta1
            m += buf_b
            # v = beta2*v + ((1-beta2)*grad)*grad  — same left-association
            # as the allocating `(1-beta2) * grad * grad`.
            np.multiply(grad, 1.0 - self.beta2, out=buf_b)
            buf_b *= grad
            v *= self.beta2
            v += buf_b
            # update = (lr * (m/bias1)) / (sqrt(v/bias2) + eps); grad (an
            # alias of buf_a when decayed) is dead past this point.
            np.divide(m, bias1, out=buf_a)
            np.multiply(buf_a, self.lr, out=buf_a)
            np.divide(v, bias2, out=buf_b)
            np.sqrt(buf_b, out=buf_b)
            buf_b += self.eps
            buf_a /= buf_b
            param.data -= buf_a
