"""Scalar schedules used during training.

The paper anneals the knowledge-transfer coefficient γ with a cosine
schedule (Eq. 14): ``γ(e) = γ_initial * (1 - cos(e * π / E))``, so early
epochs (inaccurate student) put little weight on the distillation and edge
losses, ramping up to ``2 γ_initial`` at the final epoch.
"""

from __future__ import annotations

import math


def cosine_annealing_gamma(initial: float, epoch: int, total_epochs: int) -> float:
    """γ schedule from paper Eq. 14.

    Parameters
    ----------
    initial:
        ``γ_initial`` (1, 3, 3, 0.01 for Cora/Citeseer/Pubmed/NELL in the paper).
    epoch:
        Current epoch ``e`` (0-based or 1-based both accepted; clipped to range).
    total_epochs:
        Total epochs ``E``; must be positive.
    """
    if total_epochs <= 0:
        raise ValueError(f"total_epochs must be positive, got {total_epochs}")
    e = min(max(epoch, 0), total_epochs)
    return initial * (1.0 - math.cos(e * math.pi / total_epochs))


def step_decay_lr(initial: float, epoch: int, step_size: int, factor: float = 0.5) -> float:
    """Learning rate halved (by ``factor``) every ``step_size`` epochs."""
    if step_size < 1:
        raise ValueError(f"step_size must be >= 1, got {step_size}")
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"factor must be in (0, 1], got {factor}")
    return initial * factor ** (max(epoch, 0) // step_size)


def cosine_decay_lr(initial: float, epoch: int, total_epochs: int, floor: float = 0.0) -> float:
    """Cosine-annealed learning rate from ``initial`` to ``floor``.

    The optimizer-LR counterpart of Eq. 14 (which anneals γ *up*); used by
    the Snapshot Ensemble baseline's restart cycles.
    """
    if total_epochs <= 0:
        raise ValueError(f"total_epochs must be positive, got {total_epochs}")
    e = min(max(epoch, 0), total_epochs)
    return floor + (initial - floor) * 0.5 * (1.0 + math.cos(e * math.pi / total_epochs))


class EarlyStopping:
    """Patience-based early stopping on a validation metric (higher = better).

    The paper trains each base model up to 500 epochs and stops when the
    validation accuracy has not improved for 20 consecutive evaluations.
    """

    def __init__(self, patience: int = 20):
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self.best_metric = -math.inf
        self.best_epoch = -1
        self._bad_steps = 0

    def update(self, metric: float, epoch: int) -> bool:
        """Record ``metric`` at ``epoch``; return True when training should stop."""
        if metric > self.best_metric:
            self.best_metric = metric
            self.best_epoch = epoch
            self._bad_steps = 0
            return False
        self._bad_steps += 1
        return self._bad_steps >= self.patience

    @property
    def improved(self) -> bool:
        """True immediately after an update that set a new best."""
        return self._bad_steps == 0
