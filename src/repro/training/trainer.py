"""Full-batch training loop with validation early stopping.

Matches the paper's budget: Adam (lr 0.01), up to 500 epochs, stop when
the validation accuracy has not improved for 20 evaluations, restore the
best checkpoint.  A pluggable ``loss_fn`` lets RDD and the KD baselines
inject their extra objective terms while reusing the same loop.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable, Optional

import repro.obs as obs
from repro.errors import TrainingError
from repro.graph.graph import Graph
from repro.models.base import GraphModel
from repro.nn.optim import Adam
from repro.nn.schedules import EarlyStopping
from repro.tensor.functional import accuracy, masked_cross_entropy_logits
from repro.tensor.fused import use_fused_ops
from repro.tensor.tensor import GradArena, Tensor
from repro.testing.faults import fault_point
from repro.training.records import TrainResult

# Signature: loss_fn(model, logits, epoch) -> scalar Tensor.
LossFn = Callable[[GraphModel, Tensor, int], Tensor]


def _callback_wants_logits(callback: Callable) -> bool:
    """Whether an epoch callback accepts a third (eval-logits) argument.

    Legacy callbacks use ``(epoch, model)``; newer ones take
    ``(epoch, model, eval_logits)`` so they can share the trainer's
    eval-mode forward instead of running their own.
    """
    try:
        params = inspect.signature(callback).parameters.values()
    except (TypeError, ValueError):
        return False
    positional = 0
    for param in params:
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            return True
        if param.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
    return positional >= 3


class Trainer:
    """Reusable full-batch trainer.

    Parameters
    ----------
    max_epochs:
        Upper bound on training epochs (paper: 500).
    patience:
        Early-stopping patience on validation accuracy (paper: 20).
    lr / weight_decay:
        Adam settings (paper: 0.01 and 5e-4 on citation networks).
    record_history:
        When True the returned :class:`TrainResult` carries per-epoch
        train/val metrics (used by the examples and diagnostics).
    fused:
        ``True``/``False`` forces the fused training-step kernels on or
        off for the duration of :meth:`fit`; ``None`` (default) keeps
        the process-wide setting (fused on).  Both paths are bitwise
        identical — the flag exists for differential testing and
        benchmarking the legacy op-by-op tape.
    """

    def __init__(
        self,
        max_epochs: int = 300,
        patience: int = 20,
        lr: float = 0.01,
        weight_decay: float = 5e-4,
        record_history: bool = False,
        min_epochs: Optional[int] = None,
        share_eval_forward: bool = True,
        fused: Optional[bool] = None,
    ):
        if max_epochs < 1:
            raise TrainingError(f"max_epochs must be >= 1, got {max_epochs}")
        self.max_epochs = max_epochs
        self.patience = patience
        self.lr = lr
        self.weight_decay = weight_decay
        self.record_history = record_history
        # Early stopping only arms after a warmup: small validation sets
        # plateau by chance in the first noisy epochs.
        self.min_epochs = min_epochs if min_epochs is not None else max_epochs // 2
        # When True, logits-accepting epoch callbacks receive the eval
        # forward already computed for validation, so callback + val share
        # one forward per epoch.  False reproduces the legacy schedule
        # where the callback runs its own eval forward.
        self.share_eval_forward = share_eval_forward
        self.fused = fused

    def fit(
        self,
        model: GraphModel,
        graph: Graph,
        loss_fn: Optional[LossFn] = None,
        epoch_callback: Optional[Callable[[int, GraphModel], None]] = None,
    ) -> TrainResult:
        """Train ``model`` on ``graph``; returns metrics of the best epoch.

        Parameters
        ----------
        loss_fn:
            Custom objective; defaults to cross entropy on the training
            split.  Receives ``(model, logits, epoch)``.
        epoch_callback:
            Invoked before each epoch's forward pass — RDD uses it to
            refresh reliability sets.  Two signatures are supported:
            ``(epoch, model)`` (legacy) and ``(epoch, model, eval_logits)``,
            where ``eval_logits`` are the current eval-mode logits.  With
            ``share_eval_forward`` (the default) those logits are the ones
            the trainer already computed for last epoch's validation pass —
            the model has not changed in between, so the callback gets them
            for free instead of running a duplicate forward.
        """
        start = time.perf_counter()
        if loss_fn is None:
            loss_fn = supervised_loss(graph)
        optimizer = Adam(model.parameters(), lr=self.lr, weight_decay=self.weight_decay)
        stopper = EarlyStopping(patience=self.patience)
        best_state = model.state_dict()
        history = []
        wants_logits = epoch_callback is not None and _callback_wants_logits(epoch_callback)
        share_logits = wants_logits and self.share_eval_forward
        eval_logits = None
        # One arena per fit: gradient buffers are recycled step to step,
        # and — since the per-epoch op graph is structurally static — the
        # backward schedule is derived once and replayed thereafter.
        arena = GradArena()

        epochs_run = 0
        fit_span = obs.span("trainer:fit", max_epochs=self.max_epochs)
        with fit_span, use_fused_ops(self.fused):
            for epoch in range(self.max_epochs):
                fault_point("trainer:epoch", key=epoch)
                epochs_run = epoch + 1
                with obs.span("epoch", epoch=epoch) as epoch_span:
                    if epoch_callback is not None:
                        if share_logits:
                            if eval_logits is None:  # bootstrap forward for epoch 0 only
                                eval_logits = model.predict_logits(graph)
                            epoch_callback(epoch, model, eval_logits)
                        elif wants_logits:
                            epoch_callback(epoch, model, None)
                        else:
                            epoch_callback(epoch, model)

                    model.train()
                    with arena.record():
                        logits = model(graph)
                        loss = loss_fn(model, logits, epoch)
                    optimizer.zero_grad()
                    arena.backward(loss)
                    optimizer.step()

                    eval_logits = model.predict_logits(graph)
                    val_acc = accuracy(eval_logits, graph.labels, graph.val_index)
                    if epoch_span:
                        epoch_span.set(loss=loss.item(), val_accuracy=val_acc)
                if self.record_history:
                    history.append({"epoch": epoch, "loss": loss.item(), "val_accuracy": val_acc})
                should_stop = stopper.update(val_acc, epoch)
                if stopper.improved:
                    best_state = model.state_dict()
                if should_stop and epoch + 1 >= self.min_epochs:
                    break
            if fit_span:
                fit_span.set(epochs_run=epochs_run, best_epoch=stopper.best_epoch)

        model.load_state_dict(best_state)
        predictions = model.predict_logits(graph)
        wall = time.perf_counter() - start
        return TrainResult(
            train_accuracy=accuracy(predictions, graph.labels, graph.train_index),
            val_accuracy=accuracy(predictions, graph.labels, graph.val_index),
            test_accuracy=accuracy(predictions, graph.labels, graph.test_index),
            epochs_run=epochs_run,
            best_epoch=stopper.best_epoch,
            wall_time_s=wall,
            history=history,
            predictions=predictions,
        )


def supervised_loss(graph: Graph) -> LossFn:
    """Factory for the default objective: cross entropy on the training
    split (paper Eq. 3)."""

    def loss_fn(model: GraphModel, logits: Tensor, epoch: int) -> Tensor:
        return masked_cross_entropy_logits(logits, graph.labels, graph.train_index)

    return loss_fn
