"""Validation-based hyperparameter search.

The paper tunes hyperparameters "using the validation set" (layer counts
for the deep baselines, p/γ/β for RDD).  This module provides the generic
machinery: enumerate a grid, train a model per cell, keep the cell with
the best validation accuracy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

import repro.obs as obs
from repro.errors import ConfigError
from repro.graph.graph import Graph
from repro.testing.faults import fault_point
from repro.training.checkpoint import CheckpointStore
from repro.training.parallel import get_shared, parallel_map
from repro.training.records import TrainResult
from repro.training.trainer import Trainer

# factory(graph, rng, **cell) -> model
ModelFactory = Callable[..., object]


@dataclass
class GridSearchResult:
    """Outcome of a grid search."""

    best_params: Dict[str, object]
    best_result: TrainResult
    trials: List[Dict[str, object]] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.trials)


def grid_cells(grid: Dict[str, Sequence]) -> List[Dict[str, object]]:
    """Expand a parameter grid into the list of all combinations."""
    if not grid:
        raise ConfigError("grid must contain at least one parameter")
    names = list(grid)
    for name, values in grid.items():
        if not values:
            raise ConfigError(f"grid entry {name!r} has no values")
    return [dict(zip(names, combo)) for combo in itertools.product(*grid.values())]


def _run_grid_cell(task) -> TrainResult:
    """Train one grid cell (module-level so it pickles to worker
    processes; factory/graph/trainer arrive via the fork-shared payload)."""
    seed, i, cell = task
    fault_point("grid:cell", key=i)
    factory, graph, trainer = get_shared()
    rng = np.random.default_rng(seed + 7919 * i)
    model = factory(graph, rng, **cell)
    with obs.span("grid:cell", index=i, **cell):
        return trainer.fit(model, graph)


def grid_search(
    factory: ModelFactory,
    grid: Dict[str, Sequence],
    graph: Graph,
    trainer: Optional[Trainer] = None,
    seed: int = 0,
    workers: int = 1,
    checkpoint: Optional[CheckpointStore] = None,
    checkpoint_name: str = "grid",
) -> GridSearchResult:
    """Train one model per grid cell; select by validation accuracy.

    Parameters
    ----------
    factory:
        ``factory(graph, rng, **cell) -> GraphModel``.
    grid:
        Mapping of parameter name → candidate values.
    trainer:
        Training loop (a default :class:`Trainer` when omitted).
    seed:
        Base seed; each cell derives its own generator so rankings are
        not confounded by shared initialization.
    workers:
        Worker processes for cell training.  Cells are independent, and
        selection scans results in cell order, so any ``workers`` value
        returns the same best cell as the serial loop.
    checkpoint / checkpoint_name:
        Optional :class:`CheckpointStore`: each cell's result is saved
        as it completes, and a re-run with the same grid/seed/graph
        trains only the cells a crashed search had not finished (cells
        derive independent generators, so the selection is bit-identical
        to an uninterrupted search).
    """
    trainer = trainer or Trainer()
    cells = grid_cells(grid)
    best: Optional[TrainResult] = None
    best_params: Dict[str, object] = {}
    trials: List[Dict[str, object]] = []

    on_result, done = None, None
    if checkpoint is not None:
        fingerprint = {
            "kind": "grid-search",
            "seed": int(seed),
            "factory": getattr(factory, "__qualname__", repr(factory)),
            "grid": repr(sorted((name, list(values)) for name, values in grid.items())),
            "trainer": (trainer.max_epochs, trainer.patience, trainer.lr, trainer.weight_decay),
            "graph": (
                graph.name,
                graph.num_nodes,
                int(graph.num_edges),
                graph.num_features,
                graph.num_classes,
            ),
        }
        saved = checkpoint.load(checkpoint_name, fingerprint=fingerprint) or {}
        done = {int(index): result for index, result in saved.items()}
        known = dict(done)

        def on_result(index, result):
            known[index] = result
            checkpoint.save(checkpoint_name, known, fingerprint=fingerprint)

    results = parallel_map(
        _run_grid_cell,
        [(seed, i, cell) for i, cell in enumerate(cells)],
        workers=workers,
        shared=(factory, graph, trainer),
        on_result=on_result,
        completed=done,
    )
    for cell, result in zip(cells, results):
        trials.append({**cell, "val_accuracy": result.val_accuracy, "test_accuracy": result.test_accuracy})
        if best is None or result.val_accuracy > best.val_accuracy:
            best, best_params = result, dict(cell)

    return GridSearchResult(best_params=best_params, best_result=best, trials=trials)
