"""Result records produced by trainers and experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class TrainResult:
    """Outcome of training one model."""

    train_accuracy: float
    val_accuracy: float
    test_accuracy: float
    epochs_run: int
    best_epoch: int
    wall_time_s: float
    history: List[Dict[str, float]] = field(default_factory=list)
    # Best-checkpoint eval-mode logits over all nodes.  Callers that need
    # predictions after training (ensembling, reporting) reuse these
    # instead of paying another full-graph forward.
    predictions: Optional[np.ndarray] = None

    def summary(self) -> str:
        return (
            f"val={self.val_accuracy:.4f} test={self.test_accuracy:.4f} "
            f"(epochs={self.epochs_run}, best@{self.best_epoch}, {self.wall_time_s:.2f}s)"
        )


@dataclass
class EnsembleResult:
    """Outcome of training an ensemble method."""

    ensemble_test_accuracy: float
    ensemble_val_accuracy: float
    base_test_accuracies: List[float]
    base_results: List[TrainResult] = field(default_factory=list)
    wall_time_s: float = 0.0
    # Test accuracy of the ensemble restricted to the first t base models,
    # for t = 1..T (drives the Table 9 efficiency analysis).
    ensemble_curve: List[float] = field(default_factory=list)

    @property
    def average_base_accuracy(self) -> float:
        """Mean test accuracy of the base models (Table 6's "Average" row)."""
        return float(sum(self.base_test_accuracies) / len(self.base_test_accuracies))

    @property
    def ensemble_gain(self) -> float:
        """Ensemble accuracy minus average base accuracy (Table 6's "Gain")."""
        return self.ensemble_test_accuracy - self.average_base_accuracy

    @property
    def last_base_test_accuracy(self) -> float:
        """Test accuracy of the final base model (RDD's "single model")."""
        return self.base_test_accuracies[-1]

    @property
    def average_model_time_s(self) -> float:
        """Mean wall time per base model (Table 9's "average time per model")."""
        if not self.base_results:
            return 0.0
        return float(sum(r.wall_time_s for r in self.base_results) / len(self.base_results))

    def models_to_reach(self, target_accuracy: float) -> Optional[int]:
        """Smallest ensemble prefix reaching ``target_accuracy`` (None if never)."""
        for count, acc in enumerate(self.ensemble_curve, start=1):
            if acc >= target_accuracy:
                return count
        return None

    def summary(self) -> str:
        return (
            f"ensemble={self.ensemble_test_accuracy:.4f} "
            f"avg_base={self.average_base_accuracy:.4f} "
            f"last_base={self.last_base_test_accuracy:.4f} "
            f"({len(self.base_test_accuracies)} models, {self.wall_time_s:.2f}s)"
        )


# ----------------------------------------------------------------------
# Bit-identity comparison (crash/resume and parallel/serial parity)
# ----------------------------------------------------------------------
def _arrays_equal(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    a, b = np.asarray(a), np.asarray(b)
    return a.shape == b.shape and a.dtype == b.dtype and np.array_equal(a, b)


def results_bitwise_equal(a, b) -> bool:
    """Whether two result records are *bit-identical*, ignoring timing.

    This is the correctness oracle for the crash-safe runtime: a harness
    resumed from a checkpoint, or re-run with a different worker count,
    must reproduce every accuracy, every prediction array, and every
    ensemble weight exactly — only wall-clock fields may differ.  Extra
    fields carried by subclasses (e.g. ``RDDResult.ensemble_weights``
    and ``reliability_history``) are compared via duck typing so this
    module stays free of a dependency on :mod:`repro.core`.
    """
    if isinstance(a, TrainResult) or isinstance(b, TrainResult):
        if not (isinstance(a, TrainResult) and isinstance(b, TrainResult)):
            return False
        return (
            a.train_accuracy == b.train_accuracy
            and a.val_accuracy == b.val_accuracy
            and a.test_accuracy == b.test_accuracy
            and a.epochs_run == b.epochs_run
            and a.best_epoch == b.best_epoch
            and _history_equal(a.history, b.history)
            and _arrays_equal(a.predictions, b.predictions)
        )
    if isinstance(a, EnsembleResult) or isinstance(b, EnsembleResult):
        if not (isinstance(a, EnsembleResult) and isinstance(b, EnsembleResult)):
            return False
        return (
            a.ensemble_test_accuracy == b.ensemble_test_accuracy
            and a.ensemble_val_accuracy == b.ensemble_val_accuracy
            and list(a.base_test_accuracies) == list(b.base_test_accuracies)
            and list(a.ensemble_curve) == list(b.ensemble_curve)
            and len(a.base_results) == len(b.base_results)
            and all(
                results_bitwise_equal(x, y) for x, y in zip(a.base_results, b.base_results)
            )
            and getattr(a, "reliability_history", None) == getattr(b, "reliability_history", None)
            and _arrays_equal(
                getattr(a, "ensemble_weights", None), getattr(b, "ensemble_weights", None)
            )
        )
    return a == b


def _history_equal(a, b) -> bool:
    """Per-epoch histories match exactly (loss values are deterministic)."""
    return list(a) == list(b)
